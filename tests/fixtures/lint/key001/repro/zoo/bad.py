"""KEY001 positive fixtures: a leaked field and a stale exemption."""

from dataclasses import dataclass


@dataclass(frozen=True)
class LeakySpec:
    width: int
    depth: int
    label: str

    def cache_key(self) -> str:
        return f"{self.width}x{self.depth}"


@dataclass
class StaleExempt:
    alpha: int

    CACHE_KEY_EXEMPT = ("alpha", "gone")

    def cache_key(self) -> str:
        return str(self.alpha)
