"""KEY001 negative fixtures: referenced, exempted and delegating specs."""

from dataclasses import asdict, dataclass


@dataclass(frozen=True)
class FullSpec:
    width: int
    depth: int

    def cache_key(self) -> str:
        return f"{self.width}x{self.depth}"


@dataclass(frozen=True)
class ExemptSpec:
    width: int
    label: str

    CACHE_KEY_EXEMPT = ("label",)

    def cache_key(self) -> str:
        return str(self.width)


@dataclass(frozen=True)
class DelegatingSpec:
    width: int
    depth: int

    def to_dict(self):
        return {"width": self.width, "depth": self.depth}

    def cache_key(self) -> str:
        return repr(sorted(self.to_dict().items()))


@dataclass(frozen=True)
class AsdictSpec:
    width: int
    depth: int

    def cache_key(self) -> str:
        return repr(sorted(asdict(self).items()))


@dataclass(frozen=True)
class NoKeyMethod:
    anything: str
