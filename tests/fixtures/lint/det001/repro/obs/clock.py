"""DET001 allowlist fixture: timestamps are the obs layer's job."""

import time


def stamp():
    return time.time()
