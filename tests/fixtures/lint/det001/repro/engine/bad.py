"""DET001 positive fixture: legacy global-state RNG and wall-clock reads."""

import random
import time
from datetime import datetime

import numpy as np


def sample_badly():
    np.random.seed(1234)
    draw = np.random.rand(4)
    pick = random.choice([1, 2, 3])
    stamp = time.time()
    born = datetime.now()
    return draw, pick, stamp, born
