"""DET001 negative fixture: explicit Generators and monotonic clocks."""

import time

import numpy as np


def sample_well(rng: np.random.Generator):
    fresh = np.random.default_rng(1234)
    start = time.perf_counter()
    values = rng.standard_normal(4) + fresh.standard_normal(4)
    return values, time.perf_counter() - start
