"""KEY002 negative fixtures: every FREEZE_EXEMPT entry resolves."""

from dataclasses import dataclass


@dataclass
class ExemptField:
    alpha: int
    label: str

    FREEZE_EXEMPT = ("label",)


class ExemptInstanceAttr:
    FREEZE_EXEMPT = ("_cache", "refresh")

    def __init__(self) -> None:
        self._cache = {}

    def refresh(self) -> None:
        self._cache = {}


class ExemptSlot:
    __slots__ = ("payload", "_memo")

    FREEZE_EXEMPT = ("_memo",)


class ExemptClassLevel:
    registry = {}

    FREEZE_EXEMPT = ("registry",)


class NoExemptions:
    def __init__(self) -> None:
        self.value = 1
