"""KEY002 positive fixtures: stale FREEZE_EXEMPT entries."""

from dataclasses import dataclass


@dataclass
class StaleFreezeExempt:
    alpha: int

    FREEZE_EXEMPT = ("alpha", "vanished")


class RenamedAttribute:
    FREEZE_EXEMPT = ("_scratch", "_old_name")

    def __init__(self) -> None:
        self._scratch = {}
        self._new_name = 0
