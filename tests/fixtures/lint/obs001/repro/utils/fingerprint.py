"""OBS001 positive fixture: the fingerprint core reaching into obs."""

from repro.obs.metrics import counter


def content_fingerprint(payload):
    counter("repro_fingerprints_total")
    return repr(sorted(payload.items()))
