"""OBS001 positive fixture: obs drawing randomness and importing fingerprints."""

import numpy as np

from repro.utils.fingerprint import content_fingerprint


def sneaky_sample():
    rng = np.random.default_rng(7)
    return content_fingerprint({"draw": float(rng.random())})
