"""OBS001 negative fixture: observing without steering."""

import time

from repro.obs.metrics import counter


def observe(value):
    counter("repro_observations_total")
    return {"at": time.time(), "value": value}
