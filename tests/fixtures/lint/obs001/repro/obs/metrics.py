"""OBS001 fixture stub standing in for the real metrics module."""

_enabled = True


def counter(name):
    return name
