"""OBS001 positive fixture: a fingerprint function reading obs state."""

from repro.obs.metrics import counter


class Spec:
    def cache_key(self):
        counter("repro_cache_keys_total")
        return "key"
