"""OBS001 negative fixture: instrumented module, obs-free fingerprint path."""

from repro.obs.metrics import counter


class Spec:
    def describe(self):
        counter("repro_describe_total")
        return "described"

    def cache_key(self):
        return "key"
