"""DTY001 negative fixture: dtype literals outside repro.nn are fine."""

import numpy as np


def make(shape):
    return np.zeros(shape, dtype=np.float32)
