"""DTY001 fixture stub: the policy module may name concrete dtypes."""

import numpy as np

_DEFAULT = np.float64


def resolve_dtype():
    return _DEFAULT
