"""DTY001 negative fixture: policy-derived dtypes, sanctioned comparison."""

import numpy as np

from repro.nn.dtype import resolve_dtype


def make_state(shape, x):
    if x.dtype == np.float32:
        return np.zeros(shape, dtype=x.dtype), x
    return np.zeros(shape, dtype=resolve_dtype()), x
