"""DTY001 positive fixture: pinned precision in an NN hot path."""

import numpy as np


def make_state(shape, x):
    weights = np.zeros(shape, dtype=np.float32)
    return weights, x.astype(np.float64)
