"""THR001 negative fixture: unlocked state not reachable from entry points."""

_CACHE = {}


def remember(key):
    _CACHE[key] = True
