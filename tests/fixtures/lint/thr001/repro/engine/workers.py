"""THR001 fixture entry point standing in for the real worker pool."""

from repro.engine import shared_bad, shared_good


def run_task(key):
    shared_bad.record(key)
    shared_good.record(key)
