"""THR001 negative fixture: the same mutation held under a lock."""

import threading

_LOCK = threading.Lock()
_RESULTS = {}


def record(key):
    with _LOCK:
        _RESULTS[key] = True
