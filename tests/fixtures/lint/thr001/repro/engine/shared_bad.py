"""THR001 positive fixture: unlocked module state on a worker path."""

_RESULTS = {}
_TOTAL = 0


def record(key):
    global _TOTAL
    _RESULTS[key] = True
    _TOTAL += 1
