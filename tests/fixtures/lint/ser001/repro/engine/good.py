"""SER001 negative fixtures: paired serde and plain-JSON payloads."""


class Paired:
    def __init__(self, value):
        self.value = value

    def to_dict(self):
        return {"value": self.value}

    @classmethod
    def from_dict(cls, data):
        return cls(data["value"])


def emit_well(engine, episode, extras):
    engine._emit("episode", episode, payload={"reward": 1.5, "meta": {"ok": True}})
    engine._emit("episode", episode, payload={"count": len(extras), **extras})
    engine.log(payload={"anything": {1, 2}})
