"""SER001 positive fixtures: one-way serde and non-JSON event payloads."""


class WriteOnly:
    def to_dict(self):
        return {"value": 1}


class ReadOnly:
    @classmethod
    def from_dict(cls, data):
        return cls()


def emit_badly(engine, episode):
    engine._emit("episode", episode, payload={"seen": {1, 2, 3}})
    engine._emit("episode", episode, payload={1: "not-a-string-key"})
    engine._emit("episode", episode, payload={"blob": b"raw-bytes"})
    engine._emit("episode", episode, payload={"nested": {"inner": {4, 5}}})
