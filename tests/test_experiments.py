"""Tests for the experiment harnesses: presets, paper values, and micro-scale runs."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.experiments import paper_values
from repro.experiments.presets import CI, ScalePreset, get_preset, list_presets
from repro.experiments import common, figure6, figure7, table1, table3
from repro.zoo.registry import GROUP_LARGE, GROUP_SMALL

# An ultra-small preset so harness integration tests stay fast.
MICRO = dataclasses.replace(
    CI,
    name="micro",
    image_size=12,
    samples_per_class=8,
    minority_fraction=0.5,
    train_epochs=1,
    batch_size=8,
    search_episodes=2,
    child_epochs=1,
    pretrain_epochs=1,
    width_multiplier=0.125,
)


class TestPresets:
    def test_all_presets_listed(self):
        assert {"ci", "small", "full", "paper"} <= set(list_presets())

    def test_get_preset_case_insensitive(self):
        assert get_preset("CI").name == "ci"

    def test_unknown_preset_raises(self):
        with pytest.raises(KeyError):
            get_preset("huge")

    def test_paper_preset_matches_paper_protocol(self):
        paper = get_preset("paper")
        assert paper.train_epochs == 500
        assert paper.search_episodes == 500
        assert paper.image_size == 224
        assert paper.width_multiplier == 1.0

    def test_presets_are_ordered_by_budget(self):
        ci, small, full = get_preset("ci"), get_preset("small"), get_preset("full")
        assert ci.train_epochs < small.train_epochs < full.train_epochs
        assert ci.samples_per_class < small.samples_per_class < full.samples_per_class

    def test_dermatology_config_derivation(self):
        config = CI.dermatology_config()
        assert config.image_size == CI.image_size
        assert config.samples_per_class_majority == CI.samples_per_class

    def test_minority_multiplier_scales_fraction(self):
        config = CI.dermatology_config(minority_multiplier=2.0)
        assert config.minority_fraction == pytest.approx(2 * CI.minority_fraction)

    def test_minority_multiplier_capped_at_one(self):
        config = CI.dermatology_config(minority_multiplier=100.0)
        assert config.minority_fraction == 1.0

    def test_invalid_minority_multiplier(self):
        with pytest.raises(ValueError):
            CI.dermatology_config(minority_multiplier=0)

    def test_training_configs(self):
        assert CI.training_config(seed=3).epochs == CI.train_epochs
        assert CI.child_training_config().epochs == CI.child_epochs


class TestPaperValues:
    def test_table3_covers_both_groups(self):
        groups = {row["group"] for row in paper_values.TABLE3.values()}
        assert groups == {1, 2}

    def test_table3_group_assignment_matches_registry_groups(self):
        for name, row in paper_values.TABLE3.items():
            expected = 1 if name in GROUP_SMALL else 2
            assert row["group"] == expected, name

    def test_fahana_small_is_fairest_in_group1(self):
        group1 = {n: r for n, r in paper_values.TABLE3.items() if r["group"] == 1}
        assert min(group1, key=lambda n: group1[n]["unfairness"]) == "FaHaNa-Small"

    def test_fahana_fair_is_fairest_overall(self):
        assert min(
            paper_values.TABLE3, key=lambda n: paper_values.TABLE3[n]["unfairness"]
        ) == "FaHaNa-Fair"

    def test_headline_speedups_consistent_with_table3(self):
        table = paper_values.TABLE3
        speedup = table["MobileNetV2"]["latency_pi_ms"] / table["FaHaNa-Small"]["latency_pi_ms"]
        assert speedup == pytest.approx(
            paper_values.HEADLINE["fahana_small_vs_mobilenetv2_pi_speedup"], rel=0.01
        )

    def test_headline_storage_reduction_consistent(self):
        table = paper_values.TABLE3
        reduction = table["MobileNetV2"]["storage_mb"] / table["FaHaNa-Small"]["storage_mb"]
        assert reduction == pytest.approx(
            paper_values.HEADLINE["fahana_small_vs_mobilenetv2_storage_reduction"], rel=0.01
        )

    def test_table1_spec_pattern(self):
        meets = [n for n, r in paper_values.TABLE1.items() if r["meets_spec"]]
        assert set(meets) == {"SqueezeNet 1.0", "MobileNetV3(S)", "MnasNet 0.5"}

    def test_table2_fahana_faster_and_more_valid(self):
        monas, fahana = paper_values.TABLE2["MONAS"], paper_values.TABLE2["FaHaNa"]
        assert fahana["space_size"] < monas["space_size"]
        assert fahana["valid_ratio_tight"] > monas["valid_ratio_tight"]
        assert fahana["hours_relaxed"] < monas["hours_relaxed"]

    def test_table4_balancing_improves_fairness_for_all(self):
        for name, row in paper_values.TABLE4.items():
            assert row["unfairness_balanced"] < row["unfairness"], name


class TestCommonPipeline:
    def test_prepare_data_is_cached(self):
        common.clear_caches()
        first = common.prepare_data(MICRO, seed=0)
        second = common.prepare_data(MICRO, seed=0)
        assert first is second
        common.clear_caches()

    def test_prepare_data_balanced_has_more_minority(self):
        common.clear_caches()
        plain = common.prepare_data(MICRO, seed=0)
        balanced = common.prepare_data(MICRO, seed=0, balanced=True)
        assert (
            balanced.splits.train.group_counts()["dark"]
            > plain.splits.train.group_counts()["dark"]
        )
        common.clear_caches()

    def test_prepare_data_normalises_train_split(self):
        common.clear_caches()
        data = common.prepare_data(MICRO, seed=0)
        means = data.splits.train.images.mean(axis=(0, 2, 3))
        np.testing.assert_allclose(means, np.zeros(3), atol=1e-7)
        common.clear_caches()

    def test_evaluate_architecture_returns_all_columns(self, tiny_backbone):
        common.clear_caches()
        evaluation = common.evaluate_architecture(tiny_backbone, MICRO, seed=0)
        assert evaluation.params == tiny_backbone.param_count()
        assert evaluation.latency_pi_ms > 0
        assert evaluation.latency_odroid_ms > 0
        assert 0 <= evaluation.accuracy <= 1
        assert evaluation.unfairness >= 0
        assert set(evaluation.group_accuracy) == {"light", "dark"}
        common.clear_caches()

    def test_evaluation_cache_by_name(self):
        common.clear_caches()
        first = common.evaluate_architecture("FaHaNa-Small", MICRO, seed=0)
        second = common.evaluate_architecture("FaHaNa-Small", MICRO, seed=0)
        assert first is second
        common.clear_caches()


class TestHarnessSmoke:
    """Micro-scale end-to-end runs of the cheaper harnesses."""

    def test_figure7_reference_architecture(self):
        result = figure7.run()
        assert result.descriptor.name == "FaHaNa-Fair"
        assert result.tail_uses_larger_blocks
        rendered = figure7.render(result)
        assert "RB" in rendered and "LINEAR" in rendered

    def test_table1_micro_run_and_render(self):
        common.clear_caches()
        # restrict to three networks to keep the smoke test fast
        result = table1.Table1Result(
            evaluations=[
                common.evaluate_architecture(name, MICRO, seed=0)
                for name in ("SqueezeNet 1.0", "MnasNet 0.5", "FaHaNa-Small")
            ],
            timing_constraint_ms=1500.0,
            preset_name="micro",
        )
        rendered = table1.render(result)
        assert "SqueezeNet 1.0" in rendered
        assert result.meets_spec("SqueezeNet 1.0")
        with pytest.raises(KeyError):
            result.meets_spec("nonexistent")
        common.clear_caches()

    def test_figure6_pareto_on_synthetic_rows(self, tiny_backbone):
        common.clear_caches()
        evaluation = common.evaluate_architecture(tiny_backbone, MICRO, seed=0)
        row = table3.Table3Row(
            evaluation=evaluation,
            group=1,
            fairness_improvement=0.0,
            storage_reduction=1.0,
            pi_speedup=1.0,
            odroid_speedup=1.0,
        )
        table = table3.Table3Result(rows=[row], preset_name="micro")
        assert table.group_rows(1) == [row]
        assert table.row(evaluation.name) is row
        with pytest.raises(KeyError):
            table.row("missing")
        common.clear_caches()
