"""Tests for the declarative run API: RunSpec serialization, the strategy
registry, the ``repro.run`` facade, legacy-shim parity and the CLI."""

from __future__ import annotations

import dataclasses
import json
import warnings

import pytest

import repro
from repro.api import (
    DatasetSpec,
    DesignSpecConfig,
    RunSpec,
    SearchParams,
    available_strategies,
    get_strategy,
    register_strategy,
    spec_schema,
    unregister_strategy,
)
from repro.core.api import prepare_dataset, run_engine_search, run_fahana_search
from repro.core.fahana import FaHaNaSearch
from repro.data.dermatology import DermatologyConfig
from repro.engine import EngineConfig, EvaluationCache, create_pool
from repro.engine.cli import main as cli_main
from repro.engine.workers import process_shared


def _tiny_spec(strategy: str = "fahana", episodes: int = 2, **engine_kwargs) -> RunSpec:
    """A spec sized so one run takes a second or two on a laptop CPU."""
    return RunSpec(
        strategy=strategy,
        dataset=DatasetSpec(
            image_size=10,
            samples_per_class=8,
            minority_fraction=0.5,
            seed=123,
            split_seed=0,
        ),
        design=DesignSpecConfig(timing_constraint_ms=1e6),
        search=SearchParams(
            episodes=episodes,
            child_epochs=1,
            child_batch_size=8,
            pretrain_epochs=0,
            max_searchable=2,
            width_multiplier=0.25,
            seed=0,
        ),
        engine=EngineConfig(**engine_kwargs) if engine_kwargs else EngineConfig(),
    )


class TestSpecSerialization:
    @pytest.mark.parametrize("strategy", ["fahana", "monas", "random"])
    def test_dict_roundtrip_per_strategy(self, strategy):
        spec = _tiny_spec(strategy)
        rebuilt = RunSpec.from_dict(spec.to_dict())
        assert rebuilt == spec

    def test_json_and_file_roundtrip(self, tmp_path):
        spec = _tiny_spec("random", use_cache=True, cache_capacity=64)
        assert RunSpec.from_json(spec.to_json()) == spec
        path = spec.to_file(str(tmp_path / "spec.json"))
        assert RunSpec.from_file(path) == spec

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(ValueError, match="'bogus'.*allowed keys"):
            RunSpec.from_dict({"strategy": "fahana", "bogus": 1})

    def test_unknown_section_key_rejected_with_allowed_list(self):
        with pytest.raises(ValueError, match="'episodez'.*episodes"):
            RunSpec.from_dict({"search": {"episodez": 5}})

    def test_unknown_strategy_rejected_with_registered_list(self):
        with pytest.raises(ValueError, match="fahana, monas, random"):
            RunSpec.from_dict({"strategy": "quantum-annealing"})

    def test_type_errors_are_located(self):
        with pytest.raises(ValueError, match="search.episodes"):
            RunSpec.from_dict({"search": {"episodes": "twenty"}})

    def test_invalid_values_are_located(self):
        with pytest.raises(ValueError, match="'search' section"):
            RunSpec.from_dict({"search": {"episodes": -3}})
        with pytest.raises(ValueError, match="unknown device"):
            RunSpec.from_dict({"design": {"device": "gameboy"}})

    def test_live_cache_object_is_not_serializable(self):
        spec = _tiny_spec(use_cache=True, cache=EvaluationCache(capacity=4))
        with pytest.raises(ValueError, match="cache_dir"):
            spec.to_dict()

    def test_cache_key_ignores_engine_but_not_search(self):
        base = _tiny_spec()
        other_engine = dataclasses.replace(
            base, engine=EngineConfig(backend="thread", num_workers=4, use_cache=True)
        )
        other_search = dataclasses.replace(
            base, search=dataclasses.replace(base.search, episodes=5)
        )
        assert base.cache_key() == other_engine.cache_key()
        assert base.cache_key() != other_search.cache_key()
        assert base.cache_key() == _tiny_spec().cache_key()

    def test_with_overrides_dotted_paths(self):
        spec = _tiny_spec().with_overrides(
            values={"strategy": "random", "search.episodes": 7, "engine.backend": "thread"}
        )
        assert spec.strategy == "random"
        assert spec.search.episodes == 7
        assert spec.engine.backend == "thread"
        with pytest.raises(ValueError, match="unknown override path"):
            _tiny_spec().with_overrides(values={"nonsense": 1})
        with pytest.raises(ValueError, match="unknown field"):
            _tiny_spec().with_overrides(values={"search.episodez": 1})

    def test_schema_covers_every_section(self):
        sections = {leaf.section for leaf in spec_schema()}
        assert sections == {
            "dataset",
            "design",
            "search",
            "evaluation",
            "compute",
            "engine",
        }
        paths = [leaf.path for leaf in spec_schema()]
        assert "search.episodes" in paths and "engine.backend" in paths
        assert "compute.precision" in paths
        assert "engine.cache" not in paths  # live objects never reach the schema
        assert "evaluation.max_parameters" in paths
        # Lists of objects have no single-flag CLI form.
        assert "evaluation.fidelities" not in paths


class TestRegistry:
    def test_builtins_registered(self):
        assert available_strategies() == [
            "fahana",
            "monas",
            "random",
            "regularized_evolution",
        ]

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_strategy("fahana", lambda *a: None)

    def test_custom_strategy_runs_through_facade(self):
        def build(spec, train, validation, design):
            from repro.api.strategies import _fahana_config

            return FaHaNaSearch(train, validation, design, _fahana_config(spec))

        register_strategy("custom-fahana", build, description="test strategy")
        try:
            spec = dataclasses.replace(_tiny_spec(), strategy="custom-fahana")
            report = repro.run(spec)
            assert len(report.history) == 2
            assert get_strategy("custom-fahana").description == "test strategy"
        finally:
            unregister_strategy("custom-fahana")


class TestRunFacade:
    def test_spec_file_run_matches_legacy_run_fahana_search(self, tmp_path):
        """The acceptance criterion: repro.run(from_file(...)) reproduces the
        legacy entry point exactly (same history, modulo wall-clock)."""
        # The legacy entry point trains children at the TrainingConfig
        # default batch size (32), so the spec pins the same value.
        spec = _tiny_spec(episodes=3)
        spec = dataclasses.replace(
            spec, search=dataclasses.replace(spec.search, child_batch_size=32)
        )
        path = spec.to_file(str(tmp_path / "spec.json"))
        report = repro.run(RunSpec.from_file(path))

        splits = prepare_dataset(
            DermatologyConfig(
                image_size=10,
                samples_per_class_majority=8,
                minority_fraction=0.5,
                seed=123,
            ),
            seed=0,
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = run_fahana_search(
                splits.train,
                splits.validation,
                spec.design.build(),
                episodes=3,
                child_epochs=1,
                pretrain_epochs=0,
                max_searchable=2,
                width_multiplier=0.25,
                seed=0,
            )

        a, b = report.history, legacy.history
        assert a.reward_trajectory() == b.reward_trajectory()
        assert [r.decisions for r in a.records] == [r.decisions for r in b.records]
        assert [r.descriptor for r in a.records] == [r.descriptor for r in b.records]
        for ours, theirs in zip(a.records, b.records):
            for field in (
                "episode", "reward", "accuracy", "unfairness", "latency_ms",
                "storage_mb", "num_parameters", "trained", "group_accuracy",
            ):
                assert getattr(ours, field) == getattr(theirs, field)
        assert (a.space_size, a.full_space_size, a.frozen_blocks, a.searchable_blocks) == (
            b.space_size, b.full_space_size, b.frozen_blocks, b.searchable_blocks
        )

    def test_random_strategy_runs_and_is_deterministic(self):
        first = repro.run(_tiny_spec("random"))
        second = repro.run(_tiny_spec("random"))
        assert len(first.history) == 2
        assert first.history.reward_trajectory() == second.history.reward_trajectory()
        assert first.strategy == "random"

    def test_random_differs_from_fahana_sampling(self):
        random_run = repro.run(_tiny_spec("random"))
        fahana_run = repro.run(_tiny_spec("fahana"))
        assert [r.decisions for r in random_run.history.records] != [
            r.decisions for r in fahana_run.history.records
        ]

    def test_report_artifacts_and_to_dict(self, tmp_path):
        run_dir = str(tmp_path / "run")
        report = repro.run(_tiny_spec(run_dir=run_dir, use_cache=True))
        assert report.run_dir == run_dir
        assert report.checkpoint_path and report.telemetry_path and report.spec_path
        archived = RunSpec.from_file(report.spec_path)
        assert archived == report.spec
        json.dumps(report.to_dict())  # fully JSON-encodable

    def test_injected_datasets_suppress_spec_archival(self, tiny_splits, tmp_path):
        """A run with injected (e.g. normalised) splits is not what the spec
        describes, so no run_spec.json must be archived as re-launchable."""
        run_dir = str(tmp_path / "run")
        report = repro.run(
            _tiny_spec(run_dir=run_dir),
            train_dataset=tiny_splits.train,
            validation_dataset=tiny_splits.validation,
        )
        assert report.spec_path is None
        assert not (tmp_path / "run" / "run_spec.json").exists()
        assert report.checkpoint_path is not None  # checkpointing still works

    def test_archived_spec_records_effective_engine(self, tmp_path):
        """An explicit engine= override (even with a live cache) is what the
        run_dir archive describes, so the run re-launches from its artifacts."""
        run_dir = str(tmp_path / "run")
        spec = dataclasses.replace(_tiny_spec(), engine=None)
        report = repro.run(
            spec,
            engine=EngineConfig(
                backend="thread",
                run_dir=run_dir,
                use_cache=True,
                cache=EvaluationCache(capacity=16),
            ),
        )
        archived = RunSpec.from_file(report.spec_path)
        assert archived.engine is not None
        assert archived.engine.backend == "thread"
        assert archived.engine.run_dir == run_dir
        assert archived.engine.cache is None  # live object stripped, not crashed on

    def test_unset_engine_section_roundtrips_and_uses_process_default(self):
        from repro.engine import set_default_engine_config

        spec = dataclasses.replace(_tiny_spec(), engine=None)
        assert "engine" not in spec.to_dict()
        assert RunSpec.from_dict(spec.to_dict()).engine is None

        # An unset section follows the process-wide default; an explicit
        # all-default section is honoured verbatim (serial) regardless.
        installed = EngineConfig(use_cache=True, cache=EvaluationCache(capacity=16))
        previous = set_default_engine_config(installed)
        try:
            unset = repro.run(spec)
            assert unset.engine.cache is installed.cache
            explicit = repro.run(dataclasses.replace(spec, engine=EngineConfig()))
            assert explicit.engine.cache is None
        finally:
            set_default_engine_config(previous)

    def test_resume_through_facade(self, tmp_path):
        run_dir = str(tmp_path / "run")
        spec = _tiny_spec(episodes=3, run_dir=run_dir)
        uninterrupted = repro.run(_tiny_spec(episodes=3))
        partial = dataclasses.replace(
            spec, search=dataclasses.replace(spec.search, episodes=2)
        )
        repro.run(partial)
        resumed = repro.run(spec, resume=True)
        assert resumed.resumed_from == 2
        assert (
            resumed.history.reward_trajectory()
            == uninterrupted.history.reward_trajectory()
        )

    def test_engine_conflict_rejected(self):
        spec = _tiny_spec(backend="thread")
        with pytest.raises(ValueError, match="engine configured twice"):
            repro.run(spec, engine=EngineConfig(backend="serial"))

    def test_dataset_injection_requires_both_splits(self):
        with pytest.raises(ValueError, match="together"):
            repro.run(_tiny_spec(), train_dataset=object())

    def test_bad_spec_argument_type(self):
        with pytest.raises(TypeError, match="RunSpec"):
            repro.run(42)


class TestLegacyShims:
    def test_deprecation_warnings_emitted(self, tiny_splits):
        with pytest.warns(DeprecationWarning, match="run_fahana_search"):
            run_fahana_search(
                tiny_splits.train,
                tiny_splits.validation,
                episodes=1,
                child_epochs=1,
                pretrain_epochs=0,
                max_searchable=2,
                width_multiplier=0.25,
            )

    def test_engine_conflict_in_shim(self, tiny_splits):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(ValueError, match="backend.*num_workers|num_workers"):
                run_engine_search(
                    tiny_splits.train,
                    tiny_splits.validation,
                    backend="thread",
                    num_workers=4,
                    engine=EngineConfig(),
                )

    def test_shim_still_returns_result_and_engine(self, tiny_splits, tmp_path):
        run_dir = str(tmp_path / "run")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            result, engine = run_engine_search(
                tiny_splits.train,
                tiny_splits.validation,
                episodes=1,
                engine=EngineConfig(run_dir=run_dir, use_cache=True),
                pretrain_epochs=0,
                child_epochs=1,
                max_searchable=2,
                width_multiplier=0.25,
                seed=0,
            )
        assert len(result.history) == 1
        assert engine.config.run_dir == run_dir


def _add_to_shared(increment: int) -> int:
    return process_shared() + increment


class TestSharedWorkerState:
    def test_process_pool_ships_shared_object_once(self):
        with create_pool("process", num_workers=2, shared=40) as pool:
            assert pool.uses_shared
            results = pool.map_ordered(_add_to_shared, [1, 2])
        assert [value for value, _ in results] == [41, 42]

    def test_pools_without_shared_are_unchanged(self):
        assert not create_pool("serial").uses_shared
        with create_pool("process", num_workers=1) as pool:
            assert not pool.uses_shared


class TestSpecCli:
    def test_run_subcommand_with_overrides(self, tmp_path, capsys):
        spec_path = str(tmp_path / "spec.json")
        _tiny_spec(episodes=2).to_file(spec_path)
        run_dir = str(tmp_path / "run")
        code = cli_main(
            ["run", spec_path, "--engine-run-dir", run_dir, "--search-episodes", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "search summary" in out
        assert "episodes=1" in out
        archived = RunSpec.from_file(f"{run_dir}/run_spec.json")
        assert archived.search.episodes == 1
        assert archived.engine.run_dir == run_dir

    def test_run_subcommand_resume(self, tmp_path, capsys):
        spec_path = str(tmp_path / "spec.json")
        run_dir = str(tmp_path / "run")
        _tiny_spec(episodes=2, run_dir=run_dir).to_file(spec_path)
        assert cli_main(["run", spec_path]) == 0
        capsys.readouterr()
        assert cli_main(["run", spec_path, "--resume"]) == 0
        assert "resumed from episode 2" in capsys.readouterr().out

    def test_resume_without_checkpoint_fails(self, tmp_path, capsys):
        spec_path = str(tmp_path / "spec.json")
        _tiny_spec().to_file(spec_path)
        assert cli_main(["run", spec_path, "--resume"]) == 2

    def test_validate_subcommand(self, tmp_path, capsys):
        spec_path = str(tmp_path / "spec.json")
        _tiny_spec("random").to_file(spec_path)
        assert cli_main(["validate", spec_path]) == 0
        captured = capsys.readouterr()
        assert json.loads(captured.out)["strategy"] == "random"
        assert "cache key:" in captured.err

    def test_validate_rejects_bad_spec(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"strategy": "nope"}', encoding="utf-8")
        assert cli_main(["validate", str(bad)]) == 2
        assert "registered strategies" in capsys.readouterr().err

    def test_run_subcommand_without_engine_section(self, tmp_path, capsys):
        """A spec that omits the (optional) engine section must run, not crash."""
        spec_path = str(tmp_path / "spec.json")
        dataclasses.replace(_tiny_spec(episodes=1), engine=None).to_file(spec_path)
        assert cli_main(["run", spec_path]) == 0
        out = capsys.readouterr().out
        assert "backend=serial" in out and "episodes=1" in out
        # --resume on an unset engine section errors cleanly, no traceback.
        assert cli_main(["run", spec_path, "--resume"]) == 2

    def test_strategies_subcommand(self, capsys):
        assert cli_main(["strategies"]) == 0
        out = capsys.readouterr().out
        for name in ("fahana", "monas", "random"):
            assert name in out


class TestRootExports:
    def test_lazy_api_aliases(self):
        assert repro.RunSpec is RunSpec
        assert callable(repro.run)
        assert "run" in dir(repro)
        with pytest.raises(AttributeError):
            repro.does_not_exist
