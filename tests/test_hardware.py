"""Tests for the edge-device hardware models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import paper_values
from repro.hardware import (
    DesignSpec,
    DeviceProfile,
    HardwareSpec,
    LatencyEstimator,
    ODROID_XU4,
    RASPBERRY_PI_4,
    SoftwareSpec,
    estimate_latency_ms,
    fit_device_profile,
    get_device,
    list_devices,
    peak_activation_mb,
    storage_mb,
)
from repro.hardware.latency import latency_breakdown_ms
from repro.hardware.storage import fits_in_memory
from repro.zoo import get_architecture


class TestDeviceProfiles:
    def test_builtin_devices_listed(self):
        assert "raspberry-pi-4" in list_devices()
        assert "odroid-xu4" in list_devices()

    def test_get_device_case_insensitive(self):
        assert get_device("Raspberry-PI-4").name == RASPBERRY_PI_4.name

    def test_get_device_unknown_raises(self):
        with pytest.raises(KeyError):
            get_device("jetson")

    def test_negative_coefficients_rejected(self):
        with pytest.raises(ValueError):
            DeviceProfile("bad", -1, 1, 1, 1, 1)

    def test_dwconv_more_expensive_than_dense_conv(self):
        for device in (RASPBERRY_PI_4, ODROID_XU4):
            assert device.dwconv_ns_per_mac > device.conv_ns_per_mac

    def test_op_latency_positive(self):
        assert RASPBERRY_PI_4.op_latency_ms("conv", 1e6, 1e4) > 0

    def test_op_latency_unknown_kind_is_memory_bound(self):
        latency = RASPBERRY_PI_4.op_latency_ms("bn", 1e9, 10)
        assert latency < RASPBERRY_PI_4.op_latency_ms("conv", 1e9, 10)


class TestLatencyEstimates:
    def test_latency_positive_for_all_zoo_models(self):
        for name in paper_values.TABLE3:
            descriptor = get_architecture(name)
            assert estimate_latency_ms(descriptor, RASPBERRY_PI_4) > 0

    def test_table1_meet_spec_pattern_reproduced(self):
        """The paper's Table 1: only SqueezeNet, MobileNetV3-S and MnasNet 0.5
        meet the 1500 ms constraint on the Raspberry Pi."""
        for name, row in paper_values.TABLE1.items():
            latency = estimate_latency_ms(get_architecture(name), RASPBERRY_PI_4)
            assert (latency <= 1500.0) == row["meets_spec"], name

    def test_depthwise_networks_slower_than_resnet18_despite_fewer_macs(self):
        resnet = get_architecture("ResNet-18")
        mobilenet = get_architecture("MobileNetV2")
        assert mobilenet.macs() < resnet.macs()
        assert estimate_latency_ms(mobilenet, RASPBERRY_PI_4) > estimate_latency_ms(
            resnet, RASPBERRY_PI_4
        )

    def test_fahana_small_speedup_direction(self):
        mobilenet = estimate_latency_ms(get_architecture("MobileNetV2"), RASPBERRY_PI_4)
        fahana = estimate_latency_ms(get_architecture("FaHaNa-Small"), RASPBERRY_PI_4)
        assert mobilenet / fahana > 3.0  # paper reports 5.75x

    def test_fahana_fair_faster_than_resnet50(self):
        resnet = estimate_latency_ms(get_architecture("ResNet-50"), RASPBERRY_PI_4)
        fahana = estimate_latency_ms(get_architecture("FaHaNa-Fair"), RASPBERRY_PI_4)
        assert resnet / fahana > 1.2  # paper reports 1.75x

    def test_odroid_slower_than_pi(self):
        for name in ("MobileNetV2", "ResNet-18"):
            descriptor = get_architecture(name)
            assert estimate_latency_ms(descriptor, ODROID_XU4) > estimate_latency_ms(
                descriptor, RASPBERRY_PI_4
            )

    def test_breakdown_sums_to_total(self):
        descriptor = get_architecture("MobileNetV2")
        breakdown = latency_breakdown_ms(descriptor, RASPBERRY_PI_4)
        assert sum(breakdown.values()) == pytest.approx(
            estimate_latency_ms(descriptor, RASPBERRY_PI_4)
        )

    def test_lower_resolution_is_faster(self):
        descriptor = get_architecture("MobileNetV2")
        assert estimate_latency_ms(descriptor, RASPBERRY_PI_4, resolution=112) < (
            estimate_latency_ms(descriptor, RASPBERRY_PI_4, resolution=224)
        )


class TestLatencyEstimator:
    def test_estimator_matches_direct_estimate(self, tiny_backbone):
        estimator = LatencyEstimator(RASPBERRY_PI_4, resolution=224)
        direct = estimate_latency_ms(tiny_backbone, RASPBERRY_PI_4)
        assert estimator.network_latency_ms(tiny_backbone) == pytest.approx(direct)

    def test_block_cache_hits(self, tiny_backbone):
        estimator = LatencyEstimator(RASPBERRY_PI_4)
        estimator.network_latency_ms(tiny_backbone)
        misses_after_first = estimator.cache_misses
        estimator.network_latency_ms(tiny_backbone)
        assert estimator.cache_misses == misses_after_first
        assert estimator.cache_hits > 0

    def test_meets_constraint(self, tiny_backbone):
        estimator = LatencyEstimator(RASPBERRY_PI_4)
        latency = estimator.network_latency_ms(tiny_backbone)
        assert estimator.meets_constraint(tiny_backbone, latency + 1)
        assert not estimator.meets_constraint(tiny_backbone, latency - 1)

    def test_invalid_resolution(self):
        with pytest.raises(ValueError):
            LatencyEstimator(RASPBERRY_PI_4, resolution=0)


class TestStorage:
    def test_storage_matches_descriptor(self):
        descriptor = get_architecture("ResNet-18")
        assert storage_mb(descriptor) == pytest.approx(descriptor.storage_mb())

    def test_storage_ordering_matches_paper(self):
        small = storage_mb(get_architecture("FaHaNa-Small"))
        large = storage_mb(get_architecture("ResNet-50"))
        assert small < 4 and large > 80

    def test_peak_activation_positive(self, tiny_backbone):
        assert peak_activation_mb(tiny_backbone) > 0

    def test_fits_in_memory(self, tiny_backbone):
        assert fits_in_memory(tiny_backbone, memory_mb=8192)
        assert not fits_in_memory(tiny_backbone, memory_mb=0.001)

    def test_fits_in_memory_invalid(self, tiny_backbone):
        with pytest.raises(ValueError):
            fits_in_memory(tiny_backbone, memory_mb=0)


class TestConstraints:
    def test_defaults_match_paper(self):
        spec = DesignSpec()
        assert spec.timing_constraint_ms == 1500.0
        assert spec.hardware.device.name == RASPBERRY_PI_4.name

    def test_invalid_timing_constraint(self):
        with pytest.raises(ValueError):
            HardwareSpec(timing_constraint_ms=0)

    def test_invalid_accuracy_constraint(self):
        with pytest.raises(ValueError):
            SoftwareSpec(accuracy_constraint=1.5)

    def test_design_spec_accessors(self):
        spec = DesignSpec(
            hardware=HardwareSpec(timing_constraint_ms=700),
            software=SoftwareSpec(accuracy_constraint=0.83),
        )
        assert spec.timing_constraint_ms == 700
        assert spec.accuracy_constraint == 0.83


class TestCalibration:
    def test_fit_recovers_reasonable_profile(self):
        measurements = {
            name: row["latency_pi_ms"] for name, row in paper_values.TABLE3.items()
        }
        descriptors = {name: get_architecture(name) for name in measurements}
        profile, predictions = fit_device_profile("fit-test", measurements, descriptors)
        assert profile.dwconv_ns_per_mac >= 0
        # predictions within a factor of ~3 of the measurements for most nets
        ratios = [predictions[n] / measurements[n] for n in measurements]
        assert np.median(ratios) == pytest.approx(1.0, abs=0.5)

    def test_fit_requires_enough_networks(self):
        descriptors = {"MobileNetV2": get_architecture("MobileNetV2")}
        with pytest.raises(ValueError):
            fit_device_profile("x", {"MobileNetV2": 100.0}, descriptors)

    def test_fit_rejects_non_positive_latency(self):
        names = list(paper_values.TABLE3)[:6]
        descriptors = {n: get_architecture(n) for n in names}
        measurements = {n: 100.0 for n in names}
        measurements[names[0]] = 0.0
        with pytest.raises(ValueError):
            fit_device_profile("x", measurements, descriptors)
