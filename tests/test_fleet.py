"""Tests for the fleet fabric: retry policy, chaos harness, lease supervision,
the remote worker pool, the daemon's /agents endpoints, graceful drain, and
the acceptance scenario -- a wave that survives an agent killed mid-task
bit-for-bit identical to an undisturbed local run."""

from __future__ import annotations

import dataclasses
import glob
import json
import operator
import os
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.api.run import execute
from repro.engine import EngineConfig
from repro.engine.checkpoint import has_checkpoint
from repro.engine.cli import SUBCOMMANDS
from repro.engine.cli import main as cli_main
from repro.engine.events import (
    FLEET_AGENT_DEAD,
    FLEET_DEGRADED,
    FLEET_LEASE_REASSIGNED,
)
from repro.engine.workers import (
    available_backends,
    create_pool,
    ensure_backend,
    register_backend,
)
from repro.fleet import (
    ChaosPolicy,
    DroppedMessage,
    FleetConfig,
    FleetSupervisor,
    RemoteWorkerPool,
    RetryPolicy,
    UnknownAgent,
    WorkerAgent,
    install_supervisor,
    installed_supervisor,
)
from repro.fleet.pool import decode_result, encode_task, run_task
from repro.service.daemon import RunService
from repro.service.errors import ServiceDraining, ServiceError
from repro.service.local import LocalExecutor
from repro.service.registry import RunRegistry, atomic_write_json
from repro.service.remote import ServiceExecutor

from test_service import _comparable, _tiny_spec

# Timing contract sized for tests: agents are declared dead ~0.45s after
# their last heartbeat, unacknowledged leases expire after 0.8s.
FAST = FleetConfig(
    heartbeat_interval=0.15,
    miss_factor=3.0,
    lease_seconds=0.8,
    poll_interval=0.05,
)

# Agent-side retry sized so dropped messages resolve in milliseconds.
FAST_RETRY = RetryPolicy(max_attempts=3, base_delay=0.02, max_delay=0.05)


# Task functions must be importable (pickled by reference, like the process
# backend's contract).
def _square(x):
    return x * x


def _boom(x):
    raise ValueError(f"boom on {x}")


def _slow_identity(x):
    time.sleep(0.7)
    return x


class _Unpicklable(Exception):
    def __reduce__(self):
        raise TypeError("deliberately unpicklable")


def _raise_unpicklable(x):
    raise _Unpicklable()


# -- the shared retry policy ----------------------------------------------------------
class TestRetryPolicy:
    def test_delay_schedule_is_deterministic_and_capped(self):
        policy = RetryPolicy(
            max_attempts=5, base_delay=0.1, multiplier=2.0, max_delay=0.5
        )
        assert policy.delays() == (0.1, 0.2, 0.4, 0.5)

    def test_retries_connection_faults_on_the_schedule(self):
        policy = RetryPolicy(max_attempts=4, base_delay=0.1, multiplier=2.0)
        calls, slept = [], []

        def attempt():
            calls.append(1)
            if len(calls) < 3:
                raise urllib.error.URLError("connection refused")
            return "ok"

        assert policy.call(attempt, sleep=slept.append) == "ok"
        assert len(calls) == 3
        assert slept == [0.1, 0.2]  # the exact jitter-free backoff instants

    def test_4xx_is_never_retried(self):
        policy = RetryPolicy(max_attempts=4)
        calls = []

        def attempt():
            calls.append(1)
            raise urllib.error.HTTPError("http://x", 404, "nf", None, None)

        with pytest.raises(urllib.error.HTTPError):
            policy.call(attempt, sleep=lambda _s: None)
        assert len(calls) == 1

    def test_5xx_retries_then_reraises_the_original(self):
        policy = RetryPolicy(max_attempts=3)
        calls = []

        def attempt():
            calls.append(1)
            raise urllib.error.HTTPError("http://x", 503, "draining", None, None)

        with pytest.raises(urllib.error.HTTPError) as excinfo:
            policy.call(attempt, sleep=lambda _s: None)
        assert excinfo.value.code == 503
        assert len(calls) == 3

    def test_non_idempotent_calls_get_exactly_one_attempt(self):
        policy = RetryPolicy(max_attempts=4)
        calls = []

        def attempt():
            calls.append(1)
            raise urllib.error.URLError("dropped")

        with pytest.raises(urllib.error.URLError):
            policy.call(attempt, idempotent=False, sleep=lambda _s: None)
        assert len(calls) == 1

    def test_max_attempts_override_for_probes(self):
        policy = RetryPolicy(max_attempts=4)
        calls = []

        def attempt():
            calls.append(1)
            raise ConnectionError("refused")

        with pytest.raises(ConnectionError):
            policy.call(attempt, max_attempts=1, sleep=lambda _s: None)
        assert len(calls) == 1

    def test_retryability_classification(self):
        policy = RetryPolicy()
        assert policy.is_retryable(urllib.error.URLError("refused"))
        assert policy.is_retryable(ConnectionError())
        assert policy.is_retryable(TimeoutError())
        assert policy.is_retryable(
            urllib.error.HTTPError("http://x", 502, "bad", None, None)
        )
        assert not policy.is_retryable(
            urllib.error.HTTPError("http://x", 400, "bad", None, None)
        )
        assert not policy.is_retryable(ValueError("caller bug"))

    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="multiplier"):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError, match="delays"):
            RetryPolicy(base_delay=-1.0)


# -- the chaos harness ----------------------------------------------------------------
class TestChaosPolicy:
    def test_drop_schedule_is_deterministic_by_call_index(self):
        chaos = ChaosPolicy(drop={"lease": {0, 2}})
        verdicts = [chaos.on_send("lease") for _ in range(4)]
        assert [v.dropped for v in verdicts] == [True, False, True, False]
        assert chaos.dropped == 2
        assert chaos.calls("lease") == 4
        # Other operations are untouched.
        assert not chaos.on_send("complete").dropped

    def test_dropped_message_is_a_connection_fault(self):
        verdict = ChaosPolicy(drop={"lease": {0}}).on_send("lease")
        with pytest.raises(DroppedMessage) as excinfo:
            verdict.raise_if_dropped()
        assert isinstance(excinfo.value, urllib.error.URLError)  # retryable

    def test_duplicate_schedule(self):
        chaos = ChaosPolicy(duplicate={"complete": {1}})
        assert not chaos.on_send("complete").duplicated
        assert chaos.on_send("complete").duplicated
        assert chaos.duplicated == 1

    def test_kill_on_exact_task_ordinal(self):
        chaos = ChaosPolicy(kill_on_task=2)
        assert not chaos.should_die(0)
        assert not chaos.should_die(1)
        assert chaos.should_die(2)
        assert chaos.kills == 1

    def test_heartbeat_stall_budget(self):
        chaos = ChaosPolicy(stall_heartbeat_after=2)
        assert [chaos.heartbeat_stalled() for _ in range(4)] == [
            False,
            False,
            True,
            True,
        ]
        assert chaos.stalled_heartbeats == 2


# -- the task wire format -------------------------------------------------------------
class TestWireFormat:
    def test_roundtrip(self):
        assert decode_result(run_task(encode_task(_square, 7))) == 49

    def test_task_exception_is_a_result_and_rethrows(self):
        blob = run_task(encode_task(_boom, 3))
        with pytest.raises(ValueError, match="boom on 3"):
            decode_result(blob)

    def test_unpicklable_exception_degrades_to_description(self):
        blob = run_task(encode_task(_raise_unpicklable, 0))
        with pytest.raises(RuntimeError, match="_Unpicklable"):
            decode_result(blob)


# -- the supervisor's lease tables (in-process, no HTTP) ------------------------------
class TestSupervisor:
    def _supervisor(self, **overrides) -> FleetSupervisor:
        config = dataclasses.replace(FAST, **overrides)
        return FleetSupervisor(config)

    def test_register_returns_the_timing_contract(self):
        supervisor = self._supervisor()
        info = supervisor.register_agent("alpha")
        assert info["name"] == "alpha"
        assert info["heartbeat_interval"] == FAST.heartbeat_interval
        assert info["lease_seconds"] == FAST.lease_seconds
        assert supervisor.alive_agents() == 1

    def test_grants_are_lowest_index_first_and_at_most_one(self):
        supervisor = self._supervisor()
        a = supervisor.register_agent("a")["agent_id"]
        b = supervisor.register_agent("b")["agent_id"]
        wave = supervisor.submit_wave([b"t0", b"t1"])
        first = supervisor.lease(a)
        assert first["task_id"] == f"{wave.wave_id}:0"
        second = supervisor.lease(b)
        assert second["task_id"] == f"{wave.wave_id}:1"
        assert supervisor.lease(a) is None  # nothing pending: no double grant
        assert supervisor.complete(a, first["task_id"], b"r0")
        assert supervisor.complete(b, second["task_id"], b"r1")
        assert wave.done
        assert [task.result for task in wave.tasks] == [b"r0", b"r1"]

    def test_unacknowledged_lease_expires_on_its_deadline(self):
        supervisor = self._supervisor(lease_seconds=0.1)
        agent = supervisor.register_agent("a")["agent_id"]
        wave = supervisor.submit_wave([b"t0"])
        grant = supervisor.lease(agent)
        # The grant response was "dropped": the agent heartbeats (staying
        # alive) but never reports the task, so the lease is never renewed.
        deadline = time.monotonic() + 5.0
        while wave.tasks[0].state == "leased" and time.monotonic() < deadline:
            supervisor.heartbeat(agent, active_tasks=[])
            time.sleep(0.03)
        assert wave.tasks[0].state == "pending"
        assert wave.tasks[0].attempts == 1
        assert supervisor.reassignments == 1
        incidents = supervisor.drain_incidents(wave)
        assert incidents[0]["kind"] == "lease-reassigned"
        assert incidents[0]["reason"] == "lease-expired"
        # The stale completion from the fenced-off grant is rejected.
        assert not supervisor.complete(agent, grant["task_id"], b"late")
        assert supervisor.stale_completions == 1

    def test_heartbeat_link_state_renews_acknowledged_leases(self):
        supervisor = self._supervisor(lease_seconds=0.2)
        agent = supervisor.register_agent("a")["agent_id"]
        supervisor.submit_wave([b"t0"])
        grant = supervisor.lease(agent)
        # Renewed leases outlive the base lease duration many times over.
        for _ in range(8):
            supervisor.heartbeat(agent, active_tasks=[grant["task_id"]])
            time.sleep(0.05)
        assert supervisor.complete(agent, grant["task_id"], b"done")
        assert supervisor.reassignments == 0

    def test_dead_agent_is_reaped_and_its_leases_reassigned(self):
        supervisor = self._supervisor(
            heartbeat_interval=0.05, lease_seconds=5.0
        )
        dead = supervisor.register_agent("doomed")["agent_id"]
        wave = supervisor.submit_wave([b"t0"])
        grant = supervisor.lease(dead)
        time.sleep(supervisor.config.agent_timeout + 0.1)  # silence: no beats
        supervisor.reap()
        assert supervisor.alive_agents() == 0
        assert supervisor.agents_died == 1
        assert wave.tasks[0].state == "pending"
        kinds = {i["kind"]: i for i in supervisor.drain_incidents(wave)}
        assert kinds["agent-dead"]["agent"] == "doomed"
        assert kinds["lease-reassigned"]["reason"] == "agent-dead"
        with pytest.raises(UnknownAgent):
            supervisor.heartbeat(dead, [])
        # A survivor picks the task up and completes it normally.
        survivor = supervisor.register_agent("survivor")["agent_id"]
        regrant = supervisor.lease(survivor)
        assert regrant["task_id"] == grant["task_id"]
        assert supervisor.complete(survivor, regrant["task_id"], b"r")

    def test_completion_for_garbage_task_ids_is_fenced_not_raised(self):
        supervisor = self._supervisor()
        agent = supervisor.register_agent("a")["agent_id"]
        assert not supervisor.complete(agent, "no-such-wave:0", b"r")
        assert not supervisor.complete(agent, "malformed", b"r")
        assert supervisor.stale_completions == 2

    def test_claim_local_when_the_fleet_is_empty(self):
        supervisor = self._supervisor()
        wave = supervisor.submit_wave([b"t0", b"t1"])
        assert supervisor.claim_local(wave) == [0, 1]
        supervisor.complete_local(wave, 0, b"r0")
        supervisor.complete_local(wave, 1, b"r1")
        assert wave.done

    def test_claim_local_after_attempts_exhausted(self):
        supervisor = self._supervisor(lease_seconds=0.05, max_task_attempts=1)
        agent = supervisor.register_agent("flaky")["agent_id"]
        wave = supervisor.submit_wave([b"t0"])
        supervisor.lease(agent)
        deadline = time.monotonic() + 5.0
        while wave.tasks[0].state == "leased" and time.monotonic() < deadline:
            supervisor.heartbeat(agent, active_tasks=[])  # never acks
            time.sleep(0.02)
        # Budget burned: the task is withheld from agents, claimed locally.
        assert supervisor.lease(agent) is None
        assert supervisor.claim_local(wave) == [0]

    def test_drain_stops_grants(self):
        supervisor = self._supervisor()
        agent = supervisor.register_agent("a")["agent_id"]
        supervisor.submit_wave([b"t0"])
        supervisor.drain()
        assert supervisor.lease(agent) is None
        assert supervisor.heartbeat(agent, [])["draining"] is True


# -- the engine-facing pool -----------------------------------------------------------
class TestRemoteWorkerPool:
    def test_degraded_execution_with_no_agents(self):
        supervisor = FleetSupervisor(FAST)
        events = []
        pool = RemoteWorkerPool(supervisor=supervisor, events=events.append)
        results = pool.map_ordered(operator.neg, [1, 2, 3])
        assert [value for value, _label in results] == [-1, -2, -3]
        assert {label for _value, label in results} == {"fleet-local"}
        degraded = [e for e in events if e.kind == FLEET_DEGRADED]
        assert degraded and degraded[0].payload["reason"] == "no-live-agents"

    def test_task_exceptions_propagate_to_the_caller(self):
        pool = RemoteWorkerPool(supervisor=FleetSupervisor(FAST))
        with pytest.raises(ValueError, match="boom"):
            pool.map_ordered(_boom, [1])

    def test_pool_requires_a_supervisor(self):
        previous = installed_supervisor()
        install_supervisor(None)
        try:
            with pytest.raises(RuntimeError, match="needs a FleetSupervisor"):
                RemoteWorkerPool()
        finally:
            install_supervisor(previous)

    def test_installed_supervisor_slot(self):
        previous = installed_supervisor()
        supervisor = FleetSupervisor(FAST)
        install_supervisor(supervisor)
        try:
            assert RemoteWorkerPool().supervisor is supervisor
        finally:
            install_supervisor(previous)


# -- backend registration in the engine -----------------------------------------------
class TestBackendRegistration:
    def test_fleet_is_an_available_backend(self):
        assert "fleet" in available_backends()
        assert ensure_backend("fleet") == "fleet"

    def test_engine_config_validates_fleet_by_name(self):
        # Spec parsing must accept the backend without a daemon running.
        assert EngineConfig(backend="fleet").backend == "fleet"

    def test_unknown_backend_is_a_value_error(self):
        with pytest.raises(ValueError, match="unknown"):
            ensure_backend("quantum")
        with pytest.raises(ValueError, match="unknown"):
            EngineConfig(backend="quantum")

    def test_register_backend_rejects_builtin_names(self):
        with pytest.raises(ValueError, match="built in"):
            register_backend("serial", lambda **_kw: None)

    def test_builtin_pools_are_untouched(self):
        pool = create_pool("thread", num_workers=1)
        try:
            results = pool.map_ordered(_square, [2, 3])
            assert [value for value, _label in results] == [4, 9]
        finally:
            pool.close()


# -- the daemon's /agents endpoints and live agents -----------------------------------
@pytest.fixture()
def fleet_service(tmp_path):
    service = RunService(str(tmp_path / "runs"), port=0, fleet=FAST).start()
    yield service
    service.shutdown()


def _start_agent(url, name, chaos=None):
    agent = WorkerAgent(
        url, name=name, chaos=chaos, retry=FAST_RETRY, register_timeout=10.0
    )
    thread = threading.Thread(target=agent.run, daemon=True, name=f"agent-{name}")
    thread.start()
    return agent, thread


def _stop_agents(*pairs):
    for agent, _thread in pairs:
        agent.stop()
    for _agent, thread in pairs:
        thread.join(timeout=10)


def _wait_for_agents(supervisor, count, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if supervisor.alive_agents() >= count:
            return
        time.sleep(0.02)
    raise AssertionError(f"fleet never reached {count} live agent(s)")


class TestFleetOverHTTP:
    def test_wave_spreads_across_two_agents(self, fleet_service):
        pairs = [
            _start_agent(fleet_service.url, "alpha"),
            _start_agent(fleet_service.url, "beta"),
        ]
        try:
            _wait_for_agents(fleet_service.supervisor, 2)
            pool = RemoteWorkerPool(supervisor=fleet_service.supervisor)
            results = pool.map_ordered(_square, [1, 2, 3, 4, 5])
            assert [value for value, _label in results] == [1, 4, 9, 16, 25]
            labels = {label for _value, label in results}
            assert labels <= {"agent:alpha", "agent:beta"}
            # GET /agents serves the fleet's link state.
            with urllib.request.urlopen(fleet_service.url + "/agents") as resp:
                payload = json.load(resp)
            assert {a["name"] for a in payload["agents"]} == {"alpha", "beta"}
            assert payload["draining"] is False
        finally:
            _stop_agents(*pairs)

    def test_duplicate_complete_is_fenced(self, fleet_service):
        chaos = ChaosPolicy(duplicate={"complete": {0}})
        pair = _start_agent(fleet_service.url, "dup", chaos=chaos)
        try:
            _wait_for_agents(fleet_service.supervisor, 1)
            pool = RemoteWorkerPool(supervisor=fleet_service.supervisor)
            results = pool.map_ordered(_square, [2, 3, 4])
            assert [value for value, _label in results] == [4, 9, 16]
            assert chaos.duplicated == 1
            assert fleet_service.supervisor.stale_completions >= 1
        finally:
            _stop_agents(pair)

    def test_dropped_messages_are_survived(self, fleet_service):
        # The first lease never leaves the agent (non-idempotent: the loop
        # re-leases) and the first complete is dropped then retried
        # (idempotent: fencing makes the resend safe).
        chaos = ChaosPolicy(drop={"lease": {0}, "complete": {0}})
        pair = _start_agent(fleet_service.url, "lossy", chaos=chaos)
        try:
            _wait_for_agents(fleet_service.supervisor, 1)
            pool = RemoteWorkerPool(supervisor=fleet_service.supervisor)
            results = pool.map_ordered(_square, [5, 6])
            assert [value for value, _label in results] == [25, 36]
            assert chaos.dropped == 2
        finally:
            _stop_agents(pair)

    def test_stalled_heartbeats_mean_death_then_reregistration(
        self, fleet_service
    ):
        # The agent keeps working but every heartbeat is swallowed; its task
        # outlives the agent timeout, so the supervisor declares it dead and
        # the pool degrades to local execution.  The stale agent's eventual
        # completion must be fenced off, and the agent rejoins under a new id.
        supervisor = fleet_service.supervisor
        chaos = ChaosPolicy(stall_heartbeat_after=0)
        pair = _start_agent(fleet_service.url, "mute", chaos=chaos)
        try:
            _wait_for_agents(supervisor, 1)
            first_id = pair[0].agent_id
            pool = RemoteWorkerPool(supervisor=supervisor)
            results = pool.map_ordered(_slow_identity, [42])
            assert results[0][0] == 42
            assert supervisor.agents_died >= 1
            deadline = time.monotonic() + 10.0
            while supervisor.stale_completions < 1:
                assert time.monotonic() < deadline, "stale complete never fenced"
                time.sleep(0.02)
            _wait_for_agents(supervisor, 1)  # re-registered after the 404
            assert pair[0].agent_id != first_id
        finally:
            _stop_agents(pair)

    def test_acceptance_kill_agent_mid_wave_bitwise_parity(self, fleet_service):
        """The issue's acceptance criterion.

        A run on the fleet with an agent killed mid-wave must produce a
        report bit-for-bit identical to an undisturbed local run of the same
        spec, with the recovery visible as a reassignment metric and typed
        fleet events.
        """
        spec = _tiny_spec(episodes=4)
        direct = execute(spec)

        fleet_spec = dataclasses.replace(
            spec, engine=EngineConfig(backend="fleet", num_workers=2)
        )
        # Deterministic fault sequencing: only the doomed agent is up when
        # the wave opens, so it must lease task 0 and die holding it; the
        # healthy agent joins only after the death and inherits the work.
        chaos = ChaosPolicy(kill_on_task=0)
        doomed, doomed_thread = _start_agent(
            fleet_service.url, "doomed", chaos=chaos
        )
        healthy_pair = None
        try:
            _wait_for_agents(fleet_service.supervisor, 1)
            executor = ServiceExecutor(fleet_service.url)
            run_id = executor.submit(fleet_spec)
            doomed_thread.join(timeout=30)
            assert doomed.killed, "chaos kill never fired"
            healthy_pair = _start_agent(fleet_service.url, "healthy")
            fetched = executor.result(run_id, timeout=120)

            assert _comparable(fetched) == _comparable(direct.to_dict())
            assert fleet_service.supervisor.reassignments >= 1
            assert fleet_service.supervisor.agents_died >= 1
            kinds = [event.kind for event in executor.events(run_id)]
            assert FLEET_AGENT_DEAD in kinds
            assert FLEET_LEASE_REASSIGNED in kinds
        finally:
            if healthy_pair is not None:
                _stop_agents(healthy_pair)
            doomed.stop()
            doomed_thread.join(timeout=10)

    def test_agent_exits_when_the_daemon_vanishes(self, tmp_path):
        # No drain, just silence: the daemon dies outright and the agent
        # must give it up for dead instead of polling the corpse forever.
        service = RunService(str(tmp_path / "runs"), port=0, fleet=FAST).start()
        agent = WorkerAgent(
            service.url,
            name="orphan",
            retry=FAST_RETRY,
            register_timeout=10.0,
            daemon_timeout=0.5,
        )
        thread = threading.Thread(target=agent.run, daemon=True)
        thread.start()
        try:
            _wait_for_agents(service.supervisor, 1)
            service.shutdown()  # abrupt: no drain signal ever reaches the agent
            thread.join(timeout=30)
            assert not thread.is_alive()
            assert agent.lost_daemon
            assert not agent.draining
        finally:
            agent.stop()
            thread.join(timeout=10)

    def test_daemon_drain_winds_agents_down(self, fleet_service):
        agent, thread = _start_agent(fleet_service.url, "polite")
        try:
            _wait_for_agents(fleet_service.supervisor, 1)
            checkpointed = fleet_service.drain(timeout=10)
            assert checkpointed == []  # nothing was running
            thread.join(timeout=10)
            assert not thread.is_alive()
            assert agent.draining
            # New submissions are refused with a 503 while draining.
            with pytest.raises(ServiceError) as excinfo:
                ServiceExecutor(fleet_service.url).submit(_tiny_spec())
            assert excinfo.value.status == 503
        finally:
            _stop_agents((agent, thread))


# -- graceful drain of the local executor ---------------------------------------------
class TestDrain:
    def test_drain_refuses_new_work(self, tmp_path):
        executor = LocalExecutor(runs_root=str(tmp_path / "runs"))
        executor.drain(timeout=5)
        with pytest.raises(ServiceDraining, match="submission"):
            executor.submit(_tiny_spec())
        with pytest.raises(ServiceDraining, match="resume"):
            executor.resume("any-run")

    def test_drain_checkpoints_in_flight_and_leaves_queue_intact(self, tmp_path):
        executor = LocalExecutor(runs_root=str(tmp_path / "runs"))
        running = executor.submit(_tiny_spec(episodes=16))
        queued = executor.submit(_tiny_spec())  # FIFO: waits behind `running`
        deadline = time.monotonic() + 30.0
        while executor.status(running)["state"] != "running":
            assert time.monotonic() < deadline, "run never started"
            time.sleep(0.02)
        drained = executor.drain(timeout=30)
        assert drained == [running]
        status = executor.status(running)
        assert status["state"] == "cancelled"
        assert has_checkpoint(status["run_dir"])  # resumable, not lost
        # Accepted-but-unstarted work stays queued for a successor to adopt.
        assert executor.status(queued)["state"] == "queued"


# -- atomic registry writes -----------------------------------------------------------
class TestAtomicWrites:
    def test_atomic_write_json_replaces_whole_files(self, tmp_path):
        path = str(tmp_path / "status.json")
        atomic_write_json(path, {"state": "queued"})
        atomic_write_json(path, {"state": "running"})
        with open(path, encoding="utf-8") as handle:
            assert json.load(handle) == {"state": "running"}
        assert glob.glob(str(tmp_path / "*.tmp")) == []

    def test_atomic_write_json_cleans_up_on_failure(self, tmp_path):
        path = str(tmp_path / "status.json")
        atomic_write_json(path, {"state": "queued"})
        with pytest.raises(TypeError):
            atomic_write_json(path, {"bad": {1, 2}})  # sets are not JSON
        # The destination still holds the previous intact payload.
        with open(path, encoding="utf-8") as handle:
            assert json.load(handle) == {"state": "queued"}
        assert glob.glob(str(tmp_path / "*.tmp")) == []

    def test_registry_artifacts_have_no_torn_leftovers(self, tmp_path):
        registry = RunRegistry(str(tmp_path / "runs"))
        created = registry.create(_tiny_spec())
        run_id = created["run_id"]
        registry.write_status(registry.load_status(run_id))
        run_dir = registry.run_dir(run_id)
        assert json.load(open(os.path.join(run_dir, "run_spec.json")))
        assert glob.glob(os.path.join(run_dir, "*.tmp")) == []


# -- the CLI surface ------------------------------------------------------------------
class TestAgentCLI:
    def test_agent_is_a_subcommand(self):
        assert "agent" in SUBCOMMANDS

    def test_agent_exits_nonzero_when_no_daemon(self, capsys):
        code = cli_main(
            [
                "agent",
                "--url",
                "http://127.0.0.1:9",  # discard port: connection refused
                "--register-timeout",
                "0.3",
                "--timeout",
                "0.3",
            ]
        )
        assert code == 1
        assert "no daemon reachable" in capsys.readouterr().err
