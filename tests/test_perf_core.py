"""Tests for the fast compute core: dtype policy, kernels, in-place optimizers.

The float64 guarantees are *exact* (0 ulp): the strided ``im2col`` against the
seed's loop implementation, the in-place optimizer steps against the seed's
allocating arithmetic, and an explicit-float64 compute section against a spec
with no compute section at all.  float32 is held to tolerances instead -- it
is a different rounding of the same computation.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro
from repro.api.spec import ComputeSpec, RunSpec
from repro.data.dataset import GroupedDataset
from repro.engine.workers import create_pool, limit_blas_threads
from repro.nn import init
from repro.nn.dtype import default_dtype, get_default_dtype, set_default_dtype
from repro.nn.functional import (
    col2im,
    col2im_reference,
    im2col,
    im2col_reference,
    one_hot,
)
from repro.nn.layers.conv import Conv2d, DepthwiseConv2d
from repro.nn.layers.norm import BatchNorm2d
from repro.nn.layers.pooling import MaxPool2d
from repro.nn.metrics import accuracy, confusion_matrix
from repro.nn.module import Module, Sequential, inference_mode, is_inference
from repro.nn.optim import SGD, Adam
from repro.nn.tensor import Parameter
from repro.nn.trainer import Trainer, TrainingConfig

SETTINGS = settings(max_examples=40, deadline=None)

# One strategy for the whole (shape, kernel, stride, padding) space of the
# unfold property tests.
_geometry = st.tuples(
    st.integers(1, 3),  # n
    st.integers(1, 4),  # c
    st.integers(3, 12),  # h
    st.integers(3, 12),  # w
    st.integers(1, 4),  # kernel_h
    st.integers(1, 4),  # kernel_w
    st.integers(1, 3),  # stride
    st.integers(0, 3),  # padding
)


def _valid_geometry(geometry) -> bool:
    n, c, h, w, kh, kw, stride, padding = geometry
    return (h + 2 * padding - kh) // stride + 1 > 0 and (
        w + 2 * padding - kw
    ) // stride + 1 > 0


# -- im2col / col2im ----------------------------------------------------------------
class TestUnfoldKernels:
    @SETTINGS
    @given(geometry=_geometry, data=st.data())
    def test_im2col_matches_reference_to_zero_ulp(self, geometry, data):
        if not _valid_geometry(geometry):
            return
        n, c, h, w, kh, kw, stride, padding = geometry
        seed = data.draw(st.integers(0, 2**31 - 1), label="seed")
        x = np.random.default_rng(seed).random((n, c, h, w))
        new = im2col(x, kh, kw, stride, padding)
        ref = im2col_reference(x, kh, kw, stride, padding)
        assert new.shape == ref.shape
        assert np.array_equal(new, ref)  # bitwise, not approx

    @SETTINGS
    @given(geometry=_geometry, data=st.data())
    def test_im2col_out_buffer_and_float32(self, geometry, data):
        if not _valid_geometry(geometry):
            return
        n, c, h, w, kh, kw, stride, padding = geometry
        seed = data.draw(st.integers(0, 2**31 - 1), label="seed")
        x = np.random.default_rng(seed).random((n, c, h, w)).astype(np.float32)
        ref = im2col_reference(x, kh, kw, stride, padding)
        out = np.empty(ref.shape, dtype=np.float32)
        result = im2col(x, kh, kw, stride, padding, out=out)
        assert result is out
        assert np.array_equal(out, ref)

    @SETTINGS
    @given(geometry=_geometry, data=st.data())
    def test_col2im_is_exact_adjoint_of_im2col(self, geometry, data):
        """<im2col(x), G> == <x, col2im(G)> for every stride/padding/kernel."""
        if not _valid_geometry(geometry):
            return
        n, c, h, w, kh, kw, stride, padding = geometry
        seed = data.draw(st.integers(0, 2**31 - 1), label="seed")
        rng = np.random.default_rng(seed)
        x = rng.random((n, c, h, w))
        cols = im2col(x, kh, kw, stride, padding)
        g = rng.random(cols.shape)
        lhs = float(np.sum(cols * g))
        rhs = float(np.sum(x * col2im(g, x.shape, kh, kw, stride, padding)))
        assert lhs == pytest.approx(rhs, rel=1e-12, abs=1e-12)

    @SETTINGS
    @given(geometry=_geometry, data=st.data())
    def test_col2im_matches_reference_to_zero_ulp(self, geometry, data):
        if not _valid_geometry(geometry):
            return
        n, c, h, w, kh, kw, stride, padding = geometry
        seed = data.draw(st.integers(0, 2**31 - 1), label="seed")
        out_h = (h + 2 * padding - kh) // stride + 1
        out_w = (w + 2 * padding - kw) // stride + 1
        g = np.random.default_rng(seed).random((n, c, kh, kw, out_h, out_w))
        new = col2im(g, (n, c, h, w), kh, kw, stride, padding)
        ref = col2im_reference(g, (n, c, h, w), kh, kw, stride, padding)
        assert np.array_equal(np.asarray(new), np.asarray(ref))


# -- conv layers --------------------------------------------------------------------
class TestConvKernels:
    @pytest.mark.parametrize("kernel,stride,padding", [(1, 1, 0), (3, 1, 1), (3, 2, 1), (5, 1, 2)])
    def test_conv2d_gradients_match_dense_reference(self, kernel, stride, padding):
        """The workspace/matmul path agrees with a literal einsum evaluation."""
        rng = np.random.default_rng(0)
        layer = Conv2d(3, 4, kernel, stride=stride, padding=padding, rng=0)
        x = rng.random((2, 3, 8, 8))
        out = layer.forward(x)
        cols = im2col_reference(x, kernel, kernel, stride, padding)
        expected = np.einsum(
            "ocij,ncijhw->nohw", layer.weight.data, cols, optimize=True
        ) + layer.bias.data[None, :, None, None]
        assert np.allclose(out, expected, rtol=1e-12, atol=1e-12)

        grad = rng.random(out.shape)
        grad_input = layer.backward(grad)
        expected_wgrad = np.einsum("nohw,ncijhw->ocij", grad, cols, optimize=True)
        assert np.allclose(layer.weight.grad, expected_wgrad, rtol=1e-11, atol=1e-12)
        expected_gcols = np.einsum(
            "ocij,nohw->ncijhw", layer.weight.data, grad, optimize=True
        )
        expected_ginput = col2im_reference(
            expected_gcols, x.shape, kernel, kernel, stride, padding
        )
        assert np.allclose(grad_input, expected_ginput, rtol=1e-11, atol=1e-12)

    @pytest.mark.parametrize("kernel,padding", [(1, 0), (2, 1), (3, 0), (3, 1), (5, 2), (5, 4)])
    def test_depthwise_float32_fast_backward_matches_seed_order(self, kernel, padding):
        """The stride-1 float32 transposed-correlation equals the fold loop."""
        rng = np.random.default_rng(1)
        layer64 = DepthwiseConv2d(4, kernel, stride=1, padding=padding, rng=0)
        layer32 = DepthwiseConv2d(4, kernel, stride=1, padding=padding, rng=0)
        layer32.astype(np.float32)
        x = rng.random((3, 4, 9, 9))
        g = rng.random(layer64.forward(x).shape)
        layer32.forward(x.astype(np.float32))
        expected = layer64.backward(g)
        fast = layer32.backward(g.astype(np.float32))
        assert fast.dtype == np.float32
        assert np.allclose(fast, expected, rtol=1e-4, atol=1e-5)

    def test_workspace_reuse_across_forwards(self):
        layer = Conv2d(2, 3, 3, rng=0)
        x = np.random.default_rng(0).random((2, 2, 6, 6))
        layer.forward(x)
        first = layer._workspace
        layer.backward(np.ones((2, 3, 6, 6)))
        layer.forward(x)
        assert layer._workspace is first  # same buffer, no reallocation


# -- max-pool scatter backward ------------------------------------------------------
class TestMaxPoolBackward:
    @staticmethod
    def _dense_reference(layer, grad_output, argmax, input_shape):
        """The seed implementation: dense (n, c, k*k, oh, ow) buffer + col2im."""
        k = layer.kernel_size
        n, c, out_h, out_w = grad_output.shape
        flat = np.zeros((n, c, k * k, out_h, out_w), dtype=grad_output.dtype)
        np.put_along_axis(
            flat, argmax[:, :, None, :, :], grad_output[:, :, None, :, :], axis=2
        )
        cols = flat.reshape(n, c, k, k, out_h, out_w)
        return col2im_reference(cols, input_shape, k, k, layer.stride, layer.padding)

    @pytest.mark.parametrize(
        "kernel,stride,padding", [(2, 2, 0), (3, 3, 0), (2, 2, 1), (3, 1, 1), (3, 2, 1)]
    )
    def test_scatter_matches_dense_reference(self, kernel, stride, padding):
        rng = np.random.default_rng(2)
        layer = MaxPool2d(kernel, stride=stride, padding=padding)
        x = rng.random((2, 3, 8, 8))
        out = layer.forward(x)
        argmax = layer._cache_argmax.copy()
        grad = rng.random(out.shape)
        result = layer.backward(grad)
        expected = self._dense_reference(layer, grad, argmax, x.shape)
        if stride >= kernel:
            # Non-overlapping windows: one contribution per cell, bitwise.
            assert np.array_equal(result, expected)
        else:
            assert np.allclose(result, expected, rtol=1e-12, atol=1e-15)

    def test_float32_gradients_stay_float32(self):
        layer = MaxPool2d(2)
        x = np.random.default_rng(0).random((2, 3, 8, 8)).astype(np.float32)
        out = layer.forward(x)
        grad = layer.backward(np.ones_like(out))
        assert grad.dtype == np.float32 and grad.shape == x.shape


# -- in-place optimizers ------------------------------------------------------------
def _make_params(rng, dtype=np.float64):
    params = [
        Parameter(rng.standard_normal((4, 3)), name="a", dtype=dtype),
        Parameter(rng.standard_normal((5,)), name="b", dtype=dtype),
        Parameter(rng.standard_normal((2, 2)), name="frozen", trainable=False, dtype=dtype),
    ]
    return params


def _seed_sgd_step(params, velocity, lr, momentum, weight_decay):
    """The seed's allocating SGD arithmetic, verbatim."""
    for param in params:
        if not param.trainable:
            continue
        grad = param.grad
        if weight_decay > 0:
            grad = grad + weight_decay * param.data
        v = velocity.get(id(param))
        if v is None:
            v = np.zeros_like(param.data)
        v = momentum * v - lr * grad
        velocity[id(param)] = v
        param.data = param.data + v


def _seed_adam_step(params, state, lr, beta1, beta2, eps, weight_decay):
    state["t"] += 1
    bias1 = 1.0 - beta1 ** state["t"]
    bias2 = 1.0 - beta2 ** state["t"]
    for param in params:
        if not param.trainable:
            continue
        grad = param.grad
        if weight_decay > 0:
            grad = grad + weight_decay * param.data
        m = state["m"].get(id(param))
        v = state["v"].get(id(param))
        if m is None:
            m = np.zeros_like(param.data)
            v = np.zeros_like(param.data)
        m = beta1 * m + (1 - beta1) * grad
        v = beta2 * v + (1 - beta2) * grad**2
        state["m"][id(param)] = m
        state["v"][id(param)] = v
        m_hat = m / bias1
        v_hat = v / bias2
        param.data = param.data - lr * m_hat / (np.sqrt(v_hat) + eps)


class TestInPlaceOptimizers:
    @pytest.mark.parametrize("weight_decay", [0.0, 1e-2])
    def test_sgd_step_bitwise_equals_seed_arithmetic(self, weight_decay):
        rng = np.random.default_rng(3)
        params = _make_params(rng)
        mirror = [Parameter(p.data.copy(), name=p.name, trainable=p.trainable) for p in params]
        optimizer = SGD(params, lr=0.05, momentum=0.9, weight_decay=weight_decay)
        velocity = {}
        for _ in range(5):
            for p, m in zip(params, mirror):
                grad = rng.standard_normal(p.data.shape)
                p.grad[...] = grad
                m.grad[...] = grad
            optimizer.step()
            _seed_sgd_step(mirror, velocity, 0.05, 0.9, weight_decay)
            for p, m in zip(params, mirror):
                assert np.array_equal(p.data, m.data), p.name

    @pytest.mark.parametrize("weight_decay", [0.0, 1e-2])
    def test_adam_step_bitwise_equals_seed_arithmetic(self, weight_decay):
        rng = np.random.default_rng(4)
        params = _make_params(rng)
        mirror = [Parameter(p.data.copy(), name=p.name, trainable=p.trainable) for p in params]
        optimizer = Adam(params, lr=3e-3, weight_decay=weight_decay)
        state = {"t": 0, "m": {}, "v": {}}
        for _ in range(5):
            for p, m in zip(params, mirror):
                grad = rng.standard_normal(p.data.shape)
                p.grad[...] = grad
                m.grad[...] = grad
            optimizer.step()
            _seed_adam_step(mirror, state, 3e-3, 0.9, 0.999, 1e-8, weight_decay)
            for p, m in zip(params, mirror):
                assert np.array_equal(p.data, m.data), p.name

    def test_optimizer_updates_do_not_reallocate_parameter_data(self):
        params = _make_params(np.random.default_rng(5))
        buffers = [p.data for p in params]
        optimizer = Adam(params, lr=1e-3)
        for p in params:
            p.grad[...] = 1.0
        optimizer.step()
        for p, buffer in zip(params, buffers):
            assert p.data is buffer

    def test_state_dict_round_trip_preserves_dtype(self):
        params = _make_params(np.random.default_rng(6), dtype=np.float32)
        optimizer = Adam(params, lr=1e-3)
        for p in params:
            p.grad[...] = 0.5
        optimizer.step()
        restored = Adam(params, lr=1e-3)
        restored.load_state_dict(optimizer.state_dict())
        assert all(m.dtype == np.float32 for m in restored._m.values())


# -- precision policy ---------------------------------------------------------------
class TestDtypePolicy:
    def test_default_is_float64(self):
        assert get_default_dtype() == np.float64

    def test_context_manager_scopes_the_policy(self):
        with default_dtype("float32"):
            assert get_default_dtype() == np.float32
            assert Parameter(np.zeros(3)).data.dtype == np.float32
            assert init.zeros((2,)).dtype == np.float32
            assert init.he_normal((2, 2), 4, rng=0).dtype == np.float32
            assert one_hot(np.array([0, 1]), 3).dtype == np.float32
        assert get_default_dtype() == np.float64
        assert Parameter(np.zeros(3)).data.dtype == np.float64

    def test_invalid_precision_rejected(self):
        with pytest.raises(ValueError, match="unsupported precision"):
            set_default_dtype("float16")
        with pytest.raises(ValueError, match="precision"):
            TrainingConfig(precision="bfloat16")

    def test_float32_initialisation_is_rounded_float64_draws(self):
        """Same RNG stream across precisions: float32 init == float64 init cast."""
        exact = init.he_normal((3, 3), 9, rng=42)
        with default_dtype("float32"):
            rounded = init.he_normal((3, 3), 9, rng=42)
        assert np.array_equal(rounded, exact.astype(np.float32))

    def test_grouped_dataset_preserves_float32(self):
        images = np.random.default_rng(0).random((4, 3, 8, 8)).astype(np.float32)
        dataset = GroupedDataset(
            images=images,
            labels=np.zeros(4, dtype=np.int64),
            groups=np.array([0, 0, 1, 1]),
        )
        assert dataset.images.dtype == np.float32
        assert dataset.subset([0, 2]).images.dtype == np.float32

    def test_module_astype_casts_params_grads_and_buffers(self):
        model = Sequential(Conv2d(2, 3, 3, rng=0), BatchNorm2d(3))
        model.astype(np.float32)
        for _, param in model.named_parameters():
            assert param.data.dtype == np.float32
            assert param.grad.dtype == np.float32
        bn = model[1]
        assert bn.running_mean.dtype == np.float32
        assert bn.running_var.dtype == np.float32
        assert model.dtype == np.float32
        # Buffer re-assignment (running-stat updates) keeps the registry in sync.
        bn.forward(np.zeros((2, 3, 4, 4), dtype=np.float32))
        assert dict(bn.named_buffers())["running_mean"] is bn.running_mean

    def test_load_state_dict_respects_parameter_dtype(self):
        model = Sequential(Conv2d(2, 3, 3, rng=0)).astype(np.float32)
        state = {name: value.astype(np.float64) for name, value in model.state_dict().items()}
        model.load_state_dict(state)
        assert all(p.data.dtype == np.float32 for p in model.parameters())


# -- inference mode -----------------------------------------------------------------
class TestInferenceMode:
    def test_predict_leaves_no_backward_caches(self):
        model = Sequential(Conv2d(3, 4, 3, rng=0), BatchNorm2d(4))
        trainer = Trainer(TrainingConfig(epochs=0, batch_size=4))
        images = np.random.default_rng(0).random((6, 3, 8, 8))
        trainer.predict(model, images)
        conv = model[0]
        assert conv._cache_cols is None and conv._cache_input_shape is None
        assert not is_inference()  # the flag does not leak out of predict

    def test_residual_block_keeps_no_activation_in_inference(self):
        from repro.blocks.mobile import MobileInvertedBlock
        from repro.blocks.spec import BlockSpec

        block = MobileInvertedBlock(
            BlockSpec("DB", ch_in=4, ch_mid=8, ch_out=4, kernel=3, stride=1), rng=0
        )
        assert block.use_residual
        x = np.random.default_rng(0).random((2, 4, 8, 8))
        with inference_mode():
            block.forward(x)
        assert block._cache_residual is None

    def test_backward_after_inference_forward_raises(self):
        layer = Conv2d(2, 2, 3, rng=0)
        with inference_mode():
            layer.forward(np.zeros((1, 2, 5, 5)))
        with pytest.raises(RuntimeError, match="backward called before forward"):
            layer.backward(np.zeros((1, 2, 5, 5)))

    def test_inference_batch_size_reaches_fairness_evaluation(self):
        from repro.fairness.report import evaluate_fairness

        model = Sequential(Conv2d(3, 4, 3, rng=0), BatchNorm2d(4))
        dataset = GroupedDataset(
            images=np.random.default_rng(0).random((6, 3, 8, 8)),
            labels=np.zeros(6, dtype=np.int64),
            groups=np.array([0, 0, 0, 1, 1, 1]),
        )

        class _Head(Module):
            def forward(self, x):
                return x.mean(axis=(2, 3))

        model.append(_Head())
        seen = []
        trainer = Trainer(TrainingConfig(epochs=0, batch_size=4, inference_batch_size=7))
        original = trainer.predict

        def spy(model, images, batch_size=None):
            seen.append(batch_size)
            return original(model, images, batch_size)

        trainer.predict = spy
        evaluate_fairness(model, dataset, trainer)
        assert seen == [7]
        # Without a configured preference the historical default (64) holds.
        seen.clear()
        plain = Trainer(TrainingConfig(epochs=0, batch_size=4))
        original_plain = plain.predict
        plain.predict = lambda m, i, b=None: (seen.append(b), original_plain(m, i, b))[1]
        evaluate_fairness(model, dataset, plain)
        assert seen == [64]

    def test_inference_forward_does_not_clobber_pending_training_cache(self):
        """predict() between a training forward and its backward is safe."""
        layer = Conv2d(2, 3, 3, rng=0)
        rng = np.random.default_rng(8)
        x_train = rng.random((2, 2, 6, 6))
        x_probe = rng.random((2, 2, 6, 6))
        layer.forward(x_train)
        with inference_mode():
            layer.forward(x_probe)  # same shape: must not reuse the workspace
        layer.backward(np.ones((2, 3, 6, 6)))
        expected = np.einsum(
            "nohw,ncijhw->ocij",
            np.ones((2, 3, 6, 6)),
            im2col_reference(x_train, 3, 3, 1, 1),
            optimize=True,
        )
        assert np.allclose(layer.weight.grad, expected, rtol=1e-11, atol=1e-12)

    def test_predict_matches_training_mode_forward(self):
        model = Sequential(Conv2d(3, 4, 3, rng=0), BatchNorm2d(4))
        images = np.random.default_rng(1).random((5, 3, 8, 8))
        trainer = Trainer(TrainingConfig(epochs=0, batch_size=2))
        predictions = trainer.predict(model, images)
        model.eval()
        expected = model.forward(images).argmax(axis=1)
        model.train()
        assert np.array_equal(predictions, expected)


# -- metrics ------------------------------------------------------------------------
class TestMetrics:
    def test_accuracy_accepts_integer_and_logit_inputs(self):
        labels = np.array([0, 1, 2, 1])
        assert accuracy(np.array([0, 1, 2, 0]), labels) == 0.75
        logits = np.eye(3)[[0, 1, 2]]
        assert accuracy(np.vstack([logits, [[0.0, 9.0, 0.0]]]), labels) == 1.0

    def test_confusion_matrix_matches_seed_loop(self):
        rng = np.random.default_rng(7)
        predictions = rng.integers(0, 4, 100)
        labels = rng.integers(0, 4, 100)
        matrix = confusion_matrix(predictions, labels, 4)
        expected = np.zeros((4, 4), dtype=np.int64)
        for true, pred in zip(labels, predictions):
            expected[true, pred] += 1
        assert np.array_equal(matrix, expected)
        assert matrix.dtype == np.int64

    def test_confusion_matrix_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            confusion_matrix(np.array([0, 5]), np.array([0, 1]), 4)

    def test_int64_inputs_are_not_copied(self):
        predictions = np.array([0, 1, 2], dtype=np.int64)
        from repro.nn.metrics import _as_class_indices

        assert _as_class_indices(predictions) is predictions


# -- worker BLAS pinning ------------------------------------------------------------
def _read_blas_env(_payload):
    return os.environ.get("OPENBLAS_NUM_THREADS")


class TestWorkerBlasPinning:
    def test_limit_blas_threads_sets_env(self):
        saved = {k: os.environ.get(k) for k in ("OMP_NUM_THREADS", "OPENBLAS_NUM_THREADS")}
        try:
            limit_blas_threads(3)
            assert os.environ["OMP_NUM_THREADS"] == "3"
            assert os.environ["OPENBLAS_NUM_THREADS"] == "3"
        finally:
            for key, value in saved.items():
                if value is None:
                    os.environ.pop(key, None)
                else:
                    os.environ[key] = value

    def test_limit_rejects_non_positive(self):
        with pytest.raises(ValueError):
            limit_blas_threads(0)

    def test_process_pool_initializer_pins_workers(self):
        with create_pool("process", num_workers=1, blas_threads=1) as pool:
            results = pool.map_ordered(_read_blas_env, [None])
        assert results[0][0] == "1"


# -- the compute spec section -------------------------------------------------------
class TestComputeSpec:
    def test_round_trip(self):
        spec = RunSpec(compute=ComputeSpec(precision="float32"))
        restored = RunSpec.from_json(spec.to_json())
        assert restored.compute == ComputeSpec(precision="float32")
        assert RunSpec.from_json(RunSpec().to_json()).compute is None

    def test_default_compute_section_keeps_historical_cache_key(self):
        bare = RunSpec()
        spelled_out = RunSpec(compute=ComputeSpec())
        float32 = RunSpec(compute=ComputeSpec(precision="float32"))
        assert spelled_out.cache_key() == bare.cache_key()
        assert float32.cache_key() != bare.cache_key()

    def test_invalid_precision_rejected(self):
        with pytest.raises(ValueError, match="precision"):
            RunSpec.from_dict({"compute": {"precision": "float16"}})
        with pytest.raises(ValueError, match="unknown key"):
            RunSpec.from_dict({"compute": {"dtype": "float32"}})

    def test_with_overrides_starts_from_defaults(self):
        spec = RunSpec().with_overrides(values={"compute.precision": "float32"})
        assert spec.compute.precision == "float32"
        assert spec.compute.inference_batch_size is None


# -- float32 through the facade -----------------------------------------------------
def _tiny_spec(compute=None):
    payload = {
        "strategy": "fahana",
        "dataset": {
            "image_size": 10,
            "samples_per_class": 8,
            "minority_fraction": 0.5,
            "seed": 0,
        },
        "design": {"timing_constraint_ms": 1e6},
        "search": {
            "episodes": 3,
            "child_epochs": 1,
            "pretrain_epochs": 0,
            "max_searchable": 2,
            "width_multiplier": 0.25,
            "child_batch_size": 16,
            "seed": 0,
        },
    }
    if compute is not None:
        payload["compute"] = compute
    return RunSpec.from_dict(payload)


class TestPrecisionThroughRun:
    def test_explicit_float64_is_bitwise_identical_to_default(self):
        baseline = repro.run(_tiny_spec())
        explicit = repro.run(_tiny_spec({"precision": "float64"}))
        assert (
            explicit.history.reward_trajectory()
            == baseline.history.reward_trajectory()
        )
        assert [r.accuracy for r in explicit.history.records] == [
            r.accuracy for r in baseline.history.records
        ]

    def test_float32_rewards_within_tolerance_of_float64(self):
        baseline = repro.run(_tiny_spec())
        fast = repro.run(_tiny_spec({"precision": "float32"}))
        ref = baseline.history.reward_trajectory()
        got = fast.history.reward_trajectory()
        assert len(got) == len(ref)
        # The controller stays float64, so the sampled architectures match;
        # only child-training numerics (and thus rewards) may drift.
        ref_descriptors = [r.descriptor.cache_key() for r in baseline.history.records]
        fast_descriptors = [r.descriptor.cache_key() for r in fast.history.records]
        assert fast_descriptors == ref_descriptors
        assert all(abs(a - b) <= 0.25 for a, b in zip(got, ref)), (got, ref)

    def test_float32_cache_key_differs_so_results_never_cross_precisions(self):
        assert (
            _tiny_spec({"precision": "float32"}).cache_key()
            != _tiny_spec().cache_key()
        )
