"""Tests for freezing, the producer, the evaluator and the full search loop."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    BackboneProducer,
    ChildEvaluator,
    EvaluationConfig,
    FaHaNaConfig,
    FaHaNaSearch,
    MonasConfig,
    MonasSearch,
    ProducerConfig,
    RewardConfig,
    SearchSpace,
    feature_variation,
    find_split_point,
)
from repro.core.freezing import analyse_model_freezing
from repro.core.producer import _copy_batchnorm_statistics
from repro.core.results import EpisodeRecord, SearchHistory
from repro.core.reward import INVALID_REWARD
from repro.hardware.constraints import DesignSpec, HardwareSpec, SoftwareSpec
from repro.hardware.latency import LatencyEstimator
from repro.hardware.device import RASPBERRY_PI_4
from repro.nn.trainer import TrainingConfig


@pytest.fixture()
def producer(tiny_splits, tiny_backbone):
    config = ProducerConfig(
        backbone=tiny_backbone,
        freeze=True,
        gamma=0.5,
        pretrain_epochs=1,
        width_multiplier=0.5,
    )
    producer = BackboneProducer(
        dataset=tiny_splits.train,
        config=config,
        trainer_config=TrainingConfig(epochs=1, batch_size=8, seed=0),
        rng=0,
    )
    producer.prepare()
    return producer


class TestFreezing:
    def test_feature_variation_zero_for_identical_features(self, rng):
        features = [rng.normal(size=(4, 8, 5, 5)) for _ in range(3)]
        variations = feature_variation(features, [f.copy() for f in features])
        assert all(v == pytest.approx(0.0, abs=1e-12) for v in variations)

    def test_feature_variation_positive_for_different_features(self, rng):
        a = [rng.normal(size=(4, 8, 5, 5))]
        b = [rng.normal(size=(4, 8, 5, 5))]
        assert feature_variation(a, b)[0] > 0

    def test_feature_variation_scale_invariant(self, rng):
        a = [rng.normal(size=(4, 8, 5, 5))]
        b = [2.0 * a[0]]
        # pure amplitude difference -> (near) zero pattern variation
        assert feature_variation(a, b)[0] == pytest.approx(0.0, abs=1e-9)

    def test_feature_variation_length_mismatch(self, rng):
        with pytest.raises(ValueError):
            feature_variation([rng.normal(size=(2, 2))], [])

    def test_find_split_point_first_exceeding_threshold(self):
        variations = [0.1, 0.2, 0.8, 0.9]
        assert find_split_point(variations, gamma=0.5) == 2

    def test_find_split_point_gamma_one_selects_max(self):
        variations = [0.1, 0.2, 0.9, 0.3]
        assert find_split_point(variations, gamma=1.0) == 2

    def test_find_split_point_invalid(self):
        with pytest.raises(ValueError):
            find_split_point([], gamma=0.5)
        with pytest.raises(ValueError):
            find_split_point([0.1], gamma=0.0)

    def test_analysis_on_model(self, tiny_splits, tiny_backbone):
        model = tiny_backbone.build(num_classes=5, width_multiplier=0.5, rng=0)
        analysis = analyse_model_freezing(
            model, tiny_splits.train, gamma=0.5, num_stages=1 + len(tiny_backbone.blocks)
        )
        assert len(analysis.variations) == 1 + len(tiny_backbone.blocks)
        assert 0 <= analysis.split_index < len(analysis.variations)
        assert analysis.threshold == pytest.approx(0.5 * max(analysis.variations))
        assert "frozen" in analysis.describe() or "searchable" in analysis.describe()


class TestProducer:
    def test_positions_cover_searchable_tail(self, producer, tiny_backbone):
        assert len(producer.positions) == len(tiny_backbone.blocks) - producer.split_block
        strides = [p.stride for p in producer.positions]
        expected = [b.stride for b in tiny_backbone.blocks[producer.split_block:]]
        assert strides == expected

    def test_space_size_reduced_by_freezing(self, producer):
        assert producer.space_size() <= producer.full_space_size()

    def test_produce_child_descriptor_consistency(self, producer):
        space = producer.search_space
        decisions = [
            space.decode(p.stride, [0, 0, 1, 1]) for p in producer.positions
        ]
        child = producer.produce(decisions, rng=0)
        # the frozen prefix of the child matches the backbone exactly
        frozen = producer.frozen_block_specs()
        assert child.descriptor.blocks[: len(frozen)] == frozen
        assert len(child.descriptor.blocks) == len(producer.backbone.blocks)

    def test_produce_wrong_decision_count_raises(self, producer):
        with pytest.raises(ValueError):
            producer.produce([])

    def test_child_frozen_parameters_marked(self, producer):
        space = producer.search_space
        decisions = [space.decode(p.stride, [0, 0, 0, 0]) for p in producer.positions]
        child = producer.produce(decisions, rng=0)
        if producer.split_block > 0:
            assert child.num_frozen_parameters > 0
        total = child.model.num_parameters()
        trainable = child.model.num_parameters(trainable_only=True)
        assert total - trainable >= child.num_frozen_parameters - total * 0  # frozen params not trainable

    def test_child_frozen_weights_equal_backbone(self, producer):
        space = producer.search_space
        decisions = [space.decode(p.stride, [0, 0, 0, 0]) for p in producer.positions]
        child = producer.produce(decisions, rng=0)
        backbone_model = producer._backbone_model
        # stage 0 (stem) is always part of the frozen prefix when freezing
        source_state = backbone_model[0].state_dict()
        target_state = child.model[0].state_dict()
        for key in source_state:
            np.testing.assert_allclose(source_state[key], target_state[key])

    def test_child_model_forward(self, producer, tiny_splits):
        space = producer.search_space
        decisions = [space.decode(p.stride, [0, 0, 1, 2]) for p in producer.positions]
        child = producer.produce(decisions, rng=0)
        out = child.model.forward(tiny_splits.train.images[:2])
        assert out.shape == (2, 5)

    def test_max_searchable_caps_positions(self, tiny_splits, tiny_backbone):
        config = ProducerConfig(
            backbone=tiny_backbone,
            freeze=True,
            pretrain_epochs=0,
            width_multiplier=0.5,
            max_searchable=2,
        )
        producer = BackboneProducer(
            dataset=tiny_splits.train, config=config,
            trainer_config=TrainingConfig(epochs=0, seed=0), rng=0,
        )
        producer.prepare()
        assert len(producer.positions) <= 2

    def test_no_freeze_mode_searches_everything(self, tiny_splits, tiny_backbone):
        config = ProducerConfig(backbone=tiny_backbone, freeze=False, width_multiplier=0.5)
        producer = BackboneProducer(
            dataset=tiny_splits.train, config=config,
            trainer_config=TrainingConfig(epochs=0, seed=0), rng=0,
        )
        producer.prepare()
        assert len(producer.positions) == len(tiny_backbone.blocks)
        assert producer.analysis is None
        assert producer.space_size() == producer.full_space_size()

    def test_backbone_by_name(self, tiny_splits):
        config = ProducerConfig(
            backbone="MobileNetV2", freeze=False, width_multiplier=0.25
        )
        producer = BackboneProducer(
            dataset=tiny_splits.train, config=config,
            trainer_config=TrainingConfig(epochs=0, seed=0), rng=0,
        )
        producer.prepare()
        assert producer.backbone.name == "MobileNetV2"

    def test_copy_batchnorm_statistics_mismatch_raises(self, tiny_backbone):
        model_a = tiny_backbone.build(rng=0)
        from repro.nn import Sequential, ReLU

        with pytest.raises(ValueError):
            _copy_batchnorm_statistics(model_a, Sequential(ReLU()))

    def test_invalid_producer_config(self):
        with pytest.raises(ValueError):
            ProducerConfig(gamma=0.0)
        with pytest.raises(ValueError):
            ProducerConfig(width_multiplier=0)
        with pytest.raises(ValueError):
            ProducerConfig(max_searchable=0)


class TestEvaluator:
    def _evaluator(self, tiny_splits, timing_constraint_ms=1e9, bypass=True, epochs=1):
        estimator = LatencyEstimator(RASPBERRY_PI_4, resolution=224)
        config = EvaluationConfig(
            reward=RewardConfig(timing_constraint_ms=timing_constraint_ms),
            training=TrainingConfig(epochs=epochs, batch_size=8, seed=0),
            bypass_invalid=bypass,
        )
        return ChildEvaluator(
            tiny_splits.train, tiny_splits.validation, estimator, config
        )

    def _child(self, producer):
        space = producer.search_space
        decisions = [space.decode(p.stride, [0, 0, 0, 0]) for p in producer.positions]
        return producer.produce(decisions, rng=0)

    def test_valid_child_is_trained_and_scored(self, producer, tiny_splits):
        evaluator = self._evaluator(tiny_splits)
        result = evaluator.evaluate(self._child(producer))
        assert result.trained
        assert 0.0 <= result.accuracy <= 1.0
        assert result.unfairness >= 0.0
        assert result.reward == pytest.approx(result.accuracy - result.unfairness)
        assert set(result.group_accuracy) == {"light", "dark"}

    def test_latency_violation_bypasses_training(self, producer, tiny_splits):
        evaluator = self._evaluator(tiny_splits, timing_constraint_ms=0.001)
        result = evaluator.evaluate(self._child(producer))
        assert not result.trained
        assert result.reward == INVALID_REWARD
        assert result.train_seconds == 0.0

    def test_monas_style_no_bypass_still_trains(self, producer, tiny_splits):
        evaluator = self._evaluator(tiny_splits, timing_constraint_ms=0.001, bypass=False)
        result = evaluator.evaluate(self._child(producer))
        assert result.trained
        assert result.reward == INVALID_REWARD

    def test_empty_dataset_rejected(self, tiny_splits):
        estimator = LatencyEstimator(RASPBERRY_PI_4)
        empty = tiny_splits.train.subset([])
        with pytest.raises(ValueError):
            ChildEvaluator(empty, tiny_splits.validation, estimator)


class TestSearchHistory:
    def _record(self, episode, reward, params=1000, trained=True, unfairness=0.1, accuracy=0.5):
        from repro.blocks.spec import BlockSpec, ClassifierSpec, StemSpec
        from repro.zoo.descriptors import ArchitectureDescriptor, HeadSpec

        descriptor = ArchitectureDescriptor(
            name=f"net{episode}",
            stem=StemSpec(3, 8),
            blocks=(BlockSpec("DB", 8, 8, 8),),
            head=HeadSpec(8, 8),
            classifier=ClassifierSpec(8, 5),
        )
        return EpisodeRecord(
            episode=episode,
            descriptor=descriptor,
            decisions=["DB 8,8,8,3"],
            reward=reward,
            accuracy=accuracy,
            unfairness=unfairness,
            latency_ms=10.0,
            storage_mb=0.1,
            num_parameters=params,
            trained=trained,
        )

    def test_valid_ratio(self):
        history = SearchHistory()
        history.append(self._record(0, 0.5))
        history.append(self._record(1, INVALID_REWARD, trained=False))
        assert history.valid_ratio() == 0.5

    def test_best_and_fairest_and_smallest(self):
        history = SearchHistory()
        history.append(self._record(0, 0.5, params=2000, unfairness=0.3))
        history.append(self._record(1, 0.7, params=5000, unfairness=0.1))
        history.append(self._record(2, INVALID_REWARD, trained=False))
        assert history.best_record().episode == 1
        assert history.fairest_record().episode == 1
        assert history.smallest_record().episode == 0

    def test_empty_history_statistics(self):
        history = SearchHistory()
        assert history.valid_ratio() == 0.0
        assert history.best_record() is None
        assert history.fairest_record() is None

    def test_best_reward_so_far_monotone(self):
        history = SearchHistory()
        for episode, reward in enumerate([0.1, 0.5, 0.2, 0.7]):
            history.append(self._record(episode, reward))
        trajectory = history.best_reward_so_far()
        assert trajectory == sorted(trajectory)

    def test_pareto_fronts(self):
        history = SearchHistory()
        history.append(self._record(0, 0.4, params=1000, accuracy=0.5, unfairness=0.05))
        history.append(self._record(1, 0.5, params=2000, accuracy=0.6, unfairness=0.1))
        history.append(self._record(2, 0.3, params=3000, accuracy=0.4, unfairness=0.3))
        front = history.pareto_accuracy_fairness()
        assert {r.episode for r in front} == {0, 1}
        size_front = history.pareto_reward_size()
        assert {r.episode for r in size_front} == {0, 1}

    def test_top_k(self):
        history = SearchHistory()
        for episode, reward in enumerate([0.1, 0.9, 0.5]):
            history.append(self._record(episode, reward))
        assert [r.episode for r in history.top_k(2)] == [1, 2]
        with pytest.raises(ValueError):
            history.top_k(0)

    def test_summary_keys(self):
        history = SearchHistory(space_size=1e9, full_space_size=1e19)
        history.append(self._record(0, 0.5))
        summary = history.summary()
        assert summary["space_size"] == 1e9
        assert summary["best_reward"] == 0.5


class TestSearchIntegration:
    def _config(self, tiny_backbone, episodes=3, freeze=True):
        producer = ProducerConfig(
            backbone=tiny_backbone,
            freeze=freeze,
            pretrain_epochs=1,
            width_multiplier=0.5,
        )
        return FaHaNaConfig(
            episodes=episodes,
            seed=0,
            producer=producer,
            child_training=TrainingConfig(epochs=1, batch_size=8, seed=0),
        )

    def _design_spec(self, tc=1e6):
        return DesignSpec(
            hardware=HardwareSpec(timing_constraint_ms=tc),
            software=SoftwareSpec(accuracy_constraint=0.0),
        )

    def test_fahana_search_runs(self, tiny_splits, tiny_backbone):
        search = FaHaNaSearch(
            tiny_splits.train,
            tiny_splits.validation,
            self._design_spec(),
            self._config(tiny_backbone),
        )
        result = search.run()
        assert len(result.history) == 3
        assert result.history.space_size > 0
        assert result.freezing_analysis is not None
        assert result.best is not None
        assert result.summary()

    def test_fahana_history_records_are_consistent(self, tiny_splits, tiny_backbone):
        search = FaHaNaSearch(
            tiny_splits.train,
            tiny_splits.validation,
            self._design_spec(),
            self._config(tiny_backbone, episodes=2),
        )
        result = search.run()
        for record in result.history.records:
            assert record.num_parameters > 0
            assert record.latency_ms > 0
            assert record.descriptor.blocks

    def test_tight_constraint_produces_invalid_children(self, tiny_splits, tiny_backbone):
        search = FaHaNaSearch(
            tiny_splits.train,
            tiny_splits.validation,
            self._design_spec(tc=0.001),
            self._config(tiny_backbone, episodes=2),
        )
        result = search.run()
        assert result.history.valid_ratio() == 0.0
        assert result.best is None

    def test_monas_search_uses_full_space(self, tiny_splits, tiny_backbone):
        producer = ProducerConfig(backbone=tiny_backbone, width_multiplier=0.5)
        config = MonasConfig(
            episodes=2,
            seed=0,
            producer=producer,
            child_training=TrainingConfig(epochs=1, batch_size=8, seed=0),
        )
        search = MonasSearch(
            tiny_splits.train, tiny_splits.validation, self._design_spec(), config
        )
        result = search.run()
        assert result.history.space_size == result.history.full_space_size
        assert result.history.frozen_blocks == 0
        assert all(record.trained for record in result.history.records)

    def test_fahana_space_smaller_than_monas(self, tiny_splits, tiny_backbone):
        fahana = FaHaNaSearch(
            tiny_splits.train,
            tiny_splits.validation,
            self._design_spec(),
            self._config(tiny_backbone, episodes=1),
        )
        assert fahana.producer.space_size() <= fahana.producer.full_space_size()

    def test_invalid_fahana_config(self):
        with pytest.raises(ValueError):
            FaHaNaConfig(episodes=0)
        with pytest.raises(ValueError):
            FaHaNaConfig(alpha=-1)
