"""Tests for the run lifecycle API: RunClient/RunHandle, the local executor,
typed event streams, the HTTP daemon, cancellation/resume and the
regularized-evolution strategy satellite."""

from __future__ import annotations

import json
import os
import urllib.error
import urllib.request

import pytest

import repro
from repro.api import DatasetSpec, DesignSpecConfig, RunSpec, SearchParams
from repro.api.run import execute
from repro.engine import EngineConfig
from repro.engine.cli import main as cli_main
from repro.engine.events import (
    CONSUMER_ERROR,
    EPISODE_FINISHED,
    RUN_CANCELLED,
    RUN_FINISHED,
    RUN_STARTED,
    EngineEvent,
    EventBus,
)
from repro.engine.checkpoint import has_checkpoint
from repro.service import (
    EventLog,
    LocalExecutor,
    RunCancelled,
    RunClient,
    RunNotFound,
    tail_telemetry,
)

SMOKE_SPEC = os.path.join(
    os.path.dirname(__file__), "..", "examples", "specs", "smoke.json"
)


def _tiny_spec(strategy: str = "fahana", episodes: int = 2, **search_kwargs) -> RunSpec:
    """A spec sized so one run takes well under a second."""
    return RunSpec(
        strategy=strategy,
        dataset=DatasetSpec(
            image_size=10,
            samples_per_class=8,
            minority_fraction=0.5,
            seed=123,
            split_seed=0,
        ),
        design=DesignSpecConfig(timing_constraint_ms=1e6),
        search=SearchParams(
            episodes=episodes,
            child_epochs=1,
            child_batch_size=8,
            pretrain_epochs=0,
            max_searchable=2,
            width_multiplier=0.25,
            seed=0,
            **search_kwargs,
        ),
    )


def _comparable(report_dict: dict, include_stats: bool = True) -> dict:
    """A report's to_dict with run-local and wall-clock fields removed.

    What remains -- cache keys, rewards, descriptors, per-episode provenance
    -- must be bit-for-bit identical between a direct run and any
    service-managed execution of the same spec.  ``include_stats=False``
    additionally drops the per-engine-instance counters (a resumed engine
    counts only its own segment's evaluations), leaving exactly the
    computed results.
    """
    excluded = {
        "run_dir",
        "telemetry_path",
        "checkpoint_path",
        "spec_path",
        "checkpoints_written",
        "metrics",  # wall-clock histograms; run-local by design
        "resumed_from",
    }
    if not include_stats:
        excluded |= {
            "evaluations_run",
            "evaluations_by_fidelity",
            "cache_hits",
            "cache_hit_rate",
        }
    payload = {
        key: value for key, value in report_dict.items() if key not in excluded
    }
    payload["spec"] = {
        key: value for key, value in payload["spec"].items() if key != "engine"
    }
    history = dict(payload["history"])
    history.pop("total_seconds", None)
    history["records"] = [
        {
            key: value
            for key, value in record.items()
            if key not in ("elapsed_seconds", "worker")
        }
        for record in history["records"]
    ]
    payload["history"] = history
    return payload


# -- the one Event schema across transports ------------------------------------------
class TestEventSchema:
    def test_to_dict_from_dict_roundtrip(self):
        event = EngineEvent(
            kind="episode-finished", episode=7, payload={"reward": 0.5, "worker": "w0"}
        )
        rebuilt = EngineEvent.from_dict(event.to_dict())
        assert rebuilt == event

    def test_from_dict_rejects_non_events(self):
        with pytest.raises(ValueError, match="not a serialized engine event"):
            EngineEvent.from_dict({"reward": 1.0})

    def test_terminal_kinds(self):
        assert EngineEvent(kind=RUN_FINISHED).is_terminal
        assert EngineEvent(kind=RUN_CANCELLED).is_terminal
        assert not EngineEvent(kind=EPISODE_FINISHED).is_terminal

    def test_event_log_replays_from_any_index(self):
        log = EventLog()
        events = [EngineEvent(kind="k", episode=i) for i in range(5)]
        for event in events:
            log.append(event)
        log.close()
        assert log.snapshot() == events
        assert list(log.iter(since=3)) == events[3:]
        assert list(log.iter(since=0, follow=True)) == events  # closed: drains

    def test_event_log_rejects_append_after_close(self):
        log = EventLog()
        log.close()
        with pytest.raises(ValueError, match="closed"):
            log.append(EngineEvent(kind="k"))

    def test_tail_telemetry_reads_jsonl_back_as_events(self, tmp_path):
        path = str(tmp_path / "telemetry.jsonl")
        events = [
            EngineEvent(kind=RUN_STARTED, payload={"episodes": 2}),
            EngineEvent(kind=EPISODE_FINISHED, episode=0, payload={"reward": 0.25}),
            EngineEvent(kind=RUN_FINISHED, payload={"episodes": 2}),
        ]
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("not json at all\n")  # corrupt lines are skipped
            for event in events:
                handle.write(json.dumps(event.to_dict()) + "\n")
        tailed = list(tail_telemetry(path))
        assert tailed == events
        assert list(tail_telemetry(path, since=2)) == events[2:]
        # follow mode stops at the terminal event instead of polling forever
        assert list(tail_telemetry(path, follow=True, timeout=5.0)) == events

    def test_tail_telemetry_follows_past_stale_terminal_of_resumed_run(
        self, tmp_path
    ):
        # A cancelled-then-resumed run appends a second segment after the
        # first segment's terminal event; only the *latest* terminal ends a
        # follow.
        path = str(tmp_path / "telemetry.jsonl")
        segments = [
            EngineEvent(kind=RUN_STARTED, payload={"episodes": 4}),
            EngineEvent(kind=RUN_CANCELLED, payload={"episodes_done": 1}),
            EngineEvent(kind=RUN_FINISHED, payload={"cancelled": True}),
            EngineEvent(kind=RUN_STARTED, payload={"start_episode": 1}),
            EngineEvent(kind=EPISODE_FINISHED, episode=1, payload={"reward": 0.5}),
            EngineEvent(kind=RUN_FINISHED, payload={"cancelled": False}),
        ]
        with open(path, "w", encoding="utf-8") as handle:
            for event in segments:
                handle.write(json.dumps(event.to_dict()) + "\n")
        assert list(tail_telemetry(path, follow=True, timeout=5.0)) == segments


# -- satellite: EventBus subscriber isolation ----------------------------------------
class TestEventBusIsolation:
    def test_raising_consumer_does_not_propagate(self):
        bus = EventBus()
        seen = []

        def bad_consumer(event):
            raise RuntimeError("boom")

        bus.subscribe(bad_consumer)
        bus.subscribe(seen.append)
        for index in range(3):
            bus.emit(EngineEvent(kind="k", episode=index))  # must not raise
        kinds = [event.kind for event in seen]
        # Delivery continued, and the failure was announced exactly once.
        assert kinds.count("k") == 3
        assert kinds.count(CONSUMER_ERROR) == 1
        error_event = next(e for e in seen if e.kind == CONSUMER_ERROR)
        assert "RuntimeError: boom" in error_event.payload["error"]
        assert error_event.payload["failed_kind"] == "k"

    def test_consumer_failing_on_consumer_error_does_not_recurse(self):
        bus = EventBus()

        def always_raises(event):
            raise RuntimeError("always")

        bus.subscribe(always_raises)
        bus.emit(EngineEvent(kind="k"))  # one level of announcement, no loop

    def test_engine_run_survives_raising_subscriber(self, tmp_path):
        def bad_consumer(event):
            raise RuntimeError("subscriber bug")

        report = execute(_tiny_spec(), event_callback=bad_consumer)
        assert len(report.history) == 2  # the loop completed regardless


# -- the local executor lifecycle ----------------------------------------------------
class TestLocalLifecycle:
    def test_submit_status_events_result_parity_with_direct_run(self, tmp_path):
        direct = repro.run(SMOKE_SPEC)
        client = RunClient.local(runs_root=str(tmp_path / "runs"))
        handle = client.submit(SMOKE_SPEC)
        report = handle.result(timeout=120)

        status = handle.status()
        assert status["state"] == "finished"
        assert status["episodes_done"] == len(report.history)
        assert status["spec_cache_key"] == direct.spec.cache_key()

        kinds = [event.kind for event in handle.events()]
        assert kinds[0] == RUN_STARTED
        assert kinds[-1] == RUN_FINISHED
        assert kinds.count(EPISODE_FINISHED) == len(report.history)

        assert _comparable(report.to_dict()) == _comparable(direct.to_dict())
        # The registry archived everything needed to re-launch the run.
        run_dir = status["run_dir"]
        for artifact in ("run_spec.json", "status.json", "telemetry.jsonl",
                         "report.json", "checkpoint.json"):
            assert os.path.exists(os.path.join(run_dir, artifact)), artifact

    def test_repro_run_routes_through_run_client(self, monkeypatch):
        submissions = []
        original = LocalExecutor.submit

        def spying_submit(self, spec, **options):
            submissions.append(spec)
            return original(self, spec, **options)

        monkeypatch.setattr(LocalExecutor, "submit", spying_submit)
        report = repro.run(_tiny_spec())
        assert len(submissions) == 1
        assert len(report.history) == 2

    def test_single_worker_slot_runs_fifo(self, tmp_path):
        client = RunClient.local(runs_root=str(tmp_path / "runs"), max_workers=1)
        first = client.submit(_tiny_spec(episodes=2))
        second = client.submit(_tiny_spec(episodes=2))
        # One slot: the second submission must wait for the first.
        assert second.status()["state"] == "queued"
        first_report = first.result(timeout=120)
        second_report = second.result(timeout=120)
        assert len(first_report.history) == 2
        assert len(second_report.history) == 2
        first_status, second_status = first.status(), second.status()
        assert second_status["started_at"] >= first_status["finished_at"]

    def test_cancel_while_queued_is_immediate_and_not_resumable(self, tmp_path):
        client = RunClient.local(runs_root=str(tmp_path / "runs"), max_workers=1)
        blocker = client.submit(_tiny_spec(episodes=2))
        queued = client.submit(_tiny_spec(episodes=2))
        status = queued.cancel()
        assert status["state"] == "cancelled"
        with pytest.raises(RunCancelled):
            queued.result(timeout=10)
        # Never started: there is no checkpoint, so resume refuses loudly.
        with pytest.raises(ValueError, match="no checkpoint"):
            client.resume(queued.run_id)
        blocker.result(timeout=120)  # the slot itself was unaffected

    def test_cancel_mid_run_then_resume_matches_uninterrupted_run(self, tmp_path):
        spec = _tiny_spec(episodes=8)
        baseline = execute(spec)

        client = RunClient.local(runs_root=str(tmp_path / "runs"))
        handle = client.submit(spec)
        for event in handle.events(follow=True):
            if event.kind == EPISODE_FINISHED:
                handle.cancel()  # honoured at the next wave boundary
                break
        with pytest.raises(RunCancelled):
            handle.result(timeout=120)

        status = handle.status()
        assert status["state"] == "cancelled"
        assert status["cancel_requested"] is True
        assert 0 < status["episodes_done"] < 8
        assert has_checkpoint(status["run_dir"])
        # The telemetry stream records the cancellation.
        tailed_kinds = [e.kind for e in handle.events()]
        assert RUN_CANCELLED in tailed_kinds

        resumed = client.resume(handle.run_id)
        report = resumed.result(timeout=120)
        assert resumed.status()["state"] == "finished"
        assert report.resumed_from == status["episodes_done"]
        assert len(report.history) == 8
        # Continuity is bit-for-bit: cancel+resume computes exactly what one
        # straight run computes (engine-instance counters aside).
        assert _comparable(report.to_dict(), include_stats=False) == _comparable(
            baseline.to_dict(), include_stats=False
        )

    def test_unknown_run_id_raises_run_not_found(self, tmp_path):
        client = RunClient.local(runs_root=str(tmp_path / "runs"))
        with pytest.raises(RunNotFound):
            client.handle("no-such-run")
        with pytest.raises(RunNotFound):
            client.executor.cancel("no-such-run")
        with pytest.raises(RunNotFound):
            list(client.executor.events("no-such-run"))

    def test_registry_rejects_injected_datasets(self, tmp_path, tiny_splits):
        client = RunClient.local(runs_root=str(tmp_path / "runs"))
        with pytest.raises(ValueError, match="fully described by their spec"):
            client.submit(
                _tiny_spec(),
                train_dataset=tiny_splits.train,
                validation_dataset=tiny_splits.validation,
            )

    def test_registry_rejects_submit_resume_option(self, tmp_path):
        client = RunClient.local(runs_root=str(tmp_path / "runs"))
        with pytest.raises(ValueError, match="resume by id"):
            client.submit(_tiny_spec(), resume=True)

    def test_recovery_requeues_queued_and_fails_stale_running(self, tmp_path):
        from repro.service.registry import RunRegistry

        runs_root = str(tmp_path / "runs")
        # Simulate a daemon that died: one run still queued (spec archived,
        # never started) and one marked running whose engine is gone.
        registry = RunRegistry(runs_root)
        queued = registry.create(_tiny_spec())
        stale = registry.create(_tiny_spec())
        registry.update_status(stale["run_id"], state="running")

        recovered = LocalExecutor(runs_root=runs_root, recover=True)
        assert registry.load_status(stale["run_id"])["state"] == "failed"
        assert "interrupted" in registry.load_status(stale["run_id"])["error"]
        # The queued run was adopted and executes to completion.
        report = recovered.result(queued["run_id"], timeout=120)
        assert len(report.history) == 2
        assert registry.load_status(queued["run_id"])["state"] == "finished"

    def test_recovery_requires_runs_root_and_is_off_by_default(self, tmp_path):
        with pytest.raises(ValueError, match="needs a runs_root"):
            LocalExecutor(recover=True)
        runs_root = str(tmp_path / "runs")
        from repro.service.registry import RunRegistry

        registry = RunRegistry(runs_root)
        running = registry.create(_tiny_spec())
        registry.update_status(running["run_id"], state="running")
        # A side-car executor on a shared root must not hijack live runs.
        LocalExecutor(runs_root=runs_root)
        assert registry.load_status(running["run_id"])["state"] == "running"


# -- the HTTP daemon -----------------------------------------------------------------
@pytest.fixture()
def run_service(tmp_path):
    from repro.service.daemon import RunService

    service = RunService(str(tmp_path / "runs"), port=0).start()
    yield service
    service.shutdown()


class TestDaemon:
    def test_http_submit_events_report_parity(self, run_service):
        direct = execute(SMOKE_SPEC)
        client = RunClient.connect(run_service.url)
        handle = client.submit(SMOKE_SPEC)

        kinds = [event.kind for event in handle.events(follow=True)]
        assert kinds[0] == RUN_STARTED
        assert kinds[-1] == RUN_FINISHED

        report = handle.result(timeout=120)  # the to_dict payload over HTTP
        assert report["spec_cache_key"] == direct.spec.cache_key()
        assert _comparable(report) == _comparable(direct.to_dict())
        assert handle.status()["state"] == "finished"
        assert any(run["run_id"] == handle.run_id for run in client.list_runs())

    def test_invalid_json_body_is_structured_400(self, run_service):
        request = urllib.request.Request(
            run_service.url + "/runs",
            data=b"{definitely not json",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 400
        body = json.load(excinfo.value)
        assert body["error"]["type"] == "invalid-json"

    def test_invalid_spec_is_structured_400(self, run_service):
        client = RunClient.connect(run_service.url)
        with pytest.raises(ValueError, match="unknown strategy"):
            client.submit({"strategy": "quantum-annealing"})

    def test_unknown_run_id_is_404(self, run_service):
        client = RunClient.connect(run_service.url)
        with pytest.raises(RunNotFound):
            client.handle("no-such-run")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(run_service.url + "/runs/no-such-run/report")
        assert excinfo.value.code == 404
        assert json.load(excinfo.value)["error"]["type"] == "unknown-run"

    def test_unknown_endpoint_is_404(self, run_service):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(run_service.url + "/frobnicate")
        assert excinfo.value.code == 404
        assert json.load(excinfo.value)["error"]["type"] == "unknown-endpoint"

    def test_service_rejects_in_process_options(self, run_service):
        client = RunClient.connect(run_service.url)
        with pytest.raises(ValueError, match="not serializable"):
            client.submit(_tiny_spec(), engine=EngineConfig())


# -- satellite: the regularized-evolution strategy -----------------------------------
class TestRegularizedEvolution:
    def test_registered_with_description(self):
        from repro.api import get_strategy

        info = get_strategy("regularized_evolution")
        assert "evolution" in info.description

    def test_population_ages_out_oldest(self):
        from repro.api.strategies import _EvolutionPopulation

        population = _EvolutionPopulation(capacity=3, tournament_size=2)
        for index in range(5):
            population.record([[index]], reward=float(index))
        assert len(population.members) == 3
        assert [m[1] for m in population.members] == [2.0, 3.0, 4.0]

    def test_tournament_returns_copy_of_best_drawn(self, rng):
        from repro.api.strategies import _EvolutionPopulation

        population = _EvolutionPopulation(capacity=4, tournament_size=4)
        for index in range(4):
            population.record([[index, index]], reward=float(index))
        parent = population.tournament_parent(rng)
        assert parent == [[3, 3]]  # tournament covers the whole population
        parent[0][0] = 99  # mutating the child must not reach the population
        assert population.members[-1][0] == [[3, 3]]

    def test_runs_through_facade_and_is_deterministic(self):
        spec = _tiny_spec(strategy="regularized_evolution", episodes=6)
        first = repro.run(spec)
        second = repro.run(spec)
        assert len(first.history) == 6
        assert _comparable(first.to_dict()) == _comparable(second.to_dict())
        # After the uniform warm-up, children are mutations: the sampled
        # descriptors stay within the space and rewards are all scored.
        assert all(record.reward is not None for record in first.history.records)


# -- satellite: offline tail ---------------------------------------------------------
class TestOfflineTail:
    def test_tail_cli_works_on_any_run_dir(self, tmp_path, capsys):
        run_dir = str(tmp_path / "plain-run")
        execute(_tiny_spec(), engine=EngineConfig(run_dir=run_dir))
        assert cli_main(["tail", run_dir]) == 0
        output = capsys.readouterr().out
        assert "run started: 2 episodes" in output
        assert "[ep    0]" in output and "best=" in output
        assert "run finished: 2 episodes recorded" in output

    def test_tail_cli_resolves_run_ids_against_runs_root(self, tmp_path, capsys):
        runs_root = str(tmp_path / "runs")
        client = RunClient.local(runs_root=runs_root)
        handle = client.submit(_tiny_spec())
        handle.result(timeout=120)
        code = cli_main(["tail", handle.run_id, "--runs-root", runs_root])
        assert code == 0
        assert "run finished" in capsys.readouterr().out

    def test_tail_cli_errors_cleanly_without_telemetry(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert cli_main(["tail", str(empty)]) == 2
        assert "no telemetry stream" in capsys.readouterr().err
