"""Tests for the fairness metrics and report."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fairness import (
    FairnessReport,
    evaluate_fairness,
    group_accuracies,
    max_gap_unfairness,
    unfairness_from_accuracies,
    unfairness_score,
)
from repro.fairness.report import fairness_report_from_predictions
from repro.nn import Sequential, GlobalAvgPool2d, Linear
from repro.nn.trainer import Trainer, TrainingConfig

GROUPS = ("light", "dark")


class TestGroupAccuracies:
    def test_per_group_accuracy(self):
        predictions = np.array([0, 0, 1, 1])
        labels = np.array([0, 1, 1, 1])
        groups = np.array([0, 0, 1, 1])
        accs = group_accuracies(predictions, labels, groups, GROUPS)
        assert accs["light"] == 0.5 and accs["dark"] == 1.0

    def test_accepts_logits(self):
        logits = np.array([[0.9, 0.1], [0.1, 0.9]])
        accs = group_accuracies(logits, np.array([0, 1]), np.array([0, 1]), GROUPS)
        assert accs == {"light": 1.0, "dark": 1.0}

    def test_empty_group_raises(self):
        with pytest.raises(ValueError):
            group_accuracies(np.array([0]), np.array([0]), np.array([0]), GROUPS)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            group_accuracies(np.array([0, 1]), np.array([0]), np.array([0, 1]), GROUPS)


class TestUnfairnessScore:
    def test_paper_definition_two_groups(self):
        # overall 0.75, light 1.0, dark 0.5 -> |1-0.75| + |0.5-0.75| = 0.5
        predictions = np.array([0, 0, 0, 0])
        labels = np.array([0, 0, 0, 1])
        groups = np.array([0, 0, 1, 1])
        assert unfairness_score(predictions, labels, groups, GROUPS) == pytest.approx(0.5)

    def test_equal_group_accuracy_gives_zero(self):
        predictions = np.array([0, 1, 0, 1])
        labels = np.array([0, 1, 0, 1])
        groups = np.array([0, 0, 1, 1])
        assert unfairness_score(predictions, labels, groups, GROUPS) == 0.0

    def test_unfairness_from_accuracies(self):
        assert unfairness_from_accuracies({"a": 0.9, "b": 0.5}, 0.8) == pytest.approx(0.4)

    def test_unfairness_from_accuracies_empty_raises(self):
        with pytest.raises(ValueError):
            unfairness_from_accuracies({}, 0.5)

    def test_max_gap_leq_l1(self):
        predictions = np.array([0, 0, 0, 0, 1, 1])
        labels = np.array([0, 0, 1, 1, 1, 0])
        groups = np.array([0, 0, 0, 1, 1, 1])
        l1 = unfairness_score(predictions, labels, groups, GROUPS)
        max_gap = max_gap_unfairness(predictions, labels, groups, GROUPS)
        assert max_gap <= l1 + 1e-12

    def test_unbalanced_groups_weighting(self):
        # Accuracy differences are measured against the *overall* accuracy,
        # so the majority group's deviation is small and the minority's large.
        predictions = np.array([0] * 9 + [0])
        labels = np.array([0] * 9 + [1])
        groups = np.array([0] * 9 + [1])
        score = unfairness_score(predictions, labels, groups, GROUPS)
        assert score == pytest.approx(abs(1.0 - 0.9) + abs(0.0 - 0.9))


class TestFairnessReport:
    def _report(self, unfairness=0.2, acc=0.8):
        return FairnessReport(
            overall_accuracy=acc,
            group_accuracy={"light": acc + 0.05, "dark": acc - 0.15},
            unfairness=unfairness,
        )

    def test_accuracy_of_group(self):
        report = self._report()
        assert report.accuracy_of("light") == pytest.approx(0.85)
        with pytest.raises(KeyError):
            report.accuracy_of("green")

    def test_fairness_improvement_positive_when_fairer(self):
        fairer = self._report(unfairness=0.1)
        baseline = self._report(unfairness=0.2)
        assert fairer.fairness_improvement_over(baseline) == pytest.approx(0.5)

    def test_fairness_improvement_negative_when_less_fair(self):
        worse = self._report(unfairness=0.3)
        baseline = self._report(unfairness=0.2)
        assert worse.fairness_improvement_over(baseline) < 0

    def test_fairness_improvement_zero_baseline(self):
        baseline = self._report(unfairness=0.0)
        assert self._report(0.1).fairness_improvement_over(baseline) == 0.0

    def test_summary_contains_key_numbers(self):
        summary = self._report().summary()
        assert "unfairness=0.2000" in summary and "80.00%" in summary

    def test_report_from_predictions(self, tiny_dataset):
        predictions = tiny_dataset.labels.copy()
        report = fairness_report_from_predictions(predictions, tiny_dataset)
        assert report.overall_accuracy == 1.0
        assert report.unfairness == 0.0

    def test_evaluate_fairness_with_model(self, tiny_splits):
        dataset = tiny_splits.test
        # A GAP+Linear "model" operating directly on images: fast, deterministic.
        model = Sequential(GlobalAvgPool2d(), Linear(3, 5, rng=0))
        report = evaluate_fairness(model, dataset, Trainer(TrainingConfig(epochs=0)))
        assert 0.0 <= report.overall_accuracy <= 1.0
        assert set(report.group_accuracy) == {"light", "dark"}
        assert report.unfairness >= 0.0
