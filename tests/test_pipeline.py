"""Tests for the staged evaluation pipeline: gates, fidelity promotion,
bit-for-bit default parity, engine-level early stopping, adaptive waves and
cache-enabled resume."""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from repro.core import FaHaNaConfig, FaHaNaSearch, ProducerConfig
from repro.core.pipeline import (
    EvaluationPipeline,
    FidelityConfig,
    PipelineSettings,
    restore_weights,
    snapshot_weights,
)
from repro.core.policy import PolicyGradientConfig
from repro.core.reward import INVALID_REWARD, RewardConfig, compute_reward
from repro.engine import EngineConfig, EvaluationCache, SearchEngine
from repro.engine.cli import main as cli_main
from repro.engine.events import EARLY_STOPPED, WAVE_PROMOTED, WAVE_RESIZED
from repro.fairness.report import evaluate_fairness
from repro.hardware.constraints import DesignSpec, HardwareSpec, SoftwareSpec
from repro.nn.trainer import TrainingConfig
from repro.api.spec import RunSpec


def _search(
    tiny_splits,
    tiny_backbone,
    episodes=4,
    policy_batch=1,
    seed=0,
    timing_ms=1e6,
    storage_mb=None,
    **config_kwargs,
):
    config = FaHaNaConfig(
        episodes=episodes,
        seed=seed,
        producer=ProducerConfig(
            backbone=tiny_backbone,
            freeze=True,
            pretrain_epochs=1,
            width_multiplier=0.5,
        ),
        policy=PolicyGradientConfig(batch_episodes=policy_batch),
        child_training=TrainingConfig(epochs=1, batch_size=8, seed=0),
        **config_kwargs,
    )
    spec = DesignSpec(
        hardware=HardwareSpec(
            timing_constraint_ms=timing_ms, max_storage_mb=storage_mb
        ),
        software=SoftwareSpec(accuracy_constraint=0.0),
    )
    return FaHaNaSearch(tiny_splits.train, tiny_splits.validation, spec, config)


_PROXY_SETTINGS = PipelineSettings(
    fidelities=(
        FidelityConfig(name="proxy", epochs=1, data_fraction=0.5, promote_fraction=0.5),
        FidelityConfig(name="full"),
    )
)


# -- pipeline construction and gates ------------------------------------------------
class TestPipelineSettings:
    def test_default_is_single_full_stage(self):
        settings = PipelineSettings()
        assert not settings.staged
        assert len(settings.fidelities) == 1
        assert settings.fidelities[0].is_full

    def test_final_stage_must_be_full(self):
        with pytest.raises(ValueError, match="final fidelity"):
            PipelineSettings(fidelities=(FidelityConfig(name="proxy", epochs=1),))

    def test_proxy_stage_must_reduce_budget(self):
        with pytest.raises(ValueError, match="full budget"):
            PipelineSettings(
                fidelities=(FidelityConfig(name="a"), FidelityConfig(name="b"))
            )

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            PipelineSettings(
                fidelities=(
                    FidelityConfig(name="full", epochs=1),
                    FidelityConfig(name="full"),
                )
            )

    def test_invalid_fractions_rejected(self):
        with pytest.raises(ValueError, match="data_fraction"):
            FidelityConfig(name="proxy", data_fraction=0.0)
        with pytest.raises(ValueError, match="promote_fraction"):
            FidelityConfig(name="proxy", promote_fraction=1.5)
        with pytest.raises(ValueError, match="max_parameters"):
            PipelineSettings(max_parameters=0)

    def test_fidelity_fingerprint_ignores_name_and_promotion(self):
        a = FidelityConfig(name="a", epochs=2, data_fraction=0.5, promote_fraction=0.5)
        b = FidelityConfig(name="b", epochs=2, data_fraction=0.5, promote_fraction=0.25)
        c = FidelityConfig(name="a", epochs=3, data_fraction=0.5)
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != c.fingerprint()


class TestGates:
    def _pipeline(self, search, **settings_kwargs):
        evaluator = search.evaluator
        return EvaluationPipeline(
            train_dataset=evaluator.train_dataset,
            validation_dataset=evaluator.validation_dataset,
            latency_estimator=evaluator.latency_estimator,
            reward=evaluator.config.reward,
            training=evaluator.config.training,
            settings=PipelineSettings(**settings_kwargs),
        )

    def test_parameter_gate_rejects(self, tiny_splits, tiny_backbone):
        search = _search(tiny_splits, tiny_backbone)
        pipeline = self._pipeline(search, max_parameters=1)
        sample = search.controller.sample(rng=np.random.default_rng(0))
        descriptor = search.producer.describe_child(sample.decisions)
        pricing = pipeline.price(descriptor)
        assert not pricing.passed
        assert [g.gate for g in pricing.failures()] == ["parameters"]
        result = pipeline.rejection_result(pricing)
        assert result.reward == INVALID_REWARD and not result.trained
        # The latency gate still passed, so meets_timing is preserved.
        assert result.meets_timing

    def test_storage_gate_rejects(self, tiny_splits, tiny_backbone):
        search = _search(tiny_splits, tiny_backbone)
        pipeline = self._pipeline(search, max_storage_mb=1e-6)
        sample = search.controller.sample(rng=np.random.default_rng(0))
        descriptor = search.producer.describe_child(sample.decisions)
        pricing = pipeline.price(descriptor)
        assert [g.gate for g in pricing.failures()] == ["storage"]

    def test_all_gates_pass_with_default_limits(self, tiny_splits, tiny_backbone):
        search = _search(tiny_splits, tiny_backbone)
        pipeline = self._pipeline(search)
        sample = search.controller.sample(rng=np.random.default_rng(0))
        pricing = pipeline.price(search.producer.describe_child(sample.decisions))
        assert pricing.passed
        assert [g.gate for g in pricing.gates] == ["latency"]

    def test_design_spec_storage_budget_reaches_the_gate(
        self, tiny_splits, tiny_backbone
    ):
        """``design.max_storage_mb`` is enforced through the storage gate."""
        search = _search(tiny_splits, tiny_backbone, episodes=2, storage_mb=1e-6)
        assert search.evaluator.pipeline.settings.max_storage_mb == 1e-6
        result = search.run()
        assert all(not record.trained for record in result.history.records)
        assert all(
            record.reward == INVALID_REWARD for record in result.history.records
        )

    def test_monas_still_trains_latency_violating_children(
        self, tiny_splits, tiny_backbone
    ):
        """MONAS has no latency bypass: children train before the reward check."""
        from repro.core import MonasConfig, MonasSearch

        config = MonasConfig(
            episodes=2,
            seed=0,
            producer=ProducerConfig(backbone=tiny_backbone, width_multiplier=0.5),
            child_training=TrainingConfig(epochs=1, batch_size=8, seed=0),
        )
        design = DesignSpec(
            hardware=HardwareSpec(timing_constraint_ms=0.001),
            software=SoftwareSpec(accuracy_constraint=0.0),
        )
        search = MonasSearch(
            tiny_splits.train, tiny_splits.validation, design, config
        )
        assert search.evaluator.pipeline.bypass_invalid is False
        result = search.run()
        for record in result.history.records:
            assert record.trained  # trained despite violating the constraint
            assert record.reward == INVALID_REWARD
            assert record.accuracy > 0.0


class TestWeightSnapshots:
    def test_snapshot_restore_roundtrip(self, tiny_splits, tiny_backbone):
        search = _search(tiny_splits, tiny_backbone)
        child = search.producer.produce(
            search.controller.sample(rng=np.random.default_rng(0)).decisions,
            rng=np.random.default_rng(1),
        )
        snapshot = snapshot_weights(child.model)
        before = {k: v.copy() for k, v in child.model.state_dict().items()}
        search.evaluator.pipeline.train_and_score(child)  # mutates in place
        assert any(
            not np.array_equal(before[k], v)
            for k, v in child.model.state_dict().items()
        )
        restore_weights(child.model, snapshot)
        after = child.model.state_dict()
        assert all(np.array_equal(before[k], after[k]) for k in before)


# -- bit-for-bit parity of the default (single full-fidelity) pipeline --------------
def _seed_reference_episode(search, child, latency_estimator):
    """The seed repository's pre-refactor ChildEvaluator.evaluate, inlined."""
    evaluator = search.evaluator
    reward_config = evaluator.config.reward
    latency = latency_estimator.network_latency_ms(child.descriptor)
    storage = child.descriptor.storage_mb()
    num_parameters = child.descriptor.param_count()
    meets_timing = latency <= reward_config.timing_constraint_ms
    if not meets_timing:
        return {
            "latency_ms": latency,
            "storage_mb": storage,
            "num_parameters": num_parameters,
            "trained": False,
            "accuracy": 0.0,
            "unfairness": 0.0,
            "group_accuracy": {},
            "reward": INVALID_REWARD,
        }
    trainer = evaluator._trainer
    trainer.fit(child.model, evaluator.train_dataset.images, evaluator.train_dataset.labels)
    report = evaluate_fairness(child.model, evaluator.validation_dataset, trainer)
    reward = compute_reward(
        accuracy=report.overall_accuracy,
        unfairness=report.unfairness,
        latency_ms=latency,
        config=reward_config,
    )
    return {
        "latency_ms": latency,
        "storage_mb": storage,
        "num_parameters": num_parameters,
        "trained": True,
        "accuracy": report.overall_accuracy,
        "unfairness": report.unfairness,
        "group_accuracy": dict(report.group_accuracy),
        "reward": reward,
    }


class TestDefaultParity:
    @pytest.mark.parametrize("timing_ms", [1e6, 120.0])
    def test_history_matches_pre_refactor_loop_bit_for_bit(
        self, tiny_splits, tiny_backbone, timing_ms
    ):
        episodes = 4
        reference_search = _search(
            tiny_splits, tiny_backbone, episodes, timing_ms=timing_ms
        )
        reference = []
        for _ in range(episodes):
            sample = reference_search.controller.sample(rng=reference_search._sample_rng)
            child = reference_search.producer.produce(
                sample.decisions, rng=reference_search._child_rng
            )
            outcome = _seed_reference_episode(
                reference_search, child, reference_search.evaluator.latency_estimator
            )
            reference_search.policy_trainer.observe(sample, outcome["reward"])
            outcome["decisions"] = [spec.describe() for spec in child.descriptor.blocks]
            reference.append(outcome)
        reference_search.policy_trainer.apply_update()

        result = _search(tiny_splits, tiny_backbone, episodes, timing_ms=timing_ms).run()
        assert len(result.history) == episodes
        for record, expected in zip(result.history.records, reference):
            assert record.reward == expected["reward"]
            assert record.accuracy == expected["accuracy"]
            assert record.unfairness == expected["unfairness"]
            assert record.latency_ms == expected["latency_ms"]
            assert record.storage_mb == expected["storage_mb"]
            assert record.num_parameters == expected["num_parameters"]
            assert record.trained == expected["trained"]
            assert record.group_accuracy == expected["group_accuracy"]
            assert record.decisions == expected["decisions"]
            assert record.fidelity == "full"

    def test_default_spec_history_matches_reference_loop(self, tmp_path):
        """A default (no evaluation section) RunSpec reproduces the seed loop."""
        import repro
        from repro.api.registry import get_strategy

        spec = RunSpec.from_dict(
            {
                "strategy": "fahana",
                "dataset": {"image_size": 10, "samples_per_class": 8,
                            "minority_fraction": 0.5, "seed": 0},
                "design": {"timing_constraint_ms": 1e6},
                "search": {"episodes": 3, "child_epochs": 1, "pretrain_epochs": 0,
                           "max_searchable": 2, "width_multiplier": 0.25,
                           "child_batch_size": 16},
            }
        )
        report = repro.run(spec)

        splits = spec.dataset.build()
        design = spec.design.build()
        search = get_strategy("fahana").factory(
            spec, splits.train, splits.validation, design
        )
        reference = []
        for _ in range(spec.search.episodes):
            sample = search.controller.sample(rng=search._sample_rng)
            child = search.producer.produce(sample.decisions, rng=search._child_rng)
            outcome = _seed_reference_episode(
                search, child, search.evaluator.latency_estimator
            )
            reference.append(outcome)
        assert [r.reward for r in report.history.records] == [
            o["reward"] for o in reference
        ]
        assert [r.accuracy for r in report.history.records] == [
            o["accuracy"] for o in reference
        ]
        assert [r.group_accuracy for r in report.history.records] == [
            o["group_accuracy"] for o in reference
        ]


# -- the staged (multi-fidelity) engine path ----------------------------------------
class TestMultiFidelity:
    def test_promotion_trains_fewer_full_children(self, tiny_splits, tiny_backbone):
        episodes, batch = 4, 4
        search = _search(
            tiny_splits,
            tiny_backbone,
            episodes,
            policy_batch=batch,
            pipeline=_PROXY_SETTINGS,
        )
        engine = SearchEngine(search, EngineConfig(batch_episodes=batch))
        promotions = []
        engine.events.subscribe(
            lambda event: promotions.append(event.payload), kinds=[WAVE_PROMOTED]
        )
        result = engine.run()
        assert len(result.history) == episodes
        assert engine.evaluations_by_fidelity["proxy"] == episodes
        # promote_fraction=0.5 of a 4-wave: exactly 2 full trainings.
        assert engine.evaluations_by_fidelity["full"] == 2
        assert len(promotions) == 1 and len(promotions[0]["promoted"]) == 2
        fidelities = [record.fidelity for record in result.history.records]
        assert sorted(fidelities) == ["full", "full", "proxy", "proxy"]
        for record in result.history.records:
            expected = ["proxy"] if record.fidelity == "proxy" else ["proxy", "full"]
            assert record.stages == expected

    def test_staged_backends_agree(self, tiny_splits, tiny_backbone):
        episodes, batch = 4, 4

        def run(backend):
            search = _search(
                tiny_splits,
                tiny_backbone,
                episodes,
                policy_batch=batch,
                pipeline=_PROXY_SETTINGS,
            )
            engine = SearchEngine(
                search,
                EngineConfig(backend=backend, num_workers=2, batch_episodes=batch),
            )
            return engine.run()

        serial = run("serial")
        threaded = run("thread")
        assert serial.history.reward_trajectory() == threaded.history.reward_trajectory()
        assert [r.fidelity for r in serial.history.records] == [
            r.fidelity for r in threaded.history.records
        ]

    def test_promoted_children_match_single_stage_results(
        self, tiny_splits, tiny_backbone
    ):
        """A promoted child's full result equals its single-stage evaluation.

        Promotion restores the child's initial weights before the full stage,
        so proxy training leaves no trace in the final numbers -- and the
        full-fidelity cache keys of staged and plain runs coincide.
        """
        episodes, batch = 4, 4
        staged_search = _search(
            tiny_splits,
            tiny_backbone,
            episodes,
            policy_batch=batch,
            pipeline=_PROXY_SETTINGS,
        )
        staged = SearchEngine(staged_search, EngineConfig(batch_episodes=batch)).run()
        plain = SearchEngine(
            _search(tiny_splits, tiny_backbone, episodes, policy_batch=batch),
            EngineConfig(batch_episodes=batch),
        ).run()
        plain_by_key = {
            record.descriptor.cache_key(): record for record in plain.history.records
        }
        compared = 0
        for record in staged.history.records:
            if record.fidelity != "full":
                continue
            reference = plain_by_key[record.descriptor.cache_key()]
            assert record.reward == reference.reward
            assert record.accuracy == reference.accuracy
            assert record.unfairness == reference.unfairness
            compared += 1
        assert compared > 0

    def test_warm_cache_replays_staged_run_without_training(
        self, tiny_splits, tiny_backbone
    ):
        episodes, batch = 4, 4
        cache = EvaluationCache(capacity=64)

        def run():
            search = _search(
                tiny_splits,
                tiny_backbone,
                episodes,
                policy_batch=batch,
                pipeline=_PROXY_SETTINGS,
            )
            engine = SearchEngine(
                search,
                EngineConfig(batch_episodes=batch, use_cache=True, cache=cache),
            )
            return engine, engine.run()

        cold_engine, cold = run()
        assert cold_engine.evaluations_run > 0
        warm_engine, warm = run()
        assert warm_engine.evaluations_run == 0
        assert warm.history.reward_trajectory() == cold.history.reward_trajectory()
        assert [r.fidelity for r in warm.history.records] == [
            r.fidelity for r in cold.history.records
        ]

    def test_single_episode_waves_rejected_for_halving_ladders(
        self, tiny_splits, tiny_backbone
    ):
        # policy_batch=1 means one-child waves: promotion would select every
        # valid child, so each episode pays proxy AND full training.
        search = _search(
            tiny_splits, tiny_backbone, episodes=2, pipeline=_PROXY_SETTINGS
        )
        with pytest.raises(ValueError, match="at least 2 episodes"):
            SearchEngine(search, EngineConfig()).run()

    def test_proxy_and_full_cache_keys_never_collide(self, tiny_splits, tiny_backbone):
        search = _search(tiny_splits, tiny_backbone, pipeline=_PROXY_SETTINGS)
        engine = SearchEngine(search, EngineConfig(use_cache=True))
        sample = search.controller.sample(rng=np.random.default_rng(0))
        descriptor = search.producer.describe_child(sample.decisions)
        proxy, full = engine.pipeline.fidelities
        assert engine.child_cache_key(descriptor, proxy) != engine.child_cache_key(
            descriptor, full
        )
        # The full stage keeps the historical two-part key.
        assert engine.child_cache_key(descriptor, full) == engine.child_cache_key(
            descriptor
        )


# -- engine-level early stopping and adaptive wave sizing ---------------------------
class TestEngineScheduling:
    def test_reward_plateau_stops_the_run(self, tiny_splits, tiny_backbone):
        # A sub-millisecond constraint gate-rejects every child: all rewards
        # are -1, the best never improves, and the engine must stop after
        # exactly patience episodes beyond the first.
        search = _search(
            tiny_splits,
            tiny_backbone,
            episodes=10,
            timing_ms=0.001,
            plateau_patience=3,
        )
        engine = SearchEngine(search, EngineConfig())
        stops = []
        engine.events.subscribe(
            lambda event: stops.append(event.payload), kinds=[EARLY_STOPPED]
        )
        result = engine.run()
        assert engine.early_stopped
        assert len(result.history) == 4  # episode 0 + patience more
        assert stops and stops[0]["best_episode"] == 0

    def test_no_plateau_runs_to_budget(self, tiny_splits, tiny_backbone):
        search = _search(tiny_splits, tiny_backbone, episodes=3, timing_ms=0.001)
        engine = SearchEngine(search, EngineConfig())
        result = engine.run()
        assert not engine.early_stopped
        assert len(result.history) == 3

    def test_adaptive_wave_grows_on_cheap_episodes(self, tiny_splits, tiny_backbone):
        search = _search(
            tiny_splits,
            tiny_backbone,
            episodes=8,
            policy_batch=8,
            timing_ms=0.001,  # every child is gate-free: rejected untrained
            adaptive_wave=True,
        )
        engine = SearchEngine(search, EngineConfig(batch_episodes=2))
        resizes = []
        engine.events.subscribe(
            lambda event: resizes.append(event.payload), kinds=[WAVE_RESIZED]
        )
        result = engine.run()
        assert len(result.history) == 8
        assert resizes and resizes[0] == {"wave_size": 4, "previous": 2, "trained": 0}

    def test_adaptive_wave_is_results_neutral_single_fidelity(
        self, tiny_splits, tiny_backbone
    ):
        def run(adaptive):
            search = _search(
                tiny_splits,
                tiny_backbone,
                episodes=4,
                policy_batch=2,
                adaptive_wave=adaptive,
            )
            return SearchEngine(search, EngineConfig(batch_episodes=2)).run()

        assert (
            run(False).history.reward_trajectory()
            == run(True).history.reward_trajectory()
        )

    def test_plateau_spec_fields_reach_the_engine(self, tiny_splits):
        spec = RunSpec().with_overrides(
            values={"search.plateau_patience": 5, "search.adaptive_wave": True}
        )
        assert spec.search.plateau_patience == 5
        with pytest.raises(ValueError, match="plateau_patience"):
            RunSpec().with_overrides(values={"search.plateau_patience": 0})


# -- checkpoint/resume mid-run with the cache enabled (satellite) -------------------
class TestResumeWithCache:
    def test_resume_after_interrupted_wave_is_bit_for_bit(
        self, tiny_splits, tiny_backbone, tmp_path
    ):
        """Resume mid-run with caching on: identical history and RNG streams.

        The cache is pre-warmed by an identically-seeded full run, so the
        interrupted run takes the sample-time cache-hit path (which must burn
        one child-RNG draw per hit to stay aligned) before and after resume.
        """
        episodes, policy_batch = 6, 2

        def make_search():
            return _search(
                tiny_splits, tiny_backbone, episodes, policy_batch=policy_batch
            )

        # Pre-warm a persistent cache with an identically-configured run.
        warm_dir = str(tmp_path / "cache")
        SearchEngine(
            make_search(), EngineConfig(use_cache=True, cache_dir=warm_dir)
        ).run()

        # Uninterrupted reference run on the warmed cache.
        reference = SearchEngine(
            make_search(), EngineConfig(use_cache=True, cache_dir=warm_dir)
        ).run()
        assert any(record.cache_hit for record in reference.history.records)

        # Interrupted run: stop at a wave boundary mid-search, then resume.
        run_dir = str(tmp_path / "run")
        first = SearchEngine(
            make_search(),
            EngineConfig(use_cache=True, cache_dir=warm_dir, run_dir=run_dir),
        )
        first.run(episodes=4)
        resumed_engine = SearchEngine.resume(
            make_search(),
            EngineConfig(use_cache=True, cache_dir=warm_dir, run_dir=run_dir),
        )
        assert resumed_engine._next_episode == 4
        resumed = resumed_engine.run(episodes=episodes)

        assert len(resumed.history) == episodes
        assert (
            resumed.history.reward_trajectory()
            == reference.history.reward_trajectory()
        )
        assert [r.descriptor for r in resumed.history.records] == [
            r.descriptor for r in reference.history.records
        ]
        assert [r.cache_hit for r in resumed.history.records] == [
            r.cache_hit for r in reference.history.records
        ]
        # RNG-stream alignment: both searches end on identical stream states.
        resumed_state = resumed_engine.search._child_rng.bit_generator.state
        # Build the reference state from a fresh uninterrupted engine so the
        # comparison covers sample and child streams after the final episode.
        fresh = SearchEngine(
            make_search(), EngineConfig(use_cache=True, cache_dir=warm_dir)
        )
        fresh.run()
        assert resumed_state == fresh.search._child_rng.bit_generator.state
        assert (
            resumed_engine.search._sample_rng.bit_generator.state
            == fresh.search._sample_rng.bit_generator.state
        )


# -- the declarative surface ---------------------------------------------------------
class TestEvaluationSpecSection:
    def test_roundtrip_with_fidelities(self):
        spec = RunSpec.from_dict(
            {
                "strategy": "fahana",
                "evaluation": {
                    "max_parameters": 1000000,
                    "fidelities": [
                        {"name": "proxy", "epochs": 1, "data_fraction": 0.25},
                        {"name": "full"},
                    ],
                },
            }
        )
        assert spec.evaluation is not None
        assert spec.evaluation.staged
        assert spec.evaluation.fidelities[0].epochs == 1
        again = RunSpec.from_json(spec.to_json())
        assert again == spec

    def test_absent_section_stays_none_and_keeps_cache_key(self):
        base = RunSpec()
        assert base.evaluation is None
        assert "evaluation" not in base.to_dict()
        explicit = RunSpec(evaluation=PipelineSettings())
        # The evaluation section changes the computation's fingerprint even
        # when it spells out the defaults (unlike the engine section).
        assert explicit.cache_key() != base.cache_key()

    def test_unknown_fidelity_key_rejected(self):
        with pytest.raises(ValueError, match="fidelities\\[0\\]"):
            RunSpec.from_dict(
                {"evaluation": {"fidelities": [{"name": "p", "epoch": 1}]}}
            )

    def test_invalid_ladder_rejected_with_section_context(self):
        with pytest.raises(ValueError, match="evaluation"):
            RunSpec.from_dict(
                {"evaluation": {"fidelities": [{"name": "proxy", "epochs": 1}]}}
            )

    def test_plateau_fields_in_cache_key(self):
        base = RunSpec()
        patient = base.with_overrides(values={"search.plateau_patience": 5})
        assert base.cache_key() != patient.cache_key()

    def test_multi_fidelity_spec_runs_through_facade(self):
        import repro

        spec = RunSpec.from_dict(
            {
                "strategy": "fahana",
                "dataset": {"image_size": 10, "samples_per_class": 8,
                            "minority_fraction": 0.5, "seed": 0},
                "design": {"timing_constraint_ms": 1e6},
                "search": {"episodes": 4, "child_epochs": 1, "pretrain_epochs": 0,
                           "max_searchable": 2, "width_multiplier": 0.25,
                           "child_batch_size": 16, "policy_batch": 4},
                "evaluation": {"fidelities": [
                    {"name": "proxy", "epochs": 1, "data_fraction": 0.5,
                     "promote_fraction": 0.5},
                    {"name": "full"},
                ]},
            }
        )
        report = repro.run(spec)
        assert report.evaluations_by_fidelity == {"proxy": 4, "full": 2}
        assert "trainings by fidelity" in report.summary()
        payload = report.to_dict()
        assert payload["evaluations_by_fidelity"] == {"proxy": 4, "full": 2}
        assert payload["early_stopped"] is False


class TestValidatePrintKey:
    def test_print_key_outputs_key_and_resolved_engine(self, tmp_path, capsys):
        path = str(tmp_path / "spec.json")
        spec = RunSpec().with_overrides(values={"engine.backend": "thread"})
        spec.to_file(path)
        assert cli_main(["validate", path, "--print-key"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["cache_key"] == spec.cache_key()
        assert payload["engine"]["backend"] == "thread"
        assert "cache" not in payload["engine"]

    def test_print_key_ignores_engine_section(self, tmp_path, capsys):
        serial = str(tmp_path / "serial.json")
        threaded = str(tmp_path / "thread.json")
        RunSpec().to_file(serial)
        RunSpec().with_overrides(values={"engine.backend": "thread"}).to_file(threaded)
        assert cli_main(["validate", serial, "--print-key"]) == 0
        first = json.loads(capsys.readouterr().out)
        assert cli_main(["validate", threaded, "--print-key"]) == 0
        second = json.loads(capsys.readouterr().out)
        assert first["cache_key"] == second["cache_key"]
