"""Tests for the architecture zoo: descriptors, parameter counts, builders."""

from __future__ import annotations

import numpy as np
import pytest

from repro.blocks.spec import BlockSpec, ClassifierSpec, StemSpec
from repro.experiments import paper_values
from repro.zoo import (
    ArchitectureDescriptor,
    GROUP_LARGE,
    GROUP_SMALL,
    HeadSpec,
    get_architecture,
    list_architectures,
    register_architecture,
)
from repro.zoo.stages import inverted_residual_stage, make_divisible, residual_stage

ALL_PAPER_NETWORKS = list(paper_values.TABLE3)


class TestRegistry:
    def test_all_paper_networks_registered(self):
        registered = set(list_architectures())
        for name in ALL_PAPER_NETWORKS:
            assert name in registered

    def test_squeezenet_registered(self):
        assert "SqueezeNet 1.0" in list_architectures()

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            get_architecture("NotANetwork")

    def test_groups_partition_table3(self):
        assert set(GROUP_SMALL) | set(GROUP_LARGE) == set(ALL_PAPER_NETWORKS)
        assert not set(GROUP_SMALL) & set(GROUP_LARGE)

    def test_group_small_under_4m_parameters(self):
        for name in GROUP_SMALL:
            assert get_architecture(name).param_count() < 4_000_000, name

    def test_group_large_over_4m_parameters(self):
        for name in GROUP_LARGE:
            assert get_architecture(name).param_count() >= 4_000_000, name

    def test_register_custom_architecture(self, tiny_backbone):
        name = "UnitTestNet"
        if name not in list_architectures():
            register_architecture(name, lambda num_classes=5: tiny_backbone)
        assert get_architecture(name).name == "TinyBackbone"

    def test_register_duplicate_raises(self, tiny_backbone):
        with pytest.raises(ValueError):
            register_architecture("MobileNetV2", lambda: tiny_backbone)


class TestParameterCounts:
    @pytest.mark.parametrize("name", ALL_PAPER_NETWORKS)
    def test_param_count_within_10_percent_of_paper(self, name):
        descriptor = get_architecture(name)
        paper = paper_values.TABLE3[name]["params"]
        assert abs(descriptor.param_count() - paper) / paper < 0.10, name

    def test_exact_match_networks_within_1_percent(self):
        for name in ("MobileNetV2", "MnasNet 0.5", "MnasNet 1.0", "ResNet-18",
                     "ResNet-34", "ResNet-50", "ProxylessNAS(M)"):
            descriptor = get_architecture(name)
            paper = paper_values.TABLE3[name]["params"]
            assert abs(descriptor.param_count() - paper) / paper < 0.01, name

    def test_size_ordering_matches_paper(self):
        sizes = {n: get_architecture(n).param_count() for n in ALL_PAPER_NETWORKS}
        paper_sizes = {n: paper_values.TABLE3[n]["params"] for n in ALL_PAPER_NETWORKS}
        assert sorted(sizes, key=sizes.get) == sorted(paper_sizes, key=paper_sizes.get)

    def test_storage_is_params_times_four_bytes(self):
        descriptor = get_architecture("MobileNetV2")
        assert descriptor.storage_mb() == pytest.approx(
            descriptor.param_count() * 4 / 1e6
        )

    def test_num_classes_changes_classifier_only(self):
        base = get_architecture("ResNet-18", num_classes=5).param_count()
        more = get_architecture("ResNet-18", num_classes=10).param_count()
        assert more - base == 512 * 5 + 5


class TestDescriptorValidation:
    def test_channel_chain_mismatch_raises(self):
        with pytest.raises(ValueError):
            ArchitectureDescriptor(
                name="bad",
                stem=StemSpec(3, 8),
                blocks=(BlockSpec("DB", 16, 16, 16),),
                head=HeadSpec(16, 16),
                classifier=ClassifierSpec(16, 5),
            )

    def test_head_mismatch_raises(self):
        with pytest.raises(ValueError):
            ArchitectureDescriptor(
                name="bad",
                stem=StemSpec(3, 8),
                blocks=(BlockSpec("DB", 8, 8, 8),),
                head=HeadSpec(16, 16),
                classifier=ClassifierSpec(16, 5),
            )

    def test_classifier_mismatch_raises(self):
        with pytest.raises(ValueError):
            ArchitectureDescriptor(
                name="bad",
                stem=StemSpec(3, 8),
                blocks=(BlockSpec("DB", 8, 8, 8),),
                head=HeadSpec(8, 16),
                classifier=ClassifierSpec(32, 5),
            )

    def test_empty_blocks_raises(self):
        with pytest.raises(ValueError):
            ArchitectureDescriptor(
                name="bad",
                stem=StemSpec(3, 8),
                blocks=(),
                head=HeadSpec(8, 8),
                classifier=ClassifierSpec(8, 5),
            )

    def test_depth_ignores_skip_blocks(self, tiny_backbone):
        blocks = tiny_backbone.blocks[:1] + (BlockSpec("SKIP", 8, 8, 8),) + tiny_backbone.blocks[1:]
        descriptor = tiny_backbone.with_blocks(blocks)
        assert descriptor.depth() == tiny_backbone.depth()

    def test_with_blocks_adjusts_head_and_classifier(self, tiny_backbone):
        new_blocks = (
            BlockSpec("DB", 8, 16, 8),
            BlockSpec("MB", 8, 24, 48, stride=2),
        )
        descriptor = tiny_backbone.with_blocks(new_blocks, name="modified")
        assert descriptor.name == "modified"
        assert descriptor.head.ch_in == 48
        assert descriptor.classifier.ch_in == descriptor.head.ch_out

    def test_macs_positive_and_resolution_dependent(self, tiny_backbone):
        assert tiny_backbone.macs(224) > tiny_backbone.macs(64) > 0

    def test_describe_mentions_every_block(self, tiny_backbone):
        description = tiny_backbone.describe()
        for block in tiny_backbone.blocks:
            assert block.describe() in description


class TestModelBuilding:
    def test_tiny_backbone_builds_and_runs(self, tiny_backbone, rng):
        model = tiny_backbone.build(num_classes=5, width_multiplier=0.5, rng=0)
        out = model.forward(rng.normal(size=(2, 3, 16, 16)))
        assert out.shape == (2, 5)

    def test_backward_shape(self, tiny_backbone, rng):
        model = tiny_backbone.build(num_classes=5, width_multiplier=0.5, rng=0)
        out = model.forward(rng.normal(size=(2, 3, 16, 16)))
        grad = model.backward(np.ones_like(out))
        assert grad.shape == (2, 3, 16, 16)

    def test_width_multiplier_shrinks_model(self, tiny_backbone):
        full = tiny_backbone.build(num_classes=5, width_multiplier=1.0, rng=0)
        half = tiny_backbone.build(num_classes=5, width_multiplier=0.5, rng=0)
        assert half.num_parameters() < full.num_parameters()

    def test_full_width_build_matches_analytic_count(self, tiny_backbone):
        model = tiny_backbone.build(num_classes=5, width_multiplier=1.0, rng=0)
        assert model.num_parameters() == tiny_backbone.param_count()

    def test_build_is_deterministic_given_seed(self, tiny_backbone):
        a = tiny_backbone.build(num_classes=5, rng=7)
        b = tiny_backbone.build(num_classes=5, rng=7)
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            np.testing.assert_allclose(pa.data, pb.data)

    def test_mobilenetv3_with_hidden_classifier_builds(self, rng):
        descriptor = get_architecture("MobileNetV3(S)")
        model = descriptor.build(num_classes=5, width_multiplier=0.125, rng=0)
        assert model.forward(rng.normal(size=(1, 3, 32, 32))).shape == (1, 5)

    @pytest.mark.parametrize("name", ["MobileNetV2", "MnasNet 0.5", "FaHaNa-Small",
                                      "FaHaNa-Fair", "SqueezeNet 1.0", "ResNet-18"])
    def test_zoo_models_forward_at_reduced_scale(self, name, rng):
        descriptor = get_architecture(name)
        model = descriptor.build(num_classes=5, width_multiplier=0.125, rng=0)
        assert model.forward(rng.normal(size=(1, 3, 32, 32))).shape == (1, 5)


class TestStages:
    def test_make_divisible_multiple_of_8(self):
        assert make_divisible(37) % 8 == 0

    def test_make_divisible_does_not_shrink_much(self):
        assert make_divisible(100) >= 90

    def test_make_divisible_invalid(self):
        with pytest.raises(ValueError):
            make_divisible(0)

    def test_inverted_stage_first_block_has_stride(self):
        blocks = inverted_residual_stage(16, 24, 6, 3, 2)
        assert blocks[0].block_type == "MB" and blocks[0].stride == 2
        assert all(b.block_type == "DB" for b in blocks[1:])

    def test_inverted_stage_channel_chaining(self):
        blocks = inverted_residual_stage(16, 24, 6, 3, 2)
        assert blocks[0].ch_in == 16
        assert all(b.ch_in == 24 for b in blocks[1:])
        assert all(b.ch_out == 24 for b in blocks)

    def test_inverted_stage_expansion_follows_input(self):
        blocks = inverted_residual_stage(16, 24, 6, 2, 2)
        assert blocks[0].ch_mid == 96
        assert blocks[1].ch_mid == 144

    def test_residual_stage_bottleneck_flag(self):
        blocks = residual_stage(64, 256, 3, 1, bottleneck=True, bottleneck_mid=64)
        assert all(b.block_type == "RBB" for b in blocks)
        assert blocks[0].ch_mid == 64

    def test_residual_stage_invalid_repeats(self):
        with pytest.raises(ValueError):
            residual_stage(64, 64, 0, 1)

    def test_fahana_fair_uses_larger_tail_blocks(self):
        descriptor = get_architecture("FaHaNa-Fair")
        tail = descriptor.blocks[-2:]
        assert all(block.block_type in ("RB", "CB") for block in tail)

    def test_fahana_small_is_smallest_g1_network(self):
        sizes = {name: get_architecture(name).param_count() for name in GROUP_SMALL}
        assert min(sizes, key=sizes.get) == "FaHaNa-Small"
