"""Tests for losses, optimisers, schedulers, metrics and the training loop."""

from __future__ import annotations

import numpy as np
import pytest

import repro.nn as nn
from repro.nn.functional import softmax
from repro.nn.losses import CrossEntropyLoss
from repro.nn.metrics import accuracy, confusion_matrix
from repro.nn.optim import SGD, Adam
from repro.nn.schedulers import CosineDecay, StepDecay
from repro.nn.tensor import Parameter
from repro.nn.trainer import Trainer, TrainingConfig


class TestCrossEntropy:
    def test_uniform_logits_loss_is_log_classes(self):
        loss_fn = CrossEntropyLoss()
        logits = np.zeros((4, 5))
        loss = loss_fn.forward(logits, np.array([0, 1, 2, 3]))
        assert abs(loss - np.log(5)) < 1e-9

    def test_perfect_prediction_low_loss(self):
        loss_fn = CrossEntropyLoss()
        logits = np.eye(3) * 50
        assert loss_fn.forward(logits, np.array([0, 1, 2])) < 1e-6

    def test_gradient_matches_softmax_minus_onehot(self):
        loss_fn = CrossEntropyLoss()
        logits = np.random.default_rng(0).normal(size=(3, 4))
        labels = np.array([1, 0, 3])
        loss_fn.forward(logits, labels)
        grad = loss_fn.backward()
        expected = softmax(logits, axis=1)
        expected[np.arange(3), labels] -= 1
        np.testing.assert_allclose(grad, expected / 3.0, atol=1e-12)

    def test_gradient_numeric(self):
        rng = np.random.default_rng(1)
        logits = rng.normal(size=(2, 3))
        labels = np.array([2, 0])
        loss_fn = CrossEntropyLoss()
        loss_fn.forward(logits, labels)
        grad = loss_fn.backward()
        eps = 1e-6
        for idx in [(0, 0), (1, 2), (0, 1)]:
            perturbed = logits.copy()
            perturbed[idx] += eps
            plus = CrossEntropyLoss().forward(perturbed, labels)
            perturbed[idx] -= 2 * eps
            minus = CrossEntropyLoss().forward(perturbed, labels)
            assert abs((plus - minus) / (2 * eps) - grad[idx]) < 1e-6

    def test_sample_weights_shift_loss(self):
        loss_fn = CrossEntropyLoss()
        logits = np.array([[10.0, 0.0], [0.0, 10.0]])
        labels = np.array([0, 0])  # second sample is wrong
        unweighted = loss_fn.forward(logits, labels)
        weighted = CrossEntropyLoss().forward(
            logits, labels, sample_weights=np.array([1.0, 0.01])
        )
        assert weighted < unweighted

    def test_label_smoothing_increases_perfect_loss(self):
        logits = np.eye(3) * 50
        labels = np.array([0, 1, 2])
        plain = CrossEntropyLoss().forward(logits, labels)
        smoothed = CrossEntropyLoss(label_smoothing=0.1).forward(logits, labels)
        assert smoothed > plain

    def test_shape_validation(self):
        loss_fn = CrossEntropyLoss()
        with pytest.raises(ValueError):
            loss_fn.forward(np.zeros((2, 3)), np.array([0, 1, 2]))
        with pytest.raises(ValueError):
            loss_fn.forward(np.zeros(3), np.array([0]))

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            CrossEntropyLoss().backward()


class TestOptimisers:
    def _quadratic_param(self):
        return Parameter(np.array([5.0, -3.0]), name="x")

    def test_sgd_reduces_quadratic(self):
        param = self._quadratic_param()
        opt = SGD([param], lr=0.1, momentum=0.0)
        for _ in range(100):
            opt.zero_grad()
            param.accumulate_grad(2 * param.data)
            opt.step()
        assert np.abs(param.data).max() < 1e-3

    def test_sgd_momentum_accelerates(self):
        param_plain = self._quadratic_param()
        param_momentum = self._quadratic_param()
        opt_plain = SGD([param_plain], lr=0.01, momentum=0.0)
        opt_momentum = SGD([param_momentum], lr=0.01, momentum=0.9)
        for _ in range(30):
            for param, opt in ((param_plain, opt_plain), (param_momentum, opt_momentum)):
                opt.zero_grad()
                param.accumulate_grad(2 * param.data)
                opt.step()
        assert np.abs(param_momentum.data).sum() < np.abs(param_plain.data).sum()

    def test_sgd_skips_frozen_parameters(self):
        param = Parameter(np.ones(3), trainable=False)
        opt = SGD([param], lr=0.5)
        param.grad = np.ones(3)
        opt.step()
        np.testing.assert_allclose(param.data, np.ones(3))

    def test_sgd_weight_decay_shrinks_weights(self):
        param = Parameter(np.ones(4))
        opt = SGD([param], lr=0.1, momentum=0.0, weight_decay=0.5)
        param.grad = np.zeros(4)
        opt.step()
        assert (param.data < 1.0).all()

    def test_sgd_gradient_clipping(self):
        param = Parameter(np.zeros(2))
        opt = SGD([param], lr=1.0, momentum=0.0, max_grad_norm=1.0)
        param.grad = np.array([30.0, 40.0])
        opt.step()
        assert abs(np.linalg.norm(param.data) - 1.0) < 1e-9

    def test_sgd_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.0)
        with pytest.raises(ValueError):
            SGD([], lr=0.1, momentum=1.0)
        with pytest.raises(ValueError):
            SGD([], lr=0.1, weight_decay=-1)

    def test_adam_reduces_quadratic(self):
        param = self._quadratic_param()
        opt = Adam([param], lr=0.2)
        for _ in range(200):
            opt.zero_grad()
            param.accumulate_grad(2 * param.data)
            opt.step()
        assert np.abs(param.data).max() < 1e-2

    def test_adam_skips_frozen(self):
        param = Parameter(np.ones(2), trainable=False)
        opt = Adam([param], lr=0.1)
        param.grad = np.ones(2)
        opt.step()
        np.testing.assert_allclose(param.data, np.ones(2))

    def test_adam_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            Adam([], lr=-1)
        with pytest.raises(ValueError):
            Adam([], beta1=1.0)

    def test_set_lr(self):
        opt = SGD([Parameter(np.zeros(1))], lr=0.1)
        opt.set_lr(0.01)
        assert opt.lr == 0.01
        with pytest.raises(ValueError):
            opt.set_lr(0.0)


class TestSchedulers:
    def test_step_decay_schedule(self):
        opt = SGD([Parameter(np.zeros(1))], lr=0.1)
        scheduler = StepDecay(opt, step_size=20, gamma=0.9)
        for _ in range(20):
            scheduler.step()
        assert abs(opt.lr - 0.09) < 1e-12

    def test_step_decay_paper_protocol(self):
        # lr 0.1, decay 0.9 every 20 steps: after 40 epochs -> 0.081
        opt = SGD([Parameter(np.zeros(1))], lr=0.1)
        scheduler = StepDecay(opt, step_size=20, gamma=0.9)
        for _ in range(40):
            scheduler.step()
        assert abs(opt.lr - 0.1 * 0.9**2) < 1e-12

    def test_step_decay_invalid(self):
        opt = SGD([Parameter(np.zeros(1))], lr=0.1)
        with pytest.raises(ValueError):
            StepDecay(opt, step_size=0)
        with pytest.raises(ValueError):
            StepDecay(opt, gamma=0.0)

    def test_cosine_decay_reaches_min(self):
        opt = SGD([Parameter(np.zeros(1))], lr=0.1)
        scheduler = CosineDecay(opt, total_epochs=10, min_lr=1e-4)
        for _ in range(10):
            scheduler.step()
        assert abs(opt.lr - 1e-4) < 1e-9

    def test_cosine_decay_monotone(self):
        opt = SGD([Parameter(np.zeros(1))], lr=0.1)
        scheduler = CosineDecay(opt, total_epochs=8)
        rates = [scheduler.step() for _ in range(8)]
        assert all(a >= b for a, b in zip(rates, rates[1:]))


class TestMetrics:
    def test_accuracy_from_labels(self):
        assert accuracy(np.array([0, 1, 1]), np.array([0, 1, 0])) == pytest.approx(2 / 3)

    def test_accuracy_from_logits(self):
        logits = np.array([[0.9, 0.1], [0.2, 0.8]])
        assert accuracy(logits, np.array([0, 1])) == 1.0

    def test_accuracy_empty_raises(self):
        with pytest.raises(ValueError):
            accuracy(np.array([]), np.array([]))

    def test_accuracy_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            accuracy(np.array([1, 2]), np.array([1]))

    def test_confusion_matrix(self):
        matrix = confusion_matrix(np.array([0, 1, 1]), np.array([0, 1, 0]), 2)
        np.testing.assert_array_equal(matrix, [[1, 1], [0, 1]])

    def test_confusion_matrix_out_of_range(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.array([5]), np.array([0]), 2)


class TestTrainer:
    def _toy_problem(self, n=48, rng_seed=0):
        rng = np.random.default_rng(rng_seed)
        x = rng.normal(size=(n, 3, 8, 8))
        y = (x[:, 0].mean(axis=(1, 2)) > 0).astype(int)
        return x, y

    def _toy_model(self, seed=0):
        return nn.Sequential(
            nn.Conv2d(3, 6, 3, stride=2, rng=seed),
            nn.BatchNorm2d(6),
            nn.ReLU(),
            nn.GlobalAvgPool2d(),
            nn.Linear(6, 2, rng=seed + 1),
        )

    def test_training_improves_accuracy(self):
        x, y = self._toy_problem()
        model = self._toy_model()
        trainer = Trainer(TrainingConfig(epochs=12, batch_size=16, seed=0))
        history = trainer.fit(model, x, y)
        assert history.final_accuracy > 0.7
        assert history.losses[0] > history.losses[-1]

    def test_history_lengths(self):
        x, y = self._toy_problem(n=16)
        trainer = Trainer(TrainingConfig(epochs=3, batch_size=8, seed=0))
        history = trainer.fit(self._toy_model(), x, y)
        assert len(history.losses) == 3
        assert len(history.accuracies) == 3
        assert len(history.learning_rates) == 3

    def test_zero_epochs_returns_empty_history(self):
        x, y = self._toy_problem(n=8)
        trainer = Trainer(TrainingConfig(epochs=0, seed=0))
        history = trainer.fit(self._toy_model(), x, y)
        assert history.losses == []
        assert np.isnan(history.final_loss)

    def test_predict_shape_and_range(self):
        x, y = self._toy_problem(n=10)
        trainer = Trainer(TrainingConfig(epochs=1, batch_size=4, seed=0))
        model = self._toy_model()
        trainer.fit(model, x, y)
        predictions = trainer.predict(model, x)
        assert predictions.shape == (10,)
        assert set(np.unique(predictions)).issubset({0, 1})

    def test_evaluate_matches_manual_accuracy(self):
        x, y = self._toy_problem(n=12)
        trainer = Trainer(TrainingConfig(epochs=1, batch_size=4, seed=0))
        model = self._toy_model()
        trainer.fit(model, x, y)
        assert trainer.evaluate(model, x, y) == accuracy(trainer.predict(model, x), y)

    def test_empty_dataset_raises(self):
        trainer = Trainer(TrainingConfig(epochs=1))
        with pytest.raises(ValueError):
            trainer.fit(self._toy_model(), np.zeros((0, 3, 8, 8)), np.zeros(0))

    def test_mismatched_lengths_raise(self):
        trainer = Trainer(TrainingConfig(epochs=1))
        with pytest.raises(ValueError):
            trainer.fit(self._toy_model(), np.zeros((4, 3, 8, 8)), np.zeros(3))

    def test_sgd_optimizer_option(self):
        x, y = self._toy_problem(n=16)
        trainer = Trainer(
            TrainingConfig(epochs=2, batch_size=8, optimizer="sgd", learning_rate=0.05, seed=0)
        )
        history = trainer.fit(self._toy_model(), x, y)
        assert len(history.losses) == 2

    def test_invalid_optimizer_name(self):
        with pytest.raises(ValueError):
            TrainingConfig(optimizer="rmsprop")

    def test_invalid_config_values(self):
        with pytest.raises(ValueError):
            TrainingConfig(epochs=-1)
        with pytest.raises(ValueError):
            TrainingConfig(batch_size=0)

    def test_invalid_hyperparameter_values(self):
        with pytest.raises(ValueError, match="learning_rate"):
            TrainingConfig(learning_rate=0.0)
        with pytest.raises(ValueError, match="learning_rate"):
            TrainingConfig(learning_rate=-1e-3)
        with pytest.raises(ValueError, match="weight_decay"):
            TrainingConfig(weight_decay=-1e-4)
        with pytest.raises(ValueError, match="max_grad_norm"):
            TrainingConfig(max_grad_norm=0.0)
        with pytest.raises(ValueError, match="lr_step_size"):
            TrainingConfig(lr_step_size=0)
        with pytest.raises(ValueError, match="lr_gamma"):
            TrainingConfig(lr_gamma=-0.5)
        with pytest.raises(ValueError, match="momentum"):
            TrainingConfig(momentum=1.0)
        # Boundary values stay accepted.
        assert TrainingConfig(weight_decay=0.0, momentum=0.0).weight_decay == 0.0

    def test_training_is_deterministic_given_seed(self):
        x, y = self._toy_problem(n=24)
        histories = []
        for _ in range(2):
            model = self._toy_model(seed=3)
            trainer = Trainer(TrainingConfig(epochs=2, batch_size=8, seed=11))
            histories.append(trainer.fit(model, x, y).losses)
        np.testing.assert_allclose(histories[0], histories[1])

    def test_frozen_parameters_do_not_change(self):
        x, y = self._toy_problem(n=16)
        model = self._toy_model()
        model[0].freeze()
        frozen_before = model[0].weight.data.copy()
        trainer = Trainer(TrainingConfig(epochs=2, batch_size=8, seed=0))
        trainer.fit(model, x, y)
        np.testing.assert_allclose(model[0].weight.data, frozen_before)

    def test_sample_weights_accepted(self):
        x, y = self._toy_problem(n=16)
        weights = np.ones(16)
        trainer = Trainer(TrainingConfig(epochs=1, batch_size=8, seed=0))
        history = trainer.fit(self._toy_model(), x, y, sample_weights=weights)
        assert len(history.losses) == 1
