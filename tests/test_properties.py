"""Property-based tests (hypothesis) for core invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.blocks.spec import BlockSpec
from repro.core.reward import INVALID_REWARD, RewardConfig, compute_reward
from repro.fairness.metrics import unfairness_score
from repro.nn.functional import col2im, im2col, one_hot, softmax
from repro.nn.metrics import accuracy
from repro.utils.pareto import dominates, pareto_frontier

SETTINGS = settings(max_examples=25, deadline=None)


# -- fairness ---------------------------------------------------------------------
@SETTINGS
@given(
    labels=hnp.arrays(np.int64, st.integers(4, 40), elements=st.integers(0, 4)),
    data=st.data(),
)
def test_unfairness_score_bounds_and_permutation_invariance(labels, data):
    n = labels.shape[0]
    predictions = data.draw(
        hnp.arrays(np.int64, n, elements=st.integers(0, 4)), label="predictions"
    )
    # ensure both groups are present
    groups = np.zeros(n, dtype=np.int64)
    groups[n // 2 :] = 1
    score = unfairness_score(predictions, labels, groups, ("light", "dark"))
    assert 0.0 <= score <= 2.0  # at most |1-0| per group for two groups
    order = data.draw(st.permutations(range(n)), label="order")
    order = np.array(order)
    permuted = unfairness_score(
        predictions[order], labels[order], groups[order], ("light", "dark")
    )
    assert permuted == pytest.approx(score)


@SETTINGS
@given(labels=hnp.arrays(np.int64, st.integers(2, 30), elements=st.integers(0, 4)))
def test_perfect_predictions_are_perfectly_fair(labels):
    groups = np.zeros(labels.shape[0], dtype=np.int64)
    groups[::2] = 1
    if groups.sum() == 0 or groups.sum() == len(groups):
        return
    assert unfairness_score(labels, labels, groups, ("light", "dark")) == 0.0
    assert accuracy(labels, labels) == 1.0


# -- reward -----------------------------------------------------------------------
@SETTINGS
@given(
    acc=st.floats(0.0, 1.0),
    unfairness=st.floats(0.0, 1.0),
    latency=st.floats(0.0, 3000.0),
    alpha=st.floats(0.0, 2.0),
    beta=st.floats(0.0, 2.0),
)
def test_reward_bounds_and_validity(acc, unfairness, latency, alpha, beta):
    config = RewardConfig(
        alpha=alpha, beta=beta, accuracy_constraint=0.0, timing_constraint_ms=1500.0
    )
    reward = compute_reward(acc, unfairness, latency, config)
    if latency > 1500.0:
        assert reward == INVALID_REWARD
    else:
        assert reward == pytest.approx(alpha * acc - beta * unfairness)
        assert reward <= alpha * acc + 1e-12


@SETTINGS
@given(acc=st.floats(0.0, 1.0), unfairness=st.floats(0.0, 1.0))
def test_reward_monotone_in_accuracy_and_fairness(acc, unfairness):
    config = RewardConfig(timing_constraint_ms=1e9)
    base = compute_reward(acc, unfairness, 1.0, config)
    if acc <= 0.99:
        assert compute_reward(min(1.0, acc + 0.01), unfairness, 1.0, config) >= base
    if unfairness <= 0.99:
        assert compute_reward(acc, unfairness + 0.01, 1.0, config) <= base


# -- pareto -----------------------------------------------------------------------
@SETTINGS
@given(
    points=st.lists(
        st.tuples(st.floats(0, 10), st.floats(0, 10)), min_size=1, max_size=25
    )
)
def test_pareto_frontier_properties(points):
    frontier = pareto_frontier(points, objectives=lambda p: p, maximise=(True, True))
    assert frontier  # never empty for a non-empty input
    assert all(p in points for p in frontier)
    # no frontier point is dominated by any other point
    for candidate in frontier:
        assert not any(
            dominates(other, candidate, (True, True)) for other in points
        )
    # every non-frontier point is dominated by at least one frontier point
    for point in points:
        if point not in frontier:
            assert any(dominates(front, point, (True, True)) for front in frontier)


# -- numerics ----------------------------------------------------------------------
@SETTINGS
@given(
    logits=hnp.arrays(
        np.float64,
        st.tuples(st.integers(1, 6), st.integers(2, 8)),
        elements=st.floats(-50, 50),
    ),
    shift=st.floats(-100, 100),
)
def test_softmax_normalised_and_shift_invariant(logits, shift):
    probs = softmax(logits)
    np.testing.assert_allclose(probs.sum(axis=-1), np.ones(logits.shape[0]), atol=1e-9)
    assert (probs >= 0).all()
    np.testing.assert_allclose(softmax(logits + shift), probs, atol=1e-9)


@SETTINGS
@given(
    batch=st.integers(1, 3),
    channels=st.integers(1, 4),
    size=st.integers(3, 9),
    kernel=st.sampled_from([1, 3, 5]),
    stride=st.sampled_from([1, 2]),
)
def test_im2col_col2im_adjointness(batch, channels, size, kernel, stride):
    if size + 2 * (kernel // 2) < kernel:
        return
    rng = np.random.default_rng(0)
    x = rng.normal(size=(batch, channels, size, size))
    padding = kernel // 2
    cols = im2col(x, kernel, kernel, stride, padding)
    y = rng.normal(size=cols.shape)
    lhs = float((cols * y).sum())
    rhs = float((x * col2im(y, x.shape, kernel, kernel, stride, padding)).sum())
    assert lhs == pytest.approx(rhs, rel=1e-9, abs=1e-9)


@SETTINGS
@given(
    labels=hnp.arrays(np.int64, st.integers(1, 30), elements=st.integers(0, 9)),
    num_classes=st.integers(10, 12),
)
def test_one_hot_rows_sum_to_one(labels, num_classes):
    encoded = one_hot(labels, num_classes)
    np.testing.assert_allclose(encoded.sum(axis=1), np.ones(labels.shape[0]))
    assert encoded.shape == (labels.shape[0], num_classes)


# -- block specifications -------------------------------------------------------------
_block_spec_strategy = st.builds(
    BlockSpec,
    block_type=st.sampled_from(["DB", "RB", "CB"]),
    ch_in=st.integers(1, 64),
    ch_mid=st.integers(1, 128),
    ch_out=st.integers(1, 64),
    kernel=st.sampled_from([1, 3, 5]),
    stride=st.just(1),
)


@SETTINGS
@given(spec=_block_spec_strategy)
def test_block_spec_costs_are_non_negative_and_consistent(spec):
    assert spec.param_count() >= 0
    assert spec.macs(8, 8) >= 0
    ops = spec.op_costs(8, 8)
    assert sum(op.params for op in ops) == spec.param_count()
    assert all(op.macs >= 0 and op.output_elems >= 0 for op in ops)


@SETTINGS
@given(spec=_block_spec_strategy, multiplier=st.floats(0.1, 1.0))
def test_block_spec_scaling_never_increases_parameters_much(spec, multiplier):
    scaled = spec.scaled(multiplier)
    # rounding can add a handful of parameters for tiny channel counts, but a
    # scaled-down block is never larger than the original by more than the
    # rounding slack
    assert scaled.param_count() <= spec.param_count() + 4 * (
        scaled.ch_in + scaled.ch_mid + scaled.ch_out + 8
    )
    assert min(scaled.ch_in, scaled.ch_mid, scaled.ch_out) >= 1


@SETTINGS
@given(
    spec=_block_spec_strategy,
    height=st.integers(4, 32),
)
def test_block_spec_stride1_preserves_resolution(spec, height):
    assert spec.output_spatial(height, height) == (height, height)


# -- accuracy ---------------------------------------------------------------------------
@SETTINGS
@given(
    labels=hnp.arrays(np.int64, st.integers(1, 40), elements=st.integers(0, 4)),
    data=st.data(),
)
def test_accuracy_bounds(labels, data):
    predictions = data.draw(
        hnp.arrays(np.int64, labels.shape[0], elements=st.integers(0, 4))
    )
    value = accuracy(predictions, labels)
    assert 0.0 <= value <= 1.0
