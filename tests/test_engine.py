"""Tests for the engine subsystem: cache keys, memoization, worker pools,
deterministic parallel execution and checkpoint/resume."""

from __future__ import annotations

import dataclasses
import json
import os
import time

import numpy as np
import pytest

from repro.blocks.spec import BlockSpec, ClassifierSpec, StemSpec
from repro.core import FaHaNaConfig, FaHaNaSearch, ProducerConfig
from repro.core.evaluator import EvaluationResult
from repro.core.policy import PolicyGradientConfig
from repro.engine import (
    EngineConfig,
    EvaluationCache,
    SearchEngine,
    create_pool,
    has_checkpoint,
    resolve_engine_config,
    set_default_engine_config,
)
from repro.engine.cli import main as cli_main
from repro.engine.serde import descriptor_from_dict, descriptor_to_dict
from repro.hardware.constraints import DesignSpec, HardwareSpec, SoftwareSpec
from repro.nn.trainer import TrainingConfig
from repro.zoo.descriptors import ArchitectureDescriptor, HeadSpec


def _make_descriptor(kernel: int = 3, name: str = "net") -> ArchitectureDescriptor:
    return ArchitectureDescriptor(
        name=name,
        stem=StemSpec(ch_in=3, ch_out=8),
        blocks=(BlockSpec("DB", 8, 16, 8, kernel=kernel),),
        head=HeadSpec(8, 16),
        classifier=ClassifierSpec(16, 5),
    )


def _make_result(reward: float = 0.5) -> EvaluationResult:
    return EvaluationResult(
        latency_ms=10.0,
        storage_mb=0.1,
        num_parameters=1000,
        trained=True,
        accuracy=0.8,
        unfairness=0.3,
        group_accuracy={"light": 0.9, "dark": 0.6},
        reward=reward,
        meets_timing=True,
        meets_accuracy=True,
        train_seconds=1.0,
    )


class TestCacheKey:
    def test_deterministic_across_instances(self):
        assert _make_descriptor().cache_key() == _make_descriptor().cache_key()

    def test_name_and_family_do_not_matter(self):
        a = _make_descriptor(name="a")
        b = _make_descriptor(name="b")
        assert a.cache_key() == b.cache_key()

    def test_structural_change_changes_key(self):
        assert _make_descriptor(kernel=3).cache_key() != _make_descriptor(kernel=5).cache_key()

    def test_block_spec_key_sensitivity(self):
        base = BlockSpec("DB", 8, 16, 8)
        assert base.cache_key() == BlockSpec("DB", 8, 16, 8).cache_key()
        assert base.cache_key() != BlockSpec("DB", 8, 32, 8).cache_key()
        assert base.cache_key() != BlockSpec("CB", 8, 16, 8).cache_key()

    def test_no_collisions_across_search_space_corner(self):
        # A small combinatorial sweep: all keys must be distinct.
        keys = set()
        count = 0
        for block_type in ("DB", "RB", "CB"):
            for kernel in (3, 5):
                for ch_mid in (16, 32):
                    for ch_out in (8, 24):
                        spec = BlockSpec(block_type, 8, ch_mid, ch_out, kernel=kernel)
                        keys.add(spec.cache_key())
                        count += 1
        assert len(keys) == count

    def test_descriptor_serde_roundtrip(self):
        descriptor = _make_descriptor(kernel=5)
        rebuilt = descriptor_from_dict(descriptor_to_dict(descriptor))
        assert rebuilt == descriptor
        assert rebuilt.cache_key() == descriptor.cache_key()


class TestEvaluationCache:
    def test_miss_then_hit(self):
        cache = EvaluationCache(capacity=4)
        assert cache.get("k") is None
        cache.put("k", _make_result())
        assert cache.get("k").reward == 0.5
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_lru_eviction(self):
        cache = EvaluationCache(capacity=2)
        cache.put("a", _make_result(0.1))
        cache.put("b", _make_result(0.2))
        cache.get("a")  # refresh a; b becomes the eviction candidate
        cache.put("c", _make_result(0.3))
        assert cache.get("b") is None
        assert cache.get("a") is not None
        assert cache.get("c") is not None

    def test_disk_persistence_roundtrip(self, tmp_path):
        directory = str(tmp_path / "cache")
        first = EvaluationCache(capacity=4, directory=directory)
        first.put("deadbeef", _make_result(0.7))
        # A second cache over the same directory serves the entry from disk.
        second = EvaluationCache(capacity=4, directory=directory)
        entry = second.get("deadbeef")
        assert entry is not None
        assert entry.reward == pytest.approx(0.7)
        assert entry.group_accuracy == {"light": 0.9, "dark": 0.6}

    def test_snapshot_restore(self):
        cache = EvaluationCache(capacity=4)
        cache.put("a", _make_result(0.1))
        cache.put("b", _make_result(0.2))
        snapshot = cache.snapshot()
        other = EvaluationCache(capacity=4)
        other.restore(snapshot)
        assert other.get("a").reward == pytest.approx(0.1)
        assert other.get("b").reward == pytest.approx(0.2)


def _square(x: int) -> int:
    return x * x


class TestWorkerPools:
    def test_serial_pool_order_and_label(self):
        pool = create_pool("serial")
        results = pool.map_ordered(_square, [1, 2, 3])
        assert [value for value, _ in results] == [1, 4, 9]
        assert all(worker == "serial-0" for _, worker in results)

    def test_thread_pool_preserves_submission_order(self):
        def slow_square(x: int) -> int:
            time.sleep(0.02 if x % 2 == 0 else 0.0)  # jitter the completion order
            return x * x

        with create_pool("thread", num_workers=3) as pool:
            results = pool.map_ordered(slow_square, list(range(6)))
        assert [value for value, _ in results] == [x * x for x in range(6)]
        assert all("engine-worker" in worker for _, worker in results)

    def test_process_pool_roundtrip(self):
        with create_pool("process", num_workers=2) as pool:
            results = pool.map_ordered(_square, [2, 3])
        assert [value for value, _ in results] == [4, 9]
        assert all(worker.startswith("process-") for _, worker in results)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            create_pool("quantum")


def _search(tiny_splits, tiny_backbone, episodes=4, policy_batch=1, seed=0):
    config = FaHaNaConfig(
        episodes=episodes,
        seed=seed,
        producer=ProducerConfig(
            backbone=tiny_backbone,
            freeze=True,
            pretrain_epochs=1,
            width_multiplier=0.5,
        ),
        policy=PolicyGradientConfig(batch_episodes=policy_batch),
        child_training=TrainingConfig(epochs=1, batch_size=8, seed=0),
    )
    spec = DesignSpec(
        hardware=HardwareSpec(timing_constraint_ms=1e6),
        software=SoftwareSpec(accuracy_constraint=0.0),
    )
    return FaHaNaSearch(tiny_splits.train, tiny_splits.validation, spec, config)


def _reference_sequential_rewards(search, episodes):
    """The seed repository's original loop, inlined as the parity reference."""
    rewards = []
    for _ in range(episodes):
        sample = search.controller.sample(rng=search._sample_rng)
        child = search.producer.produce(sample.decisions, rng=search._child_rng)
        evaluation = search.evaluator.evaluate(child)
        search.policy_trainer.observe(sample, evaluation.reward)
        rewards.append(evaluation.reward)
    search.policy_trainer.apply_update()
    return rewards


class TestEngineDeterminism:
    def test_thread_backend_reproduces_sequential_rewards(self, tiny_splits, tiny_backbone):
        episodes, batch = 4, 4
        reference = _reference_sequential_rewards(
            _search(tiny_splits, tiny_backbone, episodes, policy_batch=batch), episodes
        )
        engine = SearchEngine(
            _search(tiny_splits, tiny_backbone, episodes, policy_batch=batch),
            EngineConfig(backend="thread", num_workers=2, batch_episodes=batch),
        )
        result = engine.run()
        assert result.history.reward_trajectory() == reference
        workers = {r.worker for r in result.history.records}
        assert all("engine-worker" in w for w in workers)

    def test_serial_and_thread_backends_equivalent(self, tiny_splits, tiny_backbone):
        episodes, batch = 4, 2
        serial = SearchEngine(
            _search(tiny_splits, tiny_backbone, episodes, policy_batch=batch),
            EngineConfig(backend="serial", batch_episodes=batch),
        ).run()
        threaded = SearchEngine(
            _search(tiny_splits, tiny_backbone, episodes, policy_batch=batch),
            EngineConfig(backend="thread", num_workers=2, batch_episodes=batch),
        ).run()
        assert serial.history.reward_trajectory() == threaded.history.reward_trajectory()
        assert [r.decisions for r in serial.history.records] == [
            r.decisions for r in threaded.history.records
        ]
        assert [r.descriptor for r in serial.history.records] == [
            r.descriptor for r in threaded.history.records
        ]

    def test_fahana_run_still_matches_reference_loop(self, tiny_splits, tiny_backbone):
        episodes = 3
        reference = _reference_sequential_rewards(
            _search(tiny_splits, tiny_backbone, episodes), episodes
        )
        result = _search(tiny_splits, tiny_backbone, episodes).run()
        assert result.history.reward_trajectory() == reference


class TestEngineCache:
    def test_warm_cache_skips_training(self, tiny_splits, tiny_backbone):
        episodes = 3
        cache = EvaluationCache(capacity=64)
        cold = SearchEngine(
            _search(tiny_splits, tiny_backbone, episodes),
            EngineConfig(use_cache=True, cache=cache),
        )
        cold_result = cold.run()
        assert cold.evaluations_run > 0

        # An identically seeded search replays the same descriptors: every
        # episode must come from the cache, with no training at all.
        warm = SearchEngine(
            _search(tiny_splits, tiny_backbone, episodes),
            EngineConfig(use_cache=True, cache=cache),
        )
        warm_result = warm.run()
        assert warm.evaluations_run == 0
        assert all(record.cache_hit for record in warm_result.history.records)
        assert all(record.worker == "cache" for record in warm_result.history.records)
        assert (
            warm_result.history.reward_trajectory()
            == cold_result.history.reward_trajectory()
        )
        # Provenance: the cold run trained, the warm run did not re-train.
        assert any(r.trained and not r.cache_hit for r in cold_result.history.records)

    def test_cache_events_emitted(self, tiny_splits, tiny_backbone):
        cache = EvaluationCache(capacity=64)
        SearchEngine(
            _search(tiny_splits, tiny_backbone, 2),
            EngineConfig(use_cache=True, cache=cache),
        ).run()
        engine = SearchEngine(
            _search(tiny_splits, tiny_backbone, 2),
            EngineConfig(use_cache=True, cache=cache),
        )
        seen = []
        engine.events.subscribe(lambda e: seen.append(e.kind), kinds=["cache-hit"])
        engine.run()
        assert seen == ["cache-hit", "cache-hit"]

    def test_context_changes_cache_key(self, tiny_splits, tiny_backbone):
        descriptor = _make_descriptor()
        engine_a = SearchEngine(
            _search(tiny_splits, tiny_backbone, 1), EngineConfig(use_cache=True)
        )
        # A different timing constraint is a different evaluation context.
        other = _search(tiny_splits, tiny_backbone, 1)
        other.evaluator.config.reward = dataclasses.replace(
            other.evaluator.config.reward, timing_constraint_ms=123.0
        )
        engine_b = SearchEngine(other, EngineConfig(use_cache=True))
        assert engine_a.child_cache_key(descriptor) != engine_b.child_cache_key(descriptor)

    def test_group_labels_are_part_of_the_context(self, tiny_splits, tiny_backbone):
        from repro.data.dataset import GroupedDataset

        descriptor = _make_descriptor()
        engine_a = SearchEngine(
            _search(tiny_splits, tiny_backbone, 1), EngineConfig(use_cache=True)
        )
        # Same images and labels, different demographic group assignment:
        # unfairness (and hence reward) would differ, so the key must too.
        regrouped = _search(tiny_splits, tiny_backbone, 1)
        validation = regrouped.validation_dataset
        regrouped.validation_dataset = GroupedDataset(
            images=validation.images,
            labels=validation.labels,
            groups=1 - validation.groups,
            group_names=validation.group_names,
        )
        engine_b = SearchEngine(regrouped, EngineConfig(use_cache=True))
        assert engine_a.child_cache_key(descriptor) != engine_b.child_cache_key(descriptor)

    def test_intra_wave_duplicates_train_once(self, tiny_splits, tiny_backbone):
        search = _search(tiny_splits, tiny_backbone, 2, policy_batch=2)
        # Force the controller to propose the same child twice in one wave.
        original = search.controller.sample
        memo = {}

        def duplicated_sample(rng=None, **kwargs):
            if "sample" not in memo:
                memo["sample"] = original(rng=rng, **kwargs)
            return memo["sample"]

        search.controller.sample = duplicated_sample
        engine = SearchEngine(search, EngineConfig(use_cache=True, batch_episodes=2))
        result = engine.run()
        assert engine.evaluations_run == 1
        records = result.history.records
        assert not records[0].cache_hit and records[1].cache_hit
        assert records[0].reward == records[1].reward

    def test_context_key_is_lazy(self, tiny_splits, tiny_backbone):
        engine = SearchEngine(_search(tiny_splits, tiny_backbone, 1), EngineConfig())
        assert engine._context_key is None  # nothing hashed on the no-cache path
        assert engine.context_key == engine.context_key  # computed once on demand
        assert engine._context_key is not None

    def test_backbone_pretraining_is_part_of_the_context(self, tiny_splits, tiny_backbone):
        descriptor = _make_descriptor()
        keys = []
        for pretrain_epochs in (1, 2):
            config = FaHaNaConfig(
                episodes=1,
                seed=0,
                producer=ProducerConfig(
                    backbone=tiny_backbone,
                    freeze=True,
                    pretrain_epochs=pretrain_epochs,
                    width_multiplier=0.5,
                ),
                child_training=TrainingConfig(epochs=1, batch_size=8, seed=0),
            )
            search = FaHaNaSearch(tiny_splits.train, tiny_splits.validation, None, config)
            engine = SearchEngine(search, EngineConfig(use_cache=True))
            keys.append(engine.child_cache_key(descriptor))
        # Different frozen-prefix weights -> different evaluation context.
        assert keys[0] != keys[1]


class TestCheckpointResume:
    def test_resume_matches_uninterrupted_run(self, tiny_splits, tiny_backbone, tmp_path):
        run_dir = str(tmp_path / "run")
        total, cut = 5, 3

        uninterrupted = SearchEngine(
            _search(tiny_splits, tiny_backbone, total), EngineConfig()
        ).run()

        first = SearchEngine(
            _search(tiny_splits, tiny_backbone, total),
            EngineConfig(run_dir=run_dir),
        )
        first.run(cut)
        assert has_checkpoint(run_dir)

        resumed_engine = SearchEngine.resume(
            _search(tiny_splits, tiny_backbone, total),
            EngineConfig(run_dir=run_dir),
        )
        assert resumed_engine._next_episode == cut
        resumed = resumed_engine.run(total)

        assert len(resumed.history) == total
        assert (
            resumed.history.reward_trajectory()
            == uninterrupted.history.reward_trajectory()
        )
        assert [r.decisions for r in resumed.history.records] == [
            r.decisions for r in uninterrupted.history.records
        ]
        assert [r.descriptor for r in resumed.history.records] == [
            r.descriptor for r in uninterrupted.history.records
        ]

    def test_restore_rejects_different_context(self, tiny_splits, tiny_backbone, tmp_path):
        run_dir = str(tmp_path / "run")
        SearchEngine(
            _search(tiny_splits, tiny_backbone, 2), EngineConfig(run_dir=run_dir)
        ).run()
        other = _search(tiny_splits, tiny_backbone, 2)
        other.evaluator.config.reward = dataclasses.replace(
            other.evaluator.config.reward, timing_constraint_ms=123.0
        )
        engine = SearchEngine(other, EngineConfig(run_dir=run_dir))
        with pytest.raises(ValueError):
            engine.restore()

    def test_telemetry_written(self, tiny_splits, tiny_backbone, tmp_path):
        run_dir = str(tmp_path / "run")
        SearchEngine(
            _search(tiny_splits, tiny_backbone, 2), EngineConfig(run_dir=run_dir)
        ).run()
        lines = [
            json.loads(line)
            for line in open(os.path.join(run_dir, "telemetry.jsonl"), encoding="utf-8")
        ]
        kinds = [line["kind"] for line in lines]
        assert kinds[0] == "run-started"
        assert kinds[-1] == "run-finished"
        assert kinds.count("episode-finished") == 2
        assert "checkpoint-written" in kinds


class TestEngineConfigResolution:
    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            EngineConfig(backend="gpu")
        with pytest.raises(ValueError):
            EngineConfig(num_workers=0)
        with pytest.raises(ValueError):
            EngineConfig(batch_episodes=0)
        with pytest.raises(ValueError):
            EngineConfig(checkpoint_every=-1)

    def test_wave_larger_than_policy_batch_rejected(self, tiny_splits, tiny_backbone):
        engine = SearchEngine(
            _search(tiny_splits, tiny_backbone, 4, policy_batch=1),
            EngineConfig(batch_episodes=4),
        )
        with pytest.raises(ValueError, match="batch_episodes"):
            engine.run()

    def test_default_config_installation(self):
        installed = EngineConfig(backend="thread", num_workers=3)
        previous = set_default_engine_config(installed)
        try:
            assert resolve_engine_config() is installed
            explicit = EngineConfig()
            assert resolve_engine_config(explicit) is explicit
        finally:
            set_default_engine_config(previous)
        assert resolve_engine_config().backend == "serial"


class TestRunEngineSearch:
    def test_explicit_engine_config_is_honored(self, tiny_splits, tmp_path):
        from repro.core import run_engine_search

        run_dir = str(tmp_path / "run")
        result, engine = run_engine_search(
            tiny_splits.train,
            tiny_splits.validation,
            episodes=1,
            engine=EngineConfig(run_dir=run_dir, use_cache=True),
            backbone="MobileNetV2",
            pretrain_epochs=0,
            child_epochs=1,
            max_searchable=2,
            width_multiplier=0.25,
            seed=0,
        )
        assert len(result.history) == 1
        assert engine.config.run_dir == run_dir
        assert has_checkpoint(run_dir)


class TestCli:
    def test_cli_smoke_run_and_resume(self, tmp_path, capsys):
        run_dir = str(tmp_path / "run")
        args = [
            "--episodes", "2",
            "--image-size", "10",
            "--samples-per-class", "8",
            "--child-epochs", "1",
            "--pretrain-epochs", "0",
            "--max-searchable", "2",
            "--policy-batch", "1",
            "--run-dir", run_dir,
        ]
        assert cli_main(args) == 0
        out = capsys.readouterr().out
        assert "search summary" in out
        assert has_checkpoint(run_dir)
        # Resume continues (and immediately finishes) the completed run.
        assert cli_main(args + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "resumed from episode 2" in out

    def test_cli_resume_without_checkpoint_fails(self, tmp_path, capsys):
        assert cli_main(["--resume", "--run-dir", str(tmp_path / "nope")]) == 2
