"""Tests for repro.utils: RNG helpers, Pareto extraction, tables, serialization."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.utils.pareto import dominates, pareto_frontier, pareto_points_2d
from repro.utils.rng import derive_seed, new_rng, spawn_rngs
from repro.utils.serialization import (
    load_json,
    load_state_dict,
    save_json,
    save_state_dict,
)
from repro.utils.tabulate import format_table


class TestRng:
    def test_new_rng_from_int_is_deterministic(self):
        assert new_rng(7).integers(0, 100) == new_rng(7).integers(0, 100)

    def test_new_rng_passthrough_generator(self):
        gen = np.random.default_rng(3)
        assert new_rng(gen) is gen

    def test_new_rng_none_gives_generator(self):
        assert isinstance(new_rng(None), np.random.Generator)

    def test_spawn_rngs_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_spawn_rngs_independent_streams(self):
        a, b = spawn_rngs(0, 2)
        assert a.integers(0, 10**9) != b.integers(0, 10**9)

    def test_spawn_rngs_deterministic(self):
        first = [g.integers(0, 1000) for g in spawn_rngs(42, 3)]
        second = [g.integers(0, 1000) for g in spawn_rngs(42, 3)]
        assert first == second

    def test_spawn_rngs_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_spawn_rngs_zero_count(self):
        assert spawn_rngs(0, 0) == []

    def test_derive_seed_deterministic(self):
        assert derive_seed(5, 1) == derive_seed(5, 1)

    def test_derive_seed_salt_changes_value(self):
        assert derive_seed(5, 1) != derive_seed(5, 2)


class TestPareto:
    def test_dominates_strictly_better(self):
        assert dominates((2, 2), (1, 1), (True, True))

    def test_dominates_equal_is_false(self):
        assert not dominates((1, 1), (1, 1), (True, True))

    def test_dominates_mixed_directions(self):
        # maximise first, minimise second
        assert dominates((2, 1), (1, 2), (True, False))

    def test_dominates_partial_is_false(self):
        assert not dominates((2, 0), (1, 1), (True, True))

    def test_dominates_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            dominates((1,), (1, 2), (True, True))

    def test_frontier_simple(self):
        points = [(1, 1), (2, 2), (3, 0)]
        frontier = pareto_points_2d(points)
        assert (2, 2) in frontier and (3, 0) in frontier and (1, 1) not in frontier

    def test_frontier_preserves_order(self):
        points = [(3, 0), (2, 2), (1, 1)]
        frontier = pareto_points_2d(points)
        assert frontier == [(3, 0), (2, 2)]

    def test_frontier_single_point(self):
        assert pareto_points_2d([(1.0, 1.0)]) == [(1.0, 1.0)]

    def test_frontier_all_identical(self):
        points = [(1, 1)] * 3
        assert len(pareto_points_2d(points)) == 3

    def test_frontier_with_objectives_callable(self):
        items = [{"a": 1, "b": 5}, {"a": 2, "b": 1}]
        frontier = pareto_frontier(
            items, objectives=lambda d: (d["a"], d["b"]), maximise=(True, True)
        )
        assert len(frontier) == 2

    def test_frontier_minimise_both(self):
        points = [(1, 1), (2, 2), (0, 3)]
        frontier = pareto_points_2d(points, maximise_x=False, maximise_y=False)
        assert (2, 2) not in frontier
        assert (1, 1) in frontier and (0, 3) in frontier


class TestTabulate:
    def test_basic_alignment(self):
        table = format_table(["a", "bb"], [["x", "y"], ["long", "z"]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[2:])

    def test_float_formatting(self):
        table = format_table(["v"], [[0.123456]])
        assert "0.1235" in table

    def test_row_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_empty_rows(self):
        table = format_table(["a"], [])
        assert "a" in table


class TestSerialization:
    def test_state_dict_roundtrip(self, tmp_path):
        state = {"w": np.arange(6, dtype=np.float64).reshape(2, 3), "b": np.zeros(3)}
        path = os.path.join(tmp_path, "model.npz")
        save_state_dict(path, state)
        loaded = load_state_dict(path)
        assert set(loaded) == {"w", "b"}
        np.testing.assert_allclose(loaded["w"], state["w"])

    def test_json_roundtrip_with_numpy(self, tmp_path):
        payload = {"array": np.array([1.0, 2.0]), "value": np.float64(3.5), "n": np.int64(2)}
        path = os.path.join(tmp_path, "result.json")
        save_json(path, payload)
        loaded = load_json(path)
        assert loaded["array"] == [1.0, 2.0]
        assert loaded["value"] == 3.5
        assert loaded["n"] == 2

    def test_json_roundtrip_dataclass(self, tmp_path):
        from repro.core.reward import RewardConfig

        path = os.path.join(tmp_path, "config.json")
        save_json(path, RewardConfig(alpha=2.0))
        loaded = load_json(path)
        assert loaded["alpha"] == 2.0

    def test_json_nested_structures(self, tmp_path):
        path = os.path.join(tmp_path, "nested.json")
        save_json(path, {"list": [{"x": np.bool_(True)}], "tuple": (1, 2)})
        loaded = load_json(path)
        assert loaded["list"][0]["x"] is True
        assert loaded["tuple"] == [1, 2]
