"""Tests for the numpy layer implementations: shapes, errors and gradients."""

from __future__ import annotations

import numpy as np
import pytest

import repro.nn as nn
from repro.nn.functional import col2im, conv_output_size, im2col, log_softmax, one_hot, softmax
from repro.nn.layers import SqueezeExcite


def numeric_input_gradient(layer, x, eps=1e-5, samples=40, rng=None):
    """Numerical d(sum(output))/dx at a random subset of input positions."""
    rng = rng or np.random.default_rng(0)
    analytic_out = layer.forward(x)
    analytic = layer.backward(np.ones_like(analytic_out))
    for _ in range(samples):
        idx = tuple(rng.integers(0, s) for s in x.shape)
        original = x[idx]
        x[idx] = original + eps
        plus = layer.forward(x).sum()
        x[idx] = original - eps
        minus = layer.forward(x).sum()
        x[idx] = original
        numeric = (plus - minus) / (2 * eps)
        assert abs(numeric - analytic[idx]) < 1e-5, f"gradient mismatch at {idx}"


class TestFunctional:
    def test_conv_output_size(self):
        assert conv_output_size(32, 3, 1, 1) == 32
        assert conv_output_size(32, 3, 2, 1) == 16

    def test_conv_output_size_invalid(self):
        with pytest.raises(ValueError):
            conv_output_size(1, 5, 1, 0)

    def test_im2col_shape(self):
        x = np.arange(2 * 3 * 6 * 6, dtype=float).reshape(2, 3, 6, 6)
        cols = im2col(x, 3, 3, 1, 1)
        assert cols.shape == (2, 3, 3, 3, 6, 6)

    def test_im2col_values_identity_kernel(self):
        x = np.random.default_rng(0).normal(size=(1, 1, 4, 4))
        cols = im2col(x, 1, 1, 1, 0)
        np.testing.assert_allclose(cols[0, 0, 0, 0], x[0, 0])

    def test_col2im_is_adjoint_of_im2col(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(2, 2, 5, 5))
        cols = im2col(x, 3, 3, 2, 1)
        y = rng.normal(size=cols.shape)
        # <im2col(x), y> == <x, col2im(y)>
        lhs = float((cols * y).sum())
        rhs = float((x * col2im(y, x.shape, 3, 3, 2, 1)).sum())
        assert abs(lhs - rhs) < 1e-9

    def test_softmax_rows_sum_to_one(self):
        probs = softmax(np.random.default_rng(0).normal(size=(4, 7)))
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(4))

    def test_softmax_handles_large_logits(self):
        probs = softmax(np.array([[1000.0, 0.0]]))
        assert np.isfinite(probs).all()

    def test_log_softmax_matches_log_of_softmax(self):
        logits = np.random.default_rng(0).normal(size=(3, 5))
        np.testing.assert_allclose(log_softmax(logits), np.log(softmax(logits)), atol=1e-12)

    def test_one_hot(self):
        encoded = one_hot(np.array([0, 2]), 3)
        np.testing.assert_allclose(encoded, [[1, 0, 0], [0, 0, 1]])

    def test_one_hot_out_of_range_raises(self):
        with pytest.raises(ValueError):
            one_hot(np.array([3]), 3)

    def test_one_hot_requires_1d(self):
        with pytest.raises(ValueError):
            one_hot(np.zeros((2, 2), dtype=int), 3)


class TestConv2d:
    def test_output_shape_stride1(self):
        conv = nn.Conv2d(3, 8, 3, rng=0)
        out = conv.forward(np.zeros((2, 3, 10, 10)))
        assert out.shape == (2, 8, 10, 10)

    def test_output_shape_stride2(self):
        conv = nn.Conv2d(3, 8, 3, stride=2, rng=0)
        out = conv.forward(np.zeros((2, 3, 10, 10)))
        assert out.shape == (2, 8, 5, 5)

    def test_output_shape_helper_matches_forward(self):
        conv = nn.Conv2d(4, 6, 5, stride=2, rng=0)
        out = conv.forward(np.zeros((1, 4, 11, 11)))
        assert out.shape[1:] == conv.output_shape(11, 11)

    def test_wrong_channel_count_raises(self):
        conv = nn.Conv2d(3, 8, 3, rng=0)
        with pytest.raises(ValueError):
            conv.forward(np.zeros((1, 4, 8, 8)))

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            nn.Conv2d(0, 4, 3)
        with pytest.raises(ValueError):
            nn.Conv2d(4, 4, 0)

    def test_backward_before_forward_raises(self):
        conv = nn.Conv2d(3, 4, 3, rng=0)
        with pytest.raises(RuntimeError):
            conv.backward(np.zeros((1, 4, 8, 8)))

    def test_input_gradient_matches_numeric(self, rng):
        conv = nn.Conv2d(2, 3, 3, stride=2, rng=1)
        numeric_input_gradient(conv, rng.normal(size=(2, 2, 6, 6)), rng=rng)

    def test_weight_gradient_matches_numeric(self, rng):
        conv = nn.Conv2d(2, 2, 3, rng=1)
        x = rng.normal(size=(1, 2, 5, 5))
        out = conv.forward(x)
        conv.backward(np.ones_like(out))
        analytic = conv.weight.grad.copy()
        eps = 1e-6
        idx = (1, 0, 2, 1)
        original = conv.weight.data[idx]
        conv.weight.data[idx] = original + eps
        plus = conv.forward(x).sum()
        conv.weight.data[idx] = original - eps
        minus = conv.forward(x).sum()
        conv.weight.data[idx] = original
        assert abs((plus - minus) / (2 * eps) - analytic[idx]) < 1e-5

    def test_bias_gradient(self, rng):
        conv = nn.Conv2d(2, 3, 3, rng=1)
        x = rng.normal(size=(2, 2, 4, 4))
        out = conv.forward(x)
        conv.backward(np.ones_like(out))
        np.testing.assert_allclose(conv.bias.grad, np.full(3, 2 * 4 * 4), atol=1e-9)

    def test_no_bias_mode(self):
        conv = nn.Conv2d(2, 3, 3, bias=False, rng=0)
        assert not hasattr(conv, "bias")
        assert len(conv.parameters()) == 1


class TestDepthwiseConv2d:
    def test_output_shape(self):
        conv = nn.DepthwiseConv2d(4, 3, stride=2, rng=0)
        assert conv.forward(np.zeros((2, 4, 8, 8))).shape == (2, 4, 4, 4)

    def test_channel_mismatch_raises(self):
        conv = nn.DepthwiseConv2d(4, 3, rng=0)
        with pytest.raises(ValueError):
            conv.forward(np.zeros((1, 3, 8, 8)))

    def test_input_gradient(self, rng):
        conv = nn.DepthwiseConv2d(3, 3, rng=1)
        numeric_input_gradient(conv, rng.normal(size=(2, 3, 6, 6)), rng=rng)

    def test_channels_do_not_mix(self, rng):
        conv = nn.DepthwiseConv2d(2, 3, rng=1)
        x = rng.normal(size=(1, 2, 6, 6))
        base = conv.forward(x.copy())
        x2 = x.copy()
        x2[0, 1] += 10.0  # perturb channel 1 only
        perturbed = conv.forward(x2)
        np.testing.assert_allclose(base[0, 0], perturbed[0, 0])
        assert not np.allclose(base[0, 1], perturbed[0, 1])

    def test_backward_before_forward_raises(self):
        conv = nn.DepthwiseConv2d(2, 3, rng=0)
        with pytest.raises(RuntimeError):
            conv.backward(np.zeros((1, 2, 4, 4)))


class TestLinear:
    def test_forward_shape(self):
        linear = nn.Linear(8, 3, rng=0)
        assert linear.forward(np.zeros((4, 8))).shape == (4, 3)

    def test_forward_values(self):
        linear = nn.Linear(2, 2, rng=0)
        linear.weight.data = np.array([[1.0, 0.0], [0.0, 2.0]])
        linear.bias.data = np.array([1.0, -1.0])
        out = linear.forward(np.array([[3.0, 4.0]]))
        np.testing.assert_allclose(out, [[4.0, 7.0]])

    def test_wrong_shape_raises(self):
        linear = nn.Linear(8, 3, rng=0)
        with pytest.raises(ValueError):
            linear.forward(np.zeros((4, 7)))

    def test_gradients(self, rng):
        linear = nn.Linear(5, 4, rng=1)
        x = rng.normal(size=(3, 5))
        out = linear.forward(x)
        grad_in = linear.backward(np.ones_like(out))
        np.testing.assert_allclose(grad_in, np.ones((3, 4)) @ linear.weight.data)
        np.testing.assert_allclose(linear.weight.grad, np.ones((4, 3)) @ x)
        np.testing.assert_allclose(linear.bias.grad, np.full(4, 3.0))


class TestBatchNorm:
    def test_training_output_is_normalised(self, rng):
        bn = nn.BatchNorm2d(3)
        x = rng.normal(loc=5.0, scale=2.0, size=(8, 3, 4, 4))
        out = bn.forward(x)
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), np.zeros(3), atol=1e-7)
        np.testing.assert_allclose(out.std(axis=(0, 2, 3)), np.ones(3), atol=1e-3)

    def test_eval_uses_running_statistics(self, rng):
        bn = nn.BatchNorm2d(2)
        x = rng.normal(size=(16, 2, 4, 4))
        for _ in range(30):
            bn.forward(x)
        bn.eval()
        out_eval = bn.forward(x)
        assert abs(out_eval.mean()) < 0.3

    def test_input_gradient(self, rng):
        bn = nn.BatchNorm2d(3)
        numeric_input_gradient(bn, rng.normal(size=(4, 3, 3, 3)), rng=rng)

    def test_wrong_channels_raises(self):
        bn = nn.BatchNorm2d(3)
        with pytest.raises(ValueError):
            bn.forward(np.zeros((2, 4, 3, 3)))

    def test_backward_in_eval_mode_raises(self, rng):
        bn = nn.BatchNorm2d(2)
        bn.eval()
        bn.forward(rng.normal(size=(2, 2, 3, 3)))
        with pytest.raises(RuntimeError):
            bn.backward(np.ones((2, 2, 3, 3)))

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            nn.BatchNorm2d(0)
        with pytest.raises(ValueError):
            nn.BatchNorm2d(4, momentum=0.0)


class TestActivations:
    def test_relu_forward(self):
        relu = nn.ReLU()
        np.testing.assert_allclose(relu.forward(np.array([-1.0, 2.0])), [0.0, 2.0])

    def test_relu_backward_mask(self):
        relu = nn.ReLU()
        relu.forward(np.array([-1.0, 2.0]))
        np.testing.assert_allclose(relu.backward(np.array([5.0, 5.0])), [0.0, 5.0])

    def test_relu6_clips(self):
        relu6 = nn.ReLU6()
        np.testing.assert_allclose(
            relu6.forward(np.array([-1.0, 3.0, 10.0])), [0.0, 3.0, 6.0]
        )

    def test_relu6_gradient_zero_outside_range(self):
        relu6 = nn.ReLU6()
        relu6.forward(np.array([-1.0, 3.0, 10.0]))
        np.testing.assert_allclose(relu6.backward(np.ones(3)), [0.0, 1.0, 0.0])

    def test_hardswish_known_values(self):
        hs = nn.HardSwish()
        np.testing.assert_allclose(
            hs.forward(np.array([-4.0, 0.0, 4.0])), [0.0, 0.0, 4.0]
        )

    def test_hardswish_gradient_numeric(self, rng):
        hs = nn.HardSwish()
        numeric_input_gradient(hs, rng.normal(size=(4, 4)) * 2.5, rng=rng)

    def test_hardsigmoid_range(self, rng):
        hsig = nn.HardSigmoid()
        out = hsig.forward(rng.normal(size=(10,)) * 5)
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_identity_passthrough(self, rng):
        identity = nn.Identity()
        x = rng.normal(size=(3, 3))
        np.testing.assert_allclose(identity.forward(x), x)
        np.testing.assert_allclose(identity.backward(x), x)


class TestPooling:
    def test_global_avg_pool(self, rng):
        pool = nn.GlobalAvgPool2d()
        x = rng.normal(size=(2, 3, 4, 4))
        np.testing.assert_allclose(pool.forward(x), x.mean(axis=(2, 3)))

    def test_global_avg_pool_gradient(self, rng):
        pool = nn.GlobalAvgPool2d()
        x = rng.normal(size=(2, 3, 4, 4))
        pool.forward(x)
        grad = pool.backward(np.ones((2, 3)))
        np.testing.assert_allclose(grad, np.full_like(x, 1.0 / 16.0))

    def test_global_avg_pool_requires_4d(self):
        with pytest.raises(ValueError):
            nn.GlobalAvgPool2d().forward(np.zeros((2, 3)))

    def test_maxpool_forward(self):
        pool = nn.MaxPool2d(2)
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = pool.forward(x)
        np.testing.assert_allclose(out[0, 0], [[5, 7], [13, 15]])

    def test_maxpool_backward_routes_to_argmax(self):
        pool = nn.MaxPool2d(2)
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        pool.forward(x)
        grad = pool.backward(np.ones((1, 1, 2, 2)))
        assert grad.sum() == 4
        assert grad[0, 0, 3, 3] == 1.0

    def test_avgpool_forward(self):
        pool = nn.AvgPool2d(2)
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = pool.forward(x)
        np.testing.assert_allclose(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_avgpool_gradient(self, rng):
        pool = nn.AvgPool2d(2)
        numeric_input_gradient(pool, rng.normal(size=(1, 2, 4, 4)), rng=rng)


class TestFlattenDropout:
    def test_flatten_roundtrip(self, rng):
        flatten = nn.Flatten()
        x = rng.normal(size=(2, 3, 4, 4))
        out = flatten.forward(x)
        assert out.shape == (2, 48)
        grad = flatten.backward(out)
        np.testing.assert_allclose(grad, x)

    def test_dropout_eval_is_identity(self, rng):
        dropout = nn.Dropout(0.5, rng=0)
        dropout.eval()
        x = rng.normal(size=(4, 4))
        np.testing.assert_allclose(dropout.forward(x), x)

    def test_dropout_training_zeroes_some(self):
        dropout = nn.Dropout(0.5, rng=0)
        out = dropout.forward(np.ones((1000,)))
        assert (out == 0).sum() > 100
        # inverted dropout keeps the expectation roughly constant
        assert abs(out.mean() - 1.0) < 0.2

    def test_dropout_invalid_rate(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.0)

    def test_dropout_zero_rate_identity(self, rng):
        dropout = nn.Dropout(0.0)
        x = rng.normal(size=(5, 5))
        np.testing.assert_allclose(dropout.forward(x), x)


class TestSqueezeExcite:
    def test_output_shape(self, rng):
        se = SqueezeExcite(8, 2, rng=0)
        assert se.forward(rng.normal(size=(2, 8, 4, 4))).shape == (2, 8, 4, 4)

    def test_scale_bounded(self, rng):
        se = SqueezeExcite(4, 2, rng=0)
        x = np.abs(rng.normal(size=(2, 4, 3, 3)))
        out = se.forward(x)
        assert (out <= x + 1e-12).all() and (out >= 0).all()

    def test_input_gradient(self, rng):
        se = SqueezeExcite(3, 2, rng=1)
        numeric_input_gradient(se, rng.normal(size=(2, 3, 4, 4)), rng=rng, samples=30)

    def test_invalid_channels(self):
        with pytest.raises(ValueError):
            SqueezeExcite(0, 2)

    def test_wrong_input_channels_raises(self, rng):
        se = SqueezeExcite(4, 2, rng=0)
        with pytest.raises(ValueError):
            se.forward(rng.normal(size=(1, 3, 4, 4)))


class TestModuleContainer:
    def test_sequential_forward_backward_order(self, rng):
        model = nn.Sequential(nn.Linear(4, 8, rng=0), nn.ReLU(), nn.Linear(8, 2, rng=1))
        x = rng.normal(size=(3, 4))
        out = model.forward(x)
        assert out.shape == (3, 2)
        grad = model.backward(np.ones_like(out))
        assert grad.shape == x.shape

    def test_sequential_len_getitem_iter(self):
        model = nn.Sequential(nn.ReLU(), nn.ReLU6())
        assert len(model) == 2
        assert isinstance(model[1], nn.ReLU6)
        assert [type(m).__name__ for m in model] == ["ReLU", "ReLU6"]

    def test_sequential_append(self):
        model = nn.Sequential(nn.ReLU())
        model.append(nn.ReLU6())
        assert len(model) == 2

    def test_named_parameters_qualified_names(self):
        model = nn.Sequential(nn.Linear(2, 2, rng=0))
        names = [name for name, _ in model.named_parameters()]
        assert "layer0.weight" in names and "layer0.bias" in names

    def test_num_parameters_counts(self):
        model = nn.Linear(3, 4, rng=0)
        assert model.num_parameters() == 3 * 4 + 4

    def test_freeze_and_unfreeze(self):
        model = nn.Linear(3, 4, rng=0)
        model.freeze()
        assert model.num_parameters(trainable_only=True) == 0
        model.unfreeze()
        assert model.num_parameters(trainable_only=True) == 16

    def test_train_eval_propagates(self):
        model = nn.Sequential(nn.Sequential(nn.BatchNorm2d(2)))
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_state_dict_roundtrip(self, rng):
        source = nn.Linear(3, 3, rng=0)
        target = nn.Linear(3, 3, rng=1)
        target.load_state_dict(source.state_dict())
        np.testing.assert_allclose(source.weight.data, target.weight.data)

    def test_load_state_dict_strict_mismatch_raises(self):
        model = nn.Linear(3, 3, rng=0)
        with pytest.raises(KeyError):
            model.load_state_dict({"unknown": np.zeros(3)})

    def test_load_state_dict_shape_mismatch_raises(self):
        model = nn.Linear(3, 3, rng=0)
        state = model.state_dict()
        state["weight"] = np.zeros((2, 2))
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_forward_collect_returns_every_stage(self, rng):
        model = nn.Sequential(nn.Linear(4, 8, rng=0), nn.ReLU())
        outputs = model.forward_collect(rng.normal(size=(2, 4)))
        assert len(outputs) == 2
        assert outputs[0].shape == (2, 8)

    def test_zero_grad_clears(self, rng):
        model = nn.Linear(4, 2, rng=0)
        out = model.forward(rng.normal(size=(3, 4)))
        model.backward(np.ones_like(out))
        assert np.abs(model.weight.grad).sum() > 0
        model.zero_grad()
        assert np.abs(model.weight.grad).sum() == 0

    def test_parameter_accumulate_shape_mismatch(self):
        from repro.nn.tensor import Parameter

        param = Parameter(np.zeros((2, 2)), name="p")
        with pytest.raises(ValueError):
            param.accumulate_grad(np.zeros(3))

    def test_frozen_parameter_ignores_gradient(self):
        from repro.nn.tensor import Parameter

        param = Parameter(np.zeros((2,)), trainable=False)
        param.accumulate_grad(np.ones(2))
        np.testing.assert_allclose(param.grad, np.zeros(2))
