"""Tests for repro.store: the content-addressed artifact store, the
deterministic freezer, the daemon's /store endpoints, degradation behaviour
and the cross-host shared evaluation-cache tier."""

from __future__ import annotations

import hashlib
import json
import os
import socket
import subprocess
import sys
import tempfile

import numpy as np
import pytest

from repro.core import FaHaNaConfig, FaHaNaSearch, ProducerConfig
from repro.core.evaluator import EvaluationResult
from repro.engine import EngineConfig, EvaluationCache, SearchEngine
from repro.engine.cache import SharedCacheTier
from repro.engine.events import CACHE_ENTRY_CORRUPT, STORE_DEGRADED
from repro.engine.serde import history_to_dict
from repro.fleet.retry import RetryPolicy
from repro.hardware.constraints import DesignSpec, HardwareSpec, SoftwareSpec
from repro.nn.trainer import TrainingConfig
from repro.store import (
    KEY_PATTERN,
    LocalStore,
    RemoteStore,
    StoreError,
    TieredStore,
    UnfreezableError,
    freeze,
    freeze_fingerprint,
    object_key,
)
from repro.store.core import StoreCorruptWrite


def _closed_port_url() -> str:
    """A URL nothing listens on (bind, read the port, close)."""
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return f"http://127.0.0.1:{port}"


_FAST_RETRY = RetryPolicy(max_attempts=1, base_delay=0.0)


def _result(reward: float = 0.5) -> EvaluationResult:
    return EvaluationResult(
        latency_ms=10.0,
        storage_mb=0.1,
        num_parameters=1000,
        trained=True,
        accuracy=0.8,
        unfairness=0.3,
        group_accuracy={"light": 0.9, "dark": 0.6},
        reward=reward,
        meets_timing=True,
        meets_accuracy=True,
        train_seconds=1.0,
    )


# -- LocalStore ----------------------------------------------------------------------
class TestLocalStore:
    def test_put_get_roundtrip_and_sharded_layout(self, tmp_path):
        store = LocalStore(str(tmp_path / "store"))
        data = b"payload bytes"
        key = store.put(data)
        assert key == hashlib.sha256(data).hexdigest()
        assert KEY_PATTERN.match(key)
        assert store.get(key) == data
        # objects/ab/<62 hex> sharding, atomic final file.
        assert os.path.isfile(
            os.path.join(store.root, "objects", key[:2], key[2:])
        )
        assert store.object_relpath(key) == os.path.join(
            "objects", key[:2], key[2:]
        )

    def test_put_dedupes_by_content(self, tmp_path):
        store = LocalStore(str(tmp_path / "store"))
        assert store.put(b"same") == store.put(b"same")
        assert store.counters["put_new"] == 1
        assert store.counters["put_dup"] == 1
        assert store.stats()["objects"] == 1

    def test_invalid_key_rejected(self, tmp_path):
        store = LocalStore(str(tmp_path / "store"))
        with pytest.raises(StoreError):
            store.get("not-a-key")
        with pytest.raises(StoreError):
            store.put_object("abc", b"data")

    def test_put_object_verifies_hash(self, tmp_path):
        store = LocalStore(str(tmp_path / "store"))
        with pytest.raises(StoreCorruptWrite):
            store.put_object("0" * 64, b"mismatching bytes")
        assert store.stats()["objects"] == 0

    def test_corrupt_object_self_heals(self, tmp_path):
        corrupt_seen = []
        store = LocalStore(
            str(tmp_path / "store"),
            on_corrupt=lambda key, path: corrupt_seen.append(key),
        )
        key = store.put(b"good bytes")
        path = store.object_path(key)
        with open(path, "wb") as handle:
            handle.write(b"bit rot")
        # The read verifies sha256, deletes the liar and reports a miss...
        assert store.get(key) is None
        assert not os.path.exists(path)
        assert corrupt_seen == [key]
        assert store.counters["get_corrupt"] == 1
        # ...so a refetched copy can land cleanly.
        assert store.put(b"good bytes") == key
        assert store.get(key) == b"good bytes"

    def test_lru_eviction_respects_budget_and_pins(self, tmp_path):
        store = LocalStore(str(tmp_path / "store"), max_bytes=64)
        pinned = store.put(b"p" * 24)
        store.pin(pinned)
        first = store.put(b"a" * 24)
        second = store.put(b"b" * 24)  # 72 bytes total -> evict oldest unpinned
        assert store.get(pinned) is not None
        assert store.get(first) is None
        assert store.get(second) is not None
        assert store.counters["evictions"] == 1
        store.unpin(pinned)

    def test_refs_roundtrip_and_torn_ref_recovery(self, tmp_path):
        store = LocalStore(str(tmp_path / "store"))
        key = store.put(b"target")
        name = "f" * 64
        store.set_ref(name, key)
        assert store.get_ref(name) == key
        # A torn ref file is deleted and reported as a miss.
        ref_path = os.path.join(store.root, "refs", name[:2], name[2:])
        with open(ref_path, "w", encoding="utf-8") as handle:
            handle.write("garbage\n")
        assert store.get_ref(name) is None
        assert not os.path.exists(ref_path)

    def test_reopened_store_sees_prior_objects(self, tmp_path):
        root = str(tmp_path / "store")
        key = LocalStore(root).put(b"persisted")
        reopened = LocalStore(root)
        assert reopened.get(key) == b"persisted"
        assert reopened.stats()["objects"] == 1


# -- daemon /store endpoints ---------------------------------------------------------
@pytest.fixture(scope="module")
def store_service():
    from repro.service.daemon import RunService

    tmp = tempfile.mkdtemp(prefix="repro-store-daemon-")
    service = RunService(runs_root=os.path.join(tmp, "runs")).start()
    yield service
    service.shutdown()


class TestRemoteStore:
    def test_roundtrip_against_daemon(self, store_service):
        remote = RemoteStore(store_service.url)
        data = b"over the wire"
        key = remote.put(data)
        assert key == object_key(data)
        assert remote.get(key) == data
        assert remote.has(key)
        assert not remote.has("1" * 64)
        present = remote.has_many([key, "2" * 64])
        assert present == {key: True, "2" * 64: False}

    def test_refs_and_stats(self, store_service):
        remote = RemoteStore(store_service.url)
        key = remote.put(b"ref target")
        name = "e" * 64
        remote.set_ref(name, key)
        assert remote.get_ref(name) == key
        assert remote.get_ref("d" * 64) is None
        stats = remote.stats()
        assert stats["objects"] >= 1
        assert set(stats["puts"]) == {"new", "dup"}

    def test_bad_keys_are_structured_400s(self, store_service):
        remote = RemoteStore(store_service.url)
        with pytest.raises(StoreError):
            remote.put_object("nothex", b"x")
        with pytest.raises(StoreError):
            remote.put_object("3" * 64, b"hash mismatch")

    def test_miss_is_none_not_an_error(self, store_service):
        remote = RemoteStore(store_service.url)
        assert remote.get("4" * 64) is None


# -- degradation ---------------------------------------------------------------------
class TestTieredStoreDegradation:
    def test_unreachable_remote_degrades_once_and_stays_local(self, tmp_path):
        events = []
        tiered = TieredStore(
            local=LocalStore(str(tmp_path / "local")),
            remote=RemoteStore(_closed_port_url(), timeout=0.5, retry=_FAST_RETRY),
            on_degraded=events.append,
        )
        key = tiered.put(b"survives locally")  # remote put fails -> degrade
        assert tiered.degraded
        assert tiered.get(key) == b"survives locally"
        # Later operations never touch the network again; the callback
        # fired exactly once.
        tiered.put(b"more data")
        tiered.get_ref("a" * 64)
        assert len(events) == 1
        assert events[0]["op"] == "put"
        assert "error" in events[0]

    def test_engine_run_survives_unreachable_store_url(
        self, tiny_splits, tiny_backbone
    ):
        engine = SearchEngine(
            _search(tiny_splits, tiny_backbone, episodes=2),
            EngineConfig(use_cache=True, store_url=_closed_port_url()),
        )
        kinds = []
        engine.events.subscribe(lambda e: kinds.append(e.kind))
        result = engine.run()
        # The run finished normally and announced the degradation once.
        assert len(result.history.records) == 2
        assert kinds.count(STORE_DEGRADED) == 1


# -- evaluation-cache corruption tolerance -------------------------------------------
class TestCacheCorruptionTolerance:
    def test_corrupt_disk_entry_is_dropped_and_recomputed(self, tmp_path):
        directory = str(tmp_path / "cache")
        cache = EvaluationCache(capacity=8, directory=directory)
        cache.put("feedface", _result(0.9))

        events = []
        fresh = EvaluationCache(capacity=8, directory=directory)
        fresh.bind_events(lambda kind, payload: events.append((kind, payload)))
        entry_path = os.path.join(directory, "feedface.json")
        with open(entry_path, "w", encoding="utf-8") as handle:
            handle.write('{"torn": ')
        assert fresh.get("feedface") is None  # miss, not a crash
        assert not os.path.exists(entry_path)  # broken file deleted
        assert events and events[0][0] == CACHE_ENTRY_CORRUPT
        assert events[0][1]["key"] == "feedface"
        # The recomputed result persists cleanly.
        fresh.put("feedface", _result(0.9))
        assert fresh.get("feedface").reward == 0.9


# -- the shared evaluation-cache tier ------------------------------------------------
def _search(tiny_splits, tiny_backbone, episodes=3, seed=0):
    config = FaHaNaConfig(
        episodes=episodes,
        seed=seed,
        producer=ProducerConfig(
            backbone=tiny_backbone,
            freeze=True,
            pretrain_epochs=1,
            width_multiplier=0.5,
        ),
        child_training=TrainingConfig(epochs=1, batch_size=8, seed=0),
    )
    spec = DesignSpec(
        hardware=HardwareSpec(timing_constraint_ms=1e6),
        software=SoftwareSpec(accuracy_constraint=0.0),
    )
    return FaHaNaSearch(tiny_splits.train, tiny_splits.validation, spec, config)


def _strip_provenance(history) -> dict:
    """A history payload minus wall-clock and who-computed-it provenance."""
    payload = history_to_dict(history)
    payload.pop("total_seconds", None)
    for record in payload["records"]:
        for field in ("cache_hit", "worker", "elapsed_seconds"):
            record.pop(field, None)
    return payload


class TestSharedCacheTier:
    def test_negative_lookup_suppression(self, tmp_path):
        tier = SharedCacheTier(
            TieredStore(local=LocalStore(str(tmp_path / "store")))
        )
        assert tier.fetch("ab" * 32) is None
        assert tier.fetch("ab" * 32) is None  # suppressed, no second lookup
        assert tier.misses == 1 and tier.suppressed == 1
        # Publishing lifts the suppression.
        tier.publish("ab" * 32, _result(0.4))
        fetched = tier.fetch("ab" * 32)
        assert fetched is not None and fetched.reward == 0.4

    def test_two_engines_share_one_daemon_train_exactly_once(
        self, tiny_splits, tiny_backbone, store_service
    ):
        episodes = 3
        first = SearchEngine(
            _search(tiny_splits, tiny_backbone, episodes),
            EngineConfig(use_cache=True, store_url=store_service.url),
        )
        result_a = first.run()
        assert first.evaluations_run > 0
        puts_after_first = store_service.store.stats()["puts"]["new"]
        assert puts_after_first >= 1  # the tier holds every unique result

        # A second engine (fresh caches, same daemon) replays the same
        # seeded search: every unique (fingerprint, fidelity) was already
        # trained fleet-wide, so it must train nothing...
        second = SearchEngine(
            _search(tiny_splits, tiny_backbone, episodes),
            EngineConfig(use_cache=True, store_url=store_service.url),
        )
        result_b = second.run()
        assert second.evaluations_run == 0
        assert second.cache.remote_hits > 0
        # ...and publish nothing: the daemon's new-object counter is frozen.
        assert store_service.store.stats()["puts"]["new"] == puts_after_first

        # Remote-hit reports are bit-for-bit the locally computed ones
        # (only the per-record provenance fields may differ).
        assert json.dumps(
            _strip_provenance(result_b.history), sort_keys=True
        ) == json.dumps(_strip_provenance(result_a.history), sort_keys=True)

    def test_remote_hits_round_trip_through_disk_cache(
        self, tiny_splits, tiny_backbone, store_service, tmp_path
    ):
        engine = SearchEngine(
            _search(tiny_splits, tiny_backbone, episodes=2, seed=7),
            EngineConfig(
                use_cache=True,
                store_url=store_service.url,
                cache_dir=str(tmp_path / "disk-cache"),
            ),
        )
        engine.run()
        # Everything the engine computed is on the shared tier AND in the
        # local disk cache (write-through on both layers).
        assert engine.cache.tier is not None
        assert engine.cache.tier.publishes == engine.evaluations_run
        assert len(os.listdir(str(tmp_path / "disk-cache"))) > 0


# -- freeze --------------------------------------------------------------------------
class TestFreeze:
    def test_dict_and_set_order_invariance(self):
        a = {"x": 1, "y": {2, 3, 1}, "z": [1.5, 2.5]}
        b = {"z": [1.5, 2.5], "y": {1, 3, 2}, "x": 1}
        assert freeze(a) == freeze(b)
        assert freeze_fingerprint(a) == freeze_fingerprint(b)

    def test_value_changes_change_the_fingerprint(self):
        base = {"x": 1, "arr": np.arange(4)}
        assert freeze_fingerprint(base) != freeze_fingerprint(
            {"x": 2, "arr": np.arange(4)}
        )
        assert freeze_fingerprint(base) != freeze_fingerprint(
            {"x": 1, "arr": np.arange(5)}
        )

    def test_golden_stability_across_processes(self):
        """The fingerprint is process-invariant (no id()/hash-seed leakage)."""
        program = (
            "from repro.store import freeze_fingerprint\n"
            "import numpy as np\n"
            "payload = {'b': [1, 2.5, 'three'], 'a': {'nested': {4, 5}},\n"
            "           'arr': np.arange(6, dtype=np.float64)}\n"
            "print(freeze_fingerprint(payload))\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(os.path.dirname(__file__), "..", "src")
        digests = set()
        for hash_seed in ("1", "271828"):
            env["PYTHONHASHSEED"] = hash_seed
            out = subprocess.run(
                [sys.executable, "-c", program],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            digests.add(out.stdout.strip())
        assert len(digests) == 1
        assert KEY_PATTERN.match(digests.pop())

    def test_function_identity_is_code_not_address(self):
        def make(scale):
            def score(x):
                return x * scale

            return score

        assert freeze(make(2)) == freeze(make(2))
        assert freeze(make(2)) != freeze(make(3))  # closure state differs

    def test_custom_freeze_hook(self):
        class WithHook:
            def __init__(self, big, label):
                self.big = big
                self.label = label

            def __freeze__(self):
                return {"label": self.label}

        a = WithHook(big=object(), label="same")
        b = WithHook(big=object(), label="same")
        assert freeze(a) == freeze(b)
        assert freeze(a) != freeze(WithHook(big=object(), label="other"))

    def test_freeze_exempt_attribute(self):
        class Stateful:
            FREEZE_EXEMPT = ("_scratch",)

            def __init__(self, value, scratch):
                self.value = value
                self._scratch = scratch

        assert freeze(Stateful(1, "x")) == freeze(Stateful(1, "y"))
        assert freeze(Stateful(1, "x")) != freeze(Stateful(2, "x"))

    def test_cycles_freeze_deterministically(self):
        a: dict = {"name": "a"}
        a["self"] = a
        b: dict = {"name": "a"}
        b["self"] = b
        assert freeze(a) == freeze(b)

    def test_unfreezable_reports_the_path(self, tmp_path):
        handle = open(tmp_path / "f.txt", "w")
        try:
            with pytest.raises(UnfreezableError) as info:
                freeze({"outer": [{"stream": handle}]})
            assert "outer" in str(info.value)
            assert "stream" in str(info.value)
        finally:
            handle.close()

    def test_generators_and_locks_are_unfreezable(self):
        import threading

        with pytest.raises(UnfreezableError):
            freeze((x for x in range(3)))
        with pytest.raises(UnfreezableError):
            freeze({"lock": threading.Lock()})
