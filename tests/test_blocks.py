"""Tests for the block library: specs, analytic costs and trainable modules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.blocks import (
    BLOCK_TYPES,
    BlockSpec,
    BottleneckBlock,
    ClassifierSpec,
    ConvBlock,
    MobileInvertedBlock,
    ResidualBlock,
    SkipBlock,
    StemSpec,
    build_block,
)


class TestBlockSpecValidation:
    def test_block_types_are_the_papers_four(self):
        assert set(BLOCK_TYPES) == {"MB", "DB", "RB", "CB"}

    def test_mb_requires_stride_two(self):
        with pytest.raises(ValueError):
            BlockSpec("MB", 8, 16, 8, stride=1)

    def test_db_requires_stride_one(self):
        with pytest.raises(ValueError):
            BlockSpec("DB", 8, 16, 8, stride=2)

    def test_unknown_type_raises(self):
        with pytest.raises(ValueError):
            BlockSpec("XX", 8, 16, 8)

    def test_skip_must_preserve_channels(self):
        with pytest.raises(ValueError):
            BlockSpec("SKIP", 8, 8, 16)

    def test_even_kernel_rejected(self):
        with pytest.raises(ValueError):
            BlockSpec("RB", 8, 8, 8, kernel=4)

    def test_non_positive_channels_rejected(self):
        with pytest.raises(ValueError):
            BlockSpec("CB", 0, 8, 8)

    def test_invalid_stride_rejected(self):
        with pytest.raises(ValueError):
            BlockSpec("RB", 8, 8, 8, stride=3)

    def test_se_only_on_mobile_blocks(self):
        with pytest.raises(ValueError):
            BlockSpec("RB", 8, 8, 8, se_ratio=0.25)

    def test_se_ratio_range(self):
        with pytest.raises(ValueError):
            BlockSpec("DB", 8, 8, 8, se_ratio=1.5)


class TestBlockSpecGeometry:
    def test_stride1_preserves_spatial(self):
        assert BlockSpec("DB", 8, 16, 8).output_spatial(14, 14) == (14, 14)

    def test_stride2_halves_spatial(self):
        assert BlockSpec("MB", 8, 16, 8, stride=2).output_spatial(14, 14) == (7, 7)

    def test_stride2_odd_size_rounds_up(self):
        assert BlockSpec("MB", 8, 16, 8, stride=2).output_spatial(7, 7) == (4, 4)

    def test_skip_is_identity_spatially(self):
        assert BlockSpec("SKIP", 8, 8, 8).output_spatial(9, 9) == (9, 9)

    def test_residual_flags(self):
        assert BlockSpec("DB", 8, 16, 8).has_residual
        assert not BlockSpec("DB", 8, 16, 12).has_residual
        assert BlockSpec("RB", 8, 16, 12).has_residual
        assert not BlockSpec("CB", 8, 16, 12).has_residual


class TestBlockSpecCosts:
    def test_mb_param_count_formula(self):
        spec = BlockSpec("DB", 16, 32, 24)
        expected = 16 * 32 + 2 * 32 + 9 * 32 + 2 * 32 + 32 * 24 + 2 * 24
        assert spec.param_count() == expected

    def test_rb_param_count_formula(self):
        spec = BlockSpec("RB", 16, 16, 16, kernel=3)
        expected = 9 * 16 * 16 + 2 * 16 + 9 * 16 * 16 + 2 * 16
        assert spec.param_count() == expected

    def test_rb_projection_adds_parameters(self):
        same = BlockSpec("RB", 16, 16, 16).param_count()
        projected = BlockSpec("RB", 16, 16, 32).param_count()
        assert projected > same

    def test_cb_param_count_formula(self):
        spec = BlockSpec("CB", 8, 4, 16, kernel=3)
        expected = 8 * 4 + 2 * 4 + 9 * 4 * 16 + 2 * 16
        assert spec.param_count() == expected

    def test_rbb_param_count_close_to_torch_bottleneck(self):
        spec = BlockSpec("RBB", 256, 64, 256)
        expected = 256 * 64 + 2 * 64 + 9 * 64 * 64 + 2 * 64 + 64 * 256 + 2 * 256
        assert spec.param_count() == expected

    def test_skip_has_no_cost(self):
        spec = BlockSpec("SKIP", 8, 8, 8)
        assert spec.param_count() == 0
        assert spec.op_costs(8, 8) == []

    def test_macs_scale_with_resolution(self):
        spec = BlockSpec("DB", 16, 32, 24)
        assert spec.macs(16, 16) == pytest.approx(4 * spec.macs(8, 8))

    def test_se_adds_params(self):
        base = BlockSpec("DB", 16, 32, 24).param_count()
        with_se = BlockSpec("DB", 16, 32, 24, se_ratio=0.25).param_count()
        assert with_se > base

    def test_params_independent_of_resolution(self):
        spec = BlockSpec("RB", 8, 8, 8)
        assert sum(op.params for op in spec.op_costs(8, 8)) == sum(
            op.params for op in spec.op_costs(32, 32)
        )

    def test_scaled_reduces_channels(self):
        spec = BlockSpec("DB", 16, 32, 24)
        scaled = spec.scaled(0.5)
        assert scaled.ch_in == 8 and scaled.ch_mid == 16 and scaled.ch_out == 12

    def test_scaled_never_reaches_zero(self):
        scaled = BlockSpec("DB", 2, 2, 2).scaled(0.1)
        assert min(scaled.ch_in, scaled.ch_mid, scaled.ch_out) >= 1

    def test_scaled_invalid_multiplier(self):
        with pytest.raises(ValueError):
            BlockSpec("DB", 8, 8, 8).scaled(0.0)

    def test_describe_format(self):
        assert BlockSpec("RB", 32, 256, 256, kernel=5).describe() == "RB 32,256,256,5"
        assert BlockSpec("SKIP", 8, 8, 8).describe() == "SKIP 8"

    def test_pwconv_marked_in_mobile_blocks(self):
        kinds = [op.kind for op in BlockSpec("DB", 8, 16, 8).op_costs(8, 8)]
        assert kinds.count("pwconv") == 2
        assert "dwconv" in kinds


class TestStemAndClassifier:
    def test_stem_param_count(self):
        stem = StemSpec(ch_in=3, ch_out=32, kernel=3, stride=2)
        assert stem.param_count() == 3 * 3 * 3 * 32 + 2 * 32

    def test_stem_output_spatial(self):
        assert StemSpec(stride=2).output_spatial(224, 224) == (112, 112)

    def test_classifier_param_count(self):
        clf = ClassifierSpec(ch_in=1280, num_classes=5)
        assert clf.param_count() == 1280 * 5 + 5

    def test_classifier_hidden_layer_params(self):
        clf = ClassifierSpec(ch_in=576, num_classes=5, hidden_features=1024)
        assert clf.param_count() == 576 * 1024 + 1024 + 1024 * 5 + 5


class TestBlockModules:
    def _grad_check(self, block, shape, rng, samples=25, tol=1e-5):
        x = rng.normal(size=shape)
        out = block.forward(x)
        analytic = block.backward(np.ones_like(out))
        eps = 1e-5
        for _ in range(samples):
            idx = tuple(rng.integers(0, s) for s in shape)
            original = x[idx]
            x[idx] = original + eps
            plus = block.forward(x).sum()
            x[idx] = original - eps
            minus = block.forward(x).sum()
            x[idx] = original
            assert abs((plus - minus) / (2 * eps) - analytic[idx]) < tol

    def test_factory_dispatch(self):
        assert isinstance(build_block(BlockSpec("DB", 4, 8, 4), rng=0), MobileInvertedBlock)
        assert isinstance(build_block(BlockSpec("MB", 4, 8, 6, stride=2), rng=0), MobileInvertedBlock)
        assert isinstance(build_block(BlockSpec("RB", 4, 4, 8), rng=0), ResidualBlock)
        assert isinstance(build_block(BlockSpec("RBB", 4, 2, 8), rng=0), BottleneckBlock)
        assert isinstance(build_block(BlockSpec("CB", 4, 4, 8), rng=0), ConvBlock)
        assert isinstance(build_block(BlockSpec("SKIP", 4, 4, 4)), SkipBlock)

    def test_factory_rejects_wrong_spec_type(self):
        with pytest.raises(ValueError):
            MobileInvertedBlock(BlockSpec("RB", 4, 4, 4), rng=0)
        with pytest.raises(ValueError):
            ResidualBlock(BlockSpec("CB", 4, 4, 4), rng=0)
        with pytest.raises(ValueError):
            ConvBlock(BlockSpec("DB", 4, 4, 4), rng=0)

    def test_mobile_block_output_shape(self, rng):
        block = build_block(BlockSpec("MB", 4, 8, 6, stride=2), rng=0)
        assert block.forward(rng.normal(size=(2, 4, 8, 8))).shape == (2, 6, 4, 4)

    def test_db_block_residual_path(self, rng):
        block = build_block(BlockSpec("DB", 4, 8, 4), rng=0)
        assert block.use_residual
        assert block.forward(rng.normal(size=(2, 4, 6, 6))).shape == (2, 4, 6, 6)

    def test_residual_block_projection_created_when_needed(self):
        with_proj = ResidualBlock(BlockSpec("RB", 4, 4, 8), rng=0)
        without_proj = ResidualBlock(BlockSpec("RB", 4, 4, 4), rng=0)
        assert with_proj.needs_projection
        assert not without_proj.needs_projection

    def test_skip_block_is_identity(self, rng):
        block = SkipBlock(BlockSpec("SKIP", 4, 4, 4))
        x = rng.normal(size=(2, 4, 5, 5))
        np.testing.assert_allclose(block.forward(x), x)
        np.testing.assert_allclose(block.backward(x), x)

    def test_block_param_counts_match_spec(self):
        for spec in (
            BlockSpec("DB", 8, 16, 8),
            BlockSpec("MB", 8, 16, 12, stride=2),
            BlockSpec("RB", 8, 8, 16),
            BlockSpec("RBB", 8, 4, 16),
            BlockSpec("CB", 8, 4, 16),
        ):
            module = build_block(spec, rng=0)
            assert module.num_parameters() == spec.param_count(), spec.block_type

    def test_mobile_block_gradients(self, rng):
        self._grad_check(build_block(BlockSpec("DB", 4, 8, 4), rng=1), (2, 4, 6, 6), rng)

    def test_residual_block_gradients(self, rng):
        self._grad_check(build_block(BlockSpec("RB", 4, 6, 8, stride=2), rng=1), (2, 4, 6, 6), rng)

    def test_bottleneck_block_gradients(self, rng):
        self._grad_check(build_block(BlockSpec("RBB", 4, 2, 8), rng=1), (2, 4, 6, 6), rng)

    def test_conv_block_gradients(self, rng):
        self._grad_check(build_block(BlockSpec("CB", 4, 4, 8), rng=1), (2, 4, 6, 6), rng)

    def test_se_block_forward_backward(self, rng):
        block = build_block(BlockSpec("DB", 4, 8, 4, se_ratio=0.25), rng=1)
        x = rng.normal(size=(2, 4, 6, 6))
        out = block.forward(x)
        grad = block.backward(np.ones_like(out))
        assert grad.shape == x.shape
