"""Tests for the FaHaNa core components: search space, reward, controller, policy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.blocks.spec import BlockSpec
from repro.core import (
    BlockDecision,
    LSTMController,
    PolicyGradientConfig,
    PolicyGradientTrainer,
    RewardConfig,
    SearchPosition,
    SearchSpace,
    compute_reward,
)
from repro.core.reward import INVALID_REWARD, reward_is_valid


def make_positions(num=3):
    positions = []
    resolution = 112
    for index in range(num):
        stride = 2 if index % 2 == 0 else 1
        positions.append(SearchPosition(index=index, stride=stride, input_resolution=resolution))
        if stride == 2:
            resolution //= 2
    return positions


class TestSearchSpace:
    def test_stride2_types_exclude_skip(self):
        space = SearchSpace()
        assert "SKIP" not in space.type_choices(2)
        assert "SKIP" in space.type_choices(1)

    def test_decision_sizes(self):
        space = SearchSpace()
        sizes = space.decision_sizes(1)
        assert sizes == (4, 2, 5, 6)

    def test_position_cardinality(self):
        space = SearchSpace()
        assert space.position_cardinality(1) == 4 * 2 * 5 * 6
        assert space.position_cardinality(2) == 3 * 2 * 5 * 6

    def test_space_size_product(self):
        space = SearchSpace()
        positions = make_positions(3)
        expected = (
            space.position_cardinality(2) ** 2 * space.position_cardinality(1)
        )
        assert space.space_size(positions) == expected

    def test_freezing_reduces_space_size_exponentially(self):
        space = SearchSpace()
        assert space.space_size(make_positions(10)) / space.space_size(make_positions(4)) > 1e12

    def test_decode_roundtrip(self):
        space = SearchSpace()
        decision = space.decode(1, [1, 0, 2, 3])
        assert decision.block_type == space.stride1_types[1]
        assert decision.kernel == space.kernel_choices[0]
        assert decision.ch_mid == space.ch_mid_choices[2]
        assert decision.ch_out == space.ch_out_choices[3]

    def test_decode_out_of_range_raises(self):
        space = SearchSpace()
        with pytest.raises(ValueError):
            space.decode(1, [99, 0, 0, 0])
        with pytest.raises(ValueError):
            space.decode(1, [0, 0, 0])

    def test_to_block_spec_respects_stride(self):
        space = SearchSpace()
        decision = BlockDecision("MB", 3, 64, 96)
        spec2 = space.to_block_spec(decision, ch_in=32, stride=2)
        assert spec2.block_type == "MB" and spec2.stride == 2
        spec1 = space.to_block_spec(BlockDecision("DB", 3, 64, 96), ch_in=32, stride=1)
        assert spec1.block_type == "DB" and spec1.stride == 1

    def test_to_block_spec_skip(self):
        space = SearchSpace()
        spec = space.to_block_spec(BlockDecision("SKIP", 3, 64, 96), ch_in=32, stride=1)
        assert spec.block_type == "SKIP" and spec.ch_in == spec.ch_out == 32

    def test_decisions_to_specs_chains_channels(self):
        space = SearchSpace()
        positions = make_positions(3)
        decisions = [
            BlockDecision("MB", 3, 64, 96),
            BlockDecision("SKIP", 3, 64, 96),
            BlockDecision("RB", 5, 128, 64),
        ]
        specs = space.decisions_to_specs(positions, decisions, ch_in=32)
        assert specs[0].ch_in == 32 and specs[0].ch_out == 96
        assert specs[1].block_type == "SKIP" and specs[1].ch_in == 96
        assert specs[2].ch_in == 96 and specs[2].ch_out == 64

    def test_decisions_to_specs_length_mismatch(self):
        space = SearchSpace()
        with pytest.raises(ValueError):
            space.decisions_to_specs(make_positions(2), [BlockDecision("RB", 3, 64, 64)], 32)

    def test_invalid_space_configuration(self):
        with pytest.raises(ValueError):
            SearchSpace(stride2_types=("MB", "SKIP"))
        with pytest.raises(ValueError):
            SearchSpace(kernel_choices=())

    def test_search_position_validation(self):
        with pytest.raises(ValueError):
            SearchPosition(index=0, stride=3, input_resolution=8)
        with pytest.raises(ValueError):
            SearchPosition(index=0, stride=1, input_resolution=0)


class TestReward:
    def test_reward_formula(self):
        config = RewardConfig(alpha=1.0, beta=1.0, timing_constraint_ms=1000)
        assert compute_reward(0.8, 0.2, 500, config) == pytest.approx(0.6)

    def test_alpha_beta_weighting(self):
        config = RewardConfig(alpha=2.0, beta=0.5, timing_constraint_ms=1000)
        assert compute_reward(0.8, 0.2, 500, config) == pytest.approx(1.5)

    def test_latency_violation_gives_minus_one(self):
        config = RewardConfig(timing_constraint_ms=1000)
        assert compute_reward(0.9, 0.0, 1500, config) == INVALID_REWARD

    def test_accuracy_violation_gives_minus_one(self):
        config = RewardConfig(accuracy_constraint=0.81, timing_constraint_ms=1e9)
        assert compute_reward(0.78, 0.1, 100, config) == INVALID_REWARD

    def test_boundary_values_are_valid(self):
        config = RewardConfig(accuracy_constraint=0.8, timing_constraint_ms=1000)
        assert reward_is_valid(compute_reward(0.8, 0.0, 1000, config))

    def test_invalid_inputs_raise(self):
        config = RewardConfig()
        with pytest.raises(ValueError):
            compute_reward(1.5, 0.0, 10, config)
        with pytest.raises(ValueError):
            compute_reward(0.5, -0.1, 10, config)
        with pytest.raises(ValueError):
            compute_reward(0.5, 0.1, -10, config)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            RewardConfig(alpha=-1)
        with pytest.raises(ValueError):
            RewardConfig(timing_constraint_ms=0)
        with pytest.raises(ValueError):
            RewardConfig(accuracy_constraint=2.0)

    def test_reward_is_valid_helper(self):
        assert not reward_is_valid(INVALID_REWARD)
        assert reward_is_valid(0.0)


class TestController:
    def _controller(self, num_positions=3, hidden=16, seed=0):
        space = SearchSpace()
        return space, LSTMController(space, make_positions(num_positions), hidden, rng=seed)

    def test_sample_structure(self):
        space, controller = self._controller()
        sample = controller.sample(rng=0)
        assert len(sample.decisions) == 3
        assert len(sample.decision_indices) == 3
        assert all(len(step) == 4 for step in sample.decision_indices)
        assert sample.num_steps == 12

    def test_sample_log_prob_negative(self):
        _, controller = self._controller()
        assert controller.sample(rng=0).log_prob < 0

    def test_sample_is_deterministic_given_rng(self):
        _, controller = self._controller()
        a = controller.sample(rng=42)
        b = controller.sample(rng=42)
        assert a.decision_indices == b.decision_indices

    def test_greedy_sampling_picks_argmax(self):
        _, controller = self._controller()
        greedy1 = controller.sample(rng=0, greedy=True)
        greedy2 = controller.sample(rng=99, greedy=True)
        assert greedy1.decision_indices == greedy2.decision_indices

    def test_decisions_valid_for_stride(self):
        space, controller = self._controller(num_positions=4)
        sample = controller.sample(rng=1)
        for position, decision in zip(controller.positions, sample.decisions):
            assert decision.block_type in space.type_choices(position.stride)

    def test_log_prob_of_matches_sample(self):
        _, controller = self._controller()
        sample = controller.sample(rng=3)
        assert controller.log_prob_of(sample) == pytest.approx(sample.log_prob, abs=1e-9)

    def test_parameters_exposed(self):
        _, controller = self._controller()
        params = controller.parameters()
        assert len(params) == 3 + 2 * 5  # embedding, lstm W/b, 5 heads x (W, b)

    def test_invalid_construction(self):
        space = SearchSpace()
        with pytest.raises(ValueError):
            LSTMController(space, [], hidden_size=8)
        with pytest.raises(ValueError):
            LSTMController(space, make_positions(1), hidden_size=0)

    def test_temperature_must_be_positive(self):
        _, controller = self._controller()
        with pytest.raises(ValueError):
            controller.sample(temperature=0.0)

    def test_log_prob_gradient_matches_numeric(self):
        """BPTT gradient of sum_t log pi(a_t) checked against finite differences."""
        _, controller = self._controller(num_positions=2, hidden=8, seed=1)
        sample = controller.sample(rng=0)
        coeffs = [1.0] * sample.num_steps
        controller.zero_grad()
        controller.accumulate_log_prob_gradient(sample, coeffs)
        eps = 1e-6
        for param in (controller.lstm_weight, controller.embedding):
            flat_index = 3
            idx = np.unravel_index(flat_index, param.data.shape)
            original = param.data[idx]
            param.data[idx] = original + eps
            plus = controller.log_prob_of(sample)
            param.data[idx] = original - eps
            minus = controller.log_prob_of(sample)
            param.data[idx] = original
            numeric = (plus - minus) / (2 * eps)
            assert abs(numeric - param.grad[idx]) < 1e-4, param.name

    def test_coefficient_length_mismatch_raises(self):
        _, controller = self._controller()
        sample = controller.sample(rng=0)
        with pytest.raises(ValueError):
            controller.accumulate_log_prob_gradient(sample, [1.0])


class TestPolicyGradient:
    def test_baseline_ema(self):
        _, controller = TestController()._controller()
        trainer = PolicyGradientTrainer(
            controller, PolicyGradientConfig(baseline_decay=0.5)
        )
        trainer.update_baseline(1.0)
        trainer.update_baseline(0.0)
        assert trainer.baseline == pytest.approx(0.5)

    def test_observe_applies_update_every_batch(self):
        _, controller = TestController()._controller(hidden=8)
        trainer = PolicyGradientTrainer(
            controller, PolicyGradientConfig(batch_episodes=1, learning_rate=0.05)
        )
        before = controller.lstm_weight.data.copy()
        sample = controller.sample(rng=0)
        trainer.observe(sample, reward=1.0)
        assert not np.allclose(before, controller.lstm_weight.data)

    def test_policy_gradient_increases_probability_of_rewarded_action(self):
        """REINFORCE sanity: repeatedly rewarding one sampled architecture
        should increase its log-probability under the policy."""
        _, controller = TestController()._controller(num_positions=2, hidden=8, seed=0)
        trainer = PolicyGradientTrainer(
            controller,
            PolicyGradientConfig(learning_rate=0.05, baseline_decay=0.0, batch_episodes=1),
        )
        target = controller.sample(rng=1)
        initial = controller.log_prob_of(target)
        for _ in range(10):
            trainer.observe(target, reward=1.0)
        assert controller.log_prob_of(target) > initial

    def test_step_coefficients_discounting(self):
        _, controller = TestController()._controller(num_positions=1)
        trainer = PolicyGradientTrainer(controller, PolicyGradientConfig(discount=0.5))
        sample = controller.sample(rng=0)
        coeffs = trainer._step_coefficients(sample, advantage=1.0)
        assert coeffs[-1] == pytest.approx(1.0)
        assert coeffs[0] == pytest.approx(0.5 ** (sample.num_steps - 1))

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            PolicyGradientConfig(learning_rate=0)
        with pytest.raises(ValueError):
            PolicyGradientConfig(discount=0)
        with pytest.raises(ValueError):
            PolicyGradientConfig(baseline_decay=1.0)
        with pytest.raises(ValueError):
            PolicyGradientConfig(batch_episodes=0)
