"""Tests for :mod:`repro.analysis` -- the ``repro-lint`` framework.

Each rule is exercised against positive (``bad``) and negative (``good``)
fixture trees under ``tests/fixtures/lint/``; the trees embed a ``repro/``
directory so the walker assigns them real package names and the
package-scoped rules (obs layering, dtype policy, concurrency entry
points) behave exactly as they do on ``src/``.  The suite also covers the
framework itself: suppressions, baseline semantics, import-graph
construction and the CLI, plus a self-lint smoke test over the real tree.
"""

import json
import os
from pathlib import Path

import pytest

from repro.analysis import (
    Baseline,
    Finding,
    RuleDriver,
    apply_suppressions,
    build_import_graph,
    default_rules,
    load_modules,
    main,
    module_name_for,
    rule_catalog,
)
from repro.analysis.findings import ERROR, WARNING
from repro.analysis.suppressions import SuppressionIndex
from repro.analysis.visitor import Rule

FIXTURES = Path(__file__).parent / "fixtures" / "lint"
SRC = Path(__file__).resolve().parents[1] / "src"

ALL_RULE_IDS = (
    "DET001",
    "KEY001",
    "KEY002",
    "SER001",
    "OBS001",
    "THR001",
    "DTY001",
)


def lint_tree(root, only=None):
    """Run the (sub)pack over a fixture tree; returns non-suppressed findings."""
    errors = []
    modules = load_modules([str(root)], errors=errors)
    assert not errors, [finding.render() for finding in errors]
    findings = RuleDriver(default_rules(only)).run(modules)
    kept, _suppressed = apply_suppressions(findings, modules)
    return kept


def by_file(findings):
    grouped = {}
    for finding in findings:
        grouped.setdefault(os.path.basename(finding.path), []).append(finding)
    return grouped


# ---------------------------------------------------------------------------
# Rule fixtures: every rule fires on its bad fixture, stays quiet on good.
# ---------------------------------------------------------------------------


class TestDeterminismRule:
    def test_bad_fixture_flags_rng_and_wallclock(self):
        grouped = by_file(lint_tree(FIXTURES / "det001", only=["DET001"]))
        messages = [f.message for f in grouped["bad.py"]]
        assert len(messages) == 5
        assert any("numpy.random.seed" in m for m in messages)
        assert any("numpy.random.rand" in m for m in messages)
        assert any("random.choice" in m for m in messages)
        assert any("time.time" in m for m in messages)
        assert any("datetime.datetime.now" in m for m in messages)
        assert all(f.severity == ERROR for f in grouped["bad.py"])

    def test_good_fixture_is_clean(self):
        grouped = by_file(lint_tree(FIXTURES / "det001", only=["DET001"]))
        assert "good.py" not in grouped

    def test_obs_module_may_read_wallclock(self):
        grouped = by_file(lint_tree(FIXTURES / "det001", only=["DET001"]))
        assert "clock.py" not in grouped


class TestCacheKeyHygieneRule:
    def test_bad_fixture_flags_leaked_field_and_stale_exemption(self):
        grouped = by_file(lint_tree(FIXTURES / "key001", only=["KEY001"]))
        messages = [f.message for f in grouped["bad.py"]]
        assert len(messages) == 2
        assert any("LeakySpec" in m and "label" in m for m in messages)
        assert any("StaleExempt" in m and "gone" in m for m in messages)

    def test_good_fixture_is_clean(self):
        # Direct reference, CACHE_KEY_EXEMPT, to_dict()/asdict() delegation
        # and a key-less dataclass must all pass.
        grouped = by_file(lint_tree(FIXTURES / "key001", only=["KEY001"]))
        assert "good.py" not in grouped


class TestFreezeExemptRule:
    def test_bad_fixture_flags_stale_entries(self):
        grouped = by_file(lint_tree(FIXTURES / "key002", only=["KEY002"]))
        messages = [f.message for f in grouped["bad.py"]]
        assert len(messages) == 2
        assert any("StaleFreezeExempt" in m and "vanished" in m for m in messages)
        assert any("RenamedAttribute" in m and "_old_name" in m for m in messages)
        # Entries that do resolve are not named in the finding.
        assert not any("_scratch" in m for m in messages)

    def test_good_fixture_is_clean(self):
        # Dataclass fields, self.<attr> assignments, method names, slots and
        # class-level assignments all count as declared attributes.
        grouped = by_file(lint_tree(FIXTURES / "key002", only=["KEY002"]))
        assert "good.py" not in grouped


class TestSerdeContractRule:
    def test_bad_fixture_flags_unpaired_serde_and_non_json_payloads(self):
        grouped = by_file(lint_tree(FIXTURES / "ser001", only=["SER001"]))
        messages = [f.message for f in grouped["bad.py"]]
        assert len(messages) == 6
        assert any("WriteOnly" in m and "from_dict" in m for m in messages)
        assert any("ReadOnly" in m and "to_dict" in m for m in messages)
        assert sum("not JSON-encodable" in m for m in messages) == 3
        assert any("payload key" in m for m in messages)

    def test_good_fixture_is_clean(self):
        grouped = by_file(lint_tree(FIXTURES / "ser001", only=["SER001"]))
        assert "good.py" not in grouped


class TestObsLayeringRule:
    def test_bad_fixtures_flag_all_four_checks(self):
        grouped = by_file(lint_tree(FIXTURES / "obs001", only=["OBS001"]))
        obs_messages = [f.message for f in grouped["bad.py"]]
        assert len(obs_messages) == 2
        assert any("default_rng" in m for m in obs_messages)
        assert any("repro.utils.fingerprint" in m for m in obs_messages)
        chain_messages = [f.message for f in grouped["fingerprint.py"]]
        assert len(chain_messages) == 1
        assert "repro.utils.fingerprint -> repro.obs.metrics" in chain_messages[0]
        key_messages = [f.message for f in grouped["keys_bad.py"]]
        assert len(key_messages) == 1
        assert "cache_key" in key_messages[0] and "counter" in key_messages[0]

    def test_good_fixtures_are_clean(self):
        grouped = by_file(lint_tree(FIXTURES / "obs001", only=["OBS001"]))
        assert "good.py" not in grouped  # obs may observe, instrument, stamp
        assert "keys_good.py" not in grouped  # instrumented, obs-free cache_key
        assert "metrics.py" not in grouped


class TestConcurrencyRule:
    def test_bad_fixture_flags_unlocked_mutations_on_worker_path(self):
        grouped = by_file(lint_tree(FIXTURES / "thr001", only=["THR001"]))
        messages = [f.message for f in grouped["shared_bad.py"]]
        assert len(messages) == 2
        assert all("record()" in m for m in messages)
        assert any("'_RESULTS'" in m for m in messages)
        assert any("'_TOTAL'" in m for m in messages)
        assert all(f.severity == WARNING for f in grouped["shared_bad.py"])

    def test_locked_mutation_is_clean(self):
        grouped = by_file(lint_tree(FIXTURES / "thr001", only=["THR001"]))
        assert "shared_good.py" not in grouped

    def test_unreachable_module_is_clean(self):
        grouped = by_file(lint_tree(FIXTURES / "thr001", only=["THR001"]))
        assert "offpath.py" not in grouped


class TestDtypePolicyRule:
    def test_bad_fixture_flags_bare_dtype_literals(self):
        grouped = by_file(lint_tree(FIXTURES / "dty001", only=["DTY001"]))
        messages = [f.message for f in grouped["bad.py"]]
        assert len(messages) == 2
        assert any("np.float32" in m for m in messages)
        assert any("np.float64" in m for m in messages)

    def test_comparisons_policy_module_and_non_nn_code_are_clean(self):
        grouped = by_file(lint_tree(FIXTURES / "dty001", only=["DTY001"]))
        assert "good.py" not in grouped  # dtype *check* picks a fast path
        assert "dtype.py" not in grouped  # the policy module defines dtypes
        assert "elsewhere.py" not in grouped  # outside repro.nn


# ---------------------------------------------------------------------------
# Framework: walker, import graph, suppressions, baseline, driver.
# ---------------------------------------------------------------------------


class TestModuleNames:
    def test_anchored_at_repro(self):
        assert module_name_for("src/repro/obs/top.py") == "repro.obs.top"
        assert module_name_for("src/repro/__init__.py") == "repro"

    def test_anchored_at_last_repro_segment(self):
        path = os.path.join("tmp", "repro", "x", "repro", "obs", "m.py")
        assert module_name_for(path) == "repro.obs.m"

    def test_no_anchor_falls_back_to_stem(self):
        assert module_name_for("scripts/tool.py") == "tool"


class TestImportGraph:
    @pytest.fixture()
    def graph(self):
        modules = load_modules([str(FIXTURES / "obs001")])
        return build_import_graph(modules)

    def test_internal_edges(self, graph):
        assert "repro.utils.fingerprint" in graph.imports_of("repro.obs.bad")
        assert "repro.obs.metrics" in graph.imports_of("repro.utils.fingerprint")

    def test_external_imports_tracked_by_top_level_name(self, graph):
        assert graph.imports_external("repro.obs.bad", "numpy")
        assert not graph.imports_external("repro.obs.metrics", "numpy")

    def test_reachability_is_transitive(self, graph):
        reachable = graph.reachable_from("repro.utils.fingerprint")
        assert "repro.obs.metrics" in reachable
        # No edge back out of the stub metrics module.
        assert graph.reachable_from("repro.obs.metrics") == {"repro.obs.metrics"}

    def test_import_chain_is_shortest_path(self, graph):
        chain = graph.import_chain("repro.utils.fingerprint", "repro.obs.metrics")
        assert chain == ["repro.utils.fingerprint", "repro.obs.metrics"]
        assert graph.import_chain("repro.obs.metrics", "repro.obs.bad") == []

    def test_from_import_of_submodules_resolves_each_target(self):
        modules = load_modules([str(FIXTURES / "thr001")])
        graph = build_import_graph(modules)
        assert graph.imports_of("repro.engine.workers") == {
            "repro.engine.shared_bad",
            "repro.engine.shared_good",
        }


class TestSuppressions:
    def test_line_directive_with_justification(self):
        index = SuppressionIndex(
            ["x = 1", "y = bad()  # repro-lint: disable=DET001 -- fixture"]
        )
        assert index.is_suppressed("DET001", 2)
        assert not index.is_suppressed("DET001", 1)
        assert not index.is_suppressed("KEY001", 2)

    def test_multi_rule_and_all(self):
        index = SuppressionIndex(
            ["a()  # repro-lint: disable=DET001, KEY001", "b()  # repro-lint: disable=all"]
        )
        assert index.is_suppressed("DET001", 1)
        assert index.is_suppressed("KEY001", 1)
        assert not index.is_suppressed("SER001", 1)
        assert index.is_suppressed("SER001", 2)

    def test_file_wide_directive(self):
        index = SuppressionIndex(
            ["# repro-lint: disable-file=THR001 -- whole module is driver-only", "x()"]
        )
        assert index.is_suppressed("THR001", 1)
        assert index.is_suppressed("THR001", 2)
        assert not index.is_suppressed("DET001", 2)

    def test_driver_integration(self, tmp_path):
        target = tmp_path / "repro" / "engine" / "suppressed.py"
        target.parent.mkdir(parents=True)
        target.write_text(
            "import numpy as np\n\n\n"
            "def draw():\n"
            "    return np.random.rand()  # repro-lint: disable=DET001 -- fixture\n"
        )
        modules = load_modules([str(tmp_path)])
        findings = RuleDriver(default_rules(["DET001"])).run(modules)
        kept, suppressed = apply_suppressions(findings, modules)
        assert kept == []
        assert len(suppressed) == 1
        assert suppressed[0].rule_id == "DET001"


class TestBaseline:
    @staticmethod
    def finding(message="boom", path="src/repro/x.py"):
        return Finding(
            rule_id="DET001",
            severity=ERROR,
            path=path,
            line=3,
            col=0,
            message=message,
        )

    def test_roundtrip_and_line_free_matching(self, tmp_path):
        path = tmp_path / "baseline.json"
        Baseline.from_findings([self.finding()]).save(str(path))
        loaded = Baseline.load(str(path))
        moved = Finding(
            rule_id="DET001",
            severity=ERROR,
            path="src/repro/x.py",
            line=99,  # unrelated edits moved the finding
            col=4,
            message="boom",
        )
        new, baselined, stale = loaded.split([moved])
        assert new == [] and baselined == [moved] and stale == []

    def test_new_and_stale_entries(self):
        baseline = Baseline.from_findings([self.finding("gone")])
        new, baselined, stale = baseline.split([self.finding("fresh")])
        assert [f.message for f in new] == ["fresh"]
        assert baselined == []
        assert stale == [("DET001", "src/repro/x.py", "gone")]

    def test_rewrite_keeps_prior_justifications(self):
        previous = Baseline({self.finding().baseline_key: "audited in PR 7"})
        rebuilt = Baseline.from_findings([self.finding()], previous=previous)
        assert rebuilt.entries[self.finding().baseline_key] == "audited in PR 7"

    def test_rejects_non_baseline_documents(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text('{"not": "a baseline"}')
        with pytest.raises(ValueError):
            Baseline.load(str(path))

    def test_rejects_unknown_versions(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text('{"version": 99, "findings": []}')
        with pytest.raises(ValueError):
            Baseline.load(str(path))


class TestDriver:
    def test_duplicate_rule_ids_rejected(self):
        class A(Rule):
            rule_id = "DUP001"

        with pytest.raises(ValueError):
            RuleDriver([A(), A()])

    def test_invalid_severity_rejected(self):
        with pytest.raises(ValueError):
            Finding(
                rule_id="X", severity="fatal", path="p", line=1, col=0, message="m"
            )

    def test_unknown_rule_id_rejected(self):
        with pytest.raises(ValueError):
            default_rules(["NOPE001"])

    def test_catalog_covers_the_full_pack(self):
        assert tuple(sorted(rule_catalog())) == tuple(sorted(ALL_RULE_IDS))


# ---------------------------------------------------------------------------
# CLI.
# ---------------------------------------------------------------------------


class TestCli:
    def test_findings_exit_one_with_json_report(self, capsys):
        rc = main(
            [str(FIXTURES / "dty001"), "--no-baseline", "--format", "json"]
        )
        assert rc == 1
        document = json.loads(capsys.readouterr().out)
        assert document["summary"]["findings"] == 2
        assert document["summary"]["warnings"] == 2
        assert {row["rule"] for row in document["findings"]} == {"DTY001"}
        assert all(row["status"] == "new" for row in document["findings"])

    def test_clean_tree_exits_zero(self, capsys, tmp_path):
        target = tmp_path / "repro" / "clean.py"
        target.parent.mkdir(parents=True)
        target.write_text("VALUE = 1\n")
        assert main([str(tmp_path), "--no-baseline"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_rules_subset(self, capsys):
        rc = main(
            [
                str(FIXTURES / "det001"),
                "--no-baseline",
                "--format",
                "json",
                "--rules",
                "KEY001,SER001",
            ]
        )
        assert rc == 0  # the det001 tree only violates DET001
        document = json.loads(capsys.readouterr().out)
        assert document["summary"]["findings"] == 0

    def test_write_baseline_then_clean_then_stale(self, capsys, tmp_path):
        baseline = tmp_path / ".repro-lint-baseline.json"
        tree = str(FIXTURES / "dty001")
        assert main([tree, "--write-baseline", "--baseline", str(baseline)]) == 0
        capsys.readouterr()

        # Grandfathered findings no longer fail the build...
        rc = main([tree, "--baseline", str(baseline), "--format", "json"])
        out = json.loads(capsys.readouterr().out.split("\nrepro-lint:")[0])
        assert rc == 0
        assert out["summary"]["baselined"] == 2
        assert {row["status"] for row in out["findings"]} == {"baselined"}

        # ...but entries matching nothing (the debt was paid) fail as stale.
        rc = main(
            [str(FIXTURES / "key001"), "--baseline", str(baseline)]
        )
        captured = capsys.readouterr()
        assert rc == 1
        assert "stale baseline entry" in captured.err

    def test_output_file_keeps_terminal_summary(self, capsys, tmp_path):
        report = tmp_path / "lint-report.json"
        rc = main(
            [
                str(FIXTURES / "dty001"),
                "--no-baseline",
                "--format",
                "json",
                "--output",
                str(report),
            ]
        )
        assert rc == 1
        document = json.loads(report.read_text())
        assert document["summary"]["findings"] == 2
        assert "repro-lint: 2 finding(s)" in capsys.readouterr().out

    def test_github_format_emits_workflow_commands(self, capsys):
        rc = main(
            [str(FIXTURES / "dty001"), "--no-baseline", "--format", "github"]
        )
        assert rc == 1
        out = capsys.readouterr().out
        assert "::warning file=" in out
        assert "title=DTY001" in out

    def test_list_rules_covers_the_pack(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ALL_RULE_IDS:
            assert rule_id in out

    def test_unknown_rule_is_a_usage_error(self, capsys):
        assert main(["--rules", "NOPE001"]) == 2
        assert "NOPE001" in capsys.readouterr().err

    def test_missing_path_is_a_usage_error(self, capsys, tmp_path):
        assert main([str(tmp_path / "does-not-exist")]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_syntax_error_becomes_lint000(self, capsys, tmp_path):
        target = tmp_path / "repro" / "broken.py"
        target.parent.mkdir(parents=True)
        target.write_text("def broken(:\n")
        rc = main([str(tmp_path), "--no-baseline", "--format", "json"])
        assert rc == 1
        document = json.loads(capsys.readouterr().out)
        assert [row["rule"] for row in document["findings"]] == ["LINT000"]


# ---------------------------------------------------------------------------
# Self-lint: the real pack over the real tree must ship clean.
# ---------------------------------------------------------------------------


class TestSelfLint:
    def test_src_tree_is_clean(self, capsys):
        rc = main([str(SRC), "--no-baseline", "--format", "json"])
        document = json.loads(capsys.readouterr().out)
        assert rc == 0, document["findings"]
        assert document["summary"]["findings"] == 0
        # The first-run cleanup audited and suppressed real sites; the
        # directives must stay visible in the report rather than vanish.
        assert document["summary"]["suppressed"] > 0

    def test_checked_in_baseline_is_empty(self):
        baseline = Baseline.load(
            str(Path(__file__).resolve().parents[1] / ".repro-lint-baseline.json")
        )
        assert baseline.entries == {}
