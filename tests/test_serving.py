"""Tests for the serving layer: zoo promotion, micro-batching, daemon endpoints.

The promotion contract under test is the strong one from the module docs:
promoting the same finished run twice writes **byte-identical** zoo entries,
and a served prediction bitwise-matches a direct ``Trainer.predict`` on the
promoted model -- the micro-batcher changes throughput, never results.
"""

from __future__ import annotations

import hashlib
import json
import os
import socket
import threading
import time
import tracemalloc
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.api import DatasetSpec, DesignSpecConfig, RunSpec, SearchParams
from repro.engine.cli import main as cli_main
from repro.nn.layers.conv import Conv2d, DepthwiseConv2d
from repro.nn.trainer import Trainer, TrainingConfig
from repro.obs import metrics as obs_metrics
from repro.service import RunClient
from repro.service.errors import RunNotFound, RunNotReady
from repro.serving import MicroBatcher, ModelNotFound, ModelServer, QueueFull
from repro.serving.registry import ZooRegistry, latency_class


def _tiny_spec(episodes: int = 2) -> RunSpec:
    """The service suite's sub-second spec (10x10 images, 2 episodes)."""
    return RunSpec(
        strategy="fahana",
        dataset=DatasetSpec(
            image_size=10,
            samples_per_class=8,
            minority_fraction=0.5,
            seed=123,
            split_seed=0,
        ),
        design=DesignSpecConfig(timing_constraint_ms=1e6),
        search=SearchParams(
            episodes=episodes,
            child_epochs=1,
            child_batch_size=8,
            pretrain_epochs=0,
            max_searchable=2,
            width_multiplier=0.25,
            seed=0,
        ),
    )


@pytest.fixture(scope="module")
def finished_run(tmp_path_factory):
    """One finished tiny run, shared by every promotion in this module."""
    runs_root = str(tmp_path_factory.mktemp("serving-runs"))
    client = RunClient.local(runs_root=runs_root, max_workers=1)
    handle = client.submit(_tiny_spec())
    handle.result(timeout=120)
    return runs_root, handle.run_id


@pytest.fixture(scope="module")
def promoted(finished_run, tmp_path_factory):
    """The shared run promoted once, as (zoo, entry)."""
    runs_root, run_id = finished_run
    zoo = ZooRegistry(str(tmp_path_factory.mktemp("zoo")))
    entry = zoo.promote_run(runs_root, run_id, name="tiny")
    return zoo, entry


def _tree_digests(root: str) -> dict:
    """sha256 of every file under ``root``, keyed by relative path."""
    digests = {}
    for dirpath, _dirnames, filenames in os.walk(root):
        for filename in filenames:
            path = os.path.join(dirpath, filename)
            with open(path, "rb") as handle:
                digests[os.path.relpath(path, root)] = hashlib.sha256(
                    handle.read()
                ).hexdigest()
    return digests


# -- promotion: the model zoo --------------------------------------------------------
class TestPromotion:
    def test_promote_twice_is_byte_identical(self, finished_run, tmp_path):
        runs_root, run_id = finished_run
        first = ZooRegistry(str(tmp_path / "zoo-a"))
        second = ZooRegistry(str(tmp_path / "zoo-b"))
        entry_a = first.promote_run(runs_root, run_id, name="twin")
        entry_b = second.promote_run(runs_root, run_id, name="twin")
        assert entry_a.version == entry_b.version
        digests_a = _tree_digests(first.root)
        assert digests_a == _tree_digests(second.root)
        assert digests_a  # the walk found the manifests and the blob

    def test_repromotion_dedupes_the_weights_blob(self, promoted, finished_run):
        zoo, entry = promoted
        runs_root, run_id = finished_run
        again = zoo.promote_run(runs_root, run_id, name="tiny")
        assert again.version == entry.version
        # The blobs dir is a content-addressed store: one object, no dup.
        assert zoo.store.keys() == [entry.manifest["weights_object"]]
        assert zoo.store.counters["put_dup"] >= 1

    def test_manifest_records_lineage_and_serving_shape(self, promoted):
        zoo, entry = promoted
        manifest = entry.manifest
        assert manifest["input_shape"] == [3, 10, 10]
        assert manifest["latency_class"] == latency_class(
            manifest["reference_latency_ms"]
        )
        assert manifest["version"].startswith("v")
        # weights_blob names the store object, relative to the zoo root.
        key = manifest["weights_object"]
        assert manifest["weights_blob"] == os.path.join(
            "_blobs", "objects", key[:2], key[2:]
        )
        assert os.path.isfile(os.path.join(zoo.root, manifest["weights_blob"]))

    def test_legacy_flat_blob_manifest_still_loads(self, promoted):
        zoo, entry = promoted
        # Rewrite the manifest to the pre-store form: flat blob path, no
        # weights_object -- and move the archive to the legacy location.
        key = entry.manifest["weights_object"]
        legacy_blob = zoo.blob_path(entry.manifest["weights_hash"])
        os.makedirs(os.path.dirname(legacy_blob), exist_ok=True)
        data = zoo.store.get(key)
        with open(legacy_blob, "wb") as handle:
            handle.write(data)
        zoo.store.delete(key)
        manifest_path = os.path.join(entry.path, "MANIFEST.json")
        with open(manifest_path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
        del manifest["weights_object"]
        manifest["weights_blob"] = os.path.join(
            "_blobs", f"{manifest['weights_hash']}.npz"
        )
        with open(manifest_path, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle)
        model, _descriptor, loaded = zoo.load_model(entry.name)
        assert loaded.version == entry.version
        assert model.num_parameters() > 0

    def test_episode_pin_selects_that_record(self, finished_run, tmp_path):
        from repro.service.registry import RunRegistry

        runs_root, run_id = finished_run
        report = RunRegistry(runs_root).load_report(run_id)
        first_episode = report["history"]["records"][0]["episode"]
        zoo = ZooRegistry(str(tmp_path / "zoo"))
        entry = zoo.promote_run(
            runs_root, run_id, name="pinned", episode=first_episode
        )
        assert entry.manifest["episode"] == first_episode
        with pytest.raises(ValueError, match="no episode 99"):
            zoo.promote_run(runs_root, run_id, name="pinned", episode=99)

    def test_unfinished_run_is_not_ready(self, tmp_path):
        from repro.service.registry import RunRegistry

        registry = RunRegistry(str(tmp_path / "runs"))
        created = registry.create(_tiny_spec())
        zoo = ZooRegistry(str(tmp_path / "zoo"))
        with pytest.raises(RunNotReady):
            zoo.promote_run(registry, created["run_id"])

    def test_unknown_run_raises_run_not_found(self, tmp_path):
        zoo = ZooRegistry(str(tmp_path / "zoo"))
        with pytest.raises(RunNotFound):
            zoo.promote_run(str(tmp_path / "runs"), "no-such-run")

    def test_reserved_name_is_rejected(self, finished_run, tmp_path):
        runs_root, run_id = finished_run
        zoo = ZooRegistry(str(tmp_path / "zoo"))
        with pytest.raises(ValueError, match="reserved"):
            zoo.promote_run(runs_root, run_id, name="promote")


class TestZooRegistry:
    def test_get_follows_the_latest_pointer(self, promoted):
        zoo, entry = promoted
        assert zoo.get("tiny").version == entry.version
        assert zoo.get("tiny", entry.version).path == entry.path

    def test_unknown_model_raises_model_not_found(self, promoted):
        zoo, entry = promoted
        with pytest.raises(ModelNotFound, match="no-such-model"):
            zoo.get("no-such-model")
        with pytest.raises(ModelNotFound, match="vdeadbeef"):
            zoo.get("tiny", "vdeadbeef")

    def test_list_entries_and_summary_rows(self, promoted):
        zoo, entry = promoted
        entries = zoo.list_entries()
        assert [(e.name, e.version) for e in entries] == [("tiny", entry.version)]
        assert "tiny" in entries[0].summary_row
        assert entry.manifest["latency_class"] in entries[0].summary_row

    def test_load_model_is_deterministic(self, promoted):
        zoo, _entry = promoted
        model_a, descriptor, _ = zoo.load_model("tiny")
        model_b, _, _ = zoo.load_model("tiny")
        rng = np.random.default_rng(7)
        batch = rng.normal(size=(4, 3, 10, 10))
        trainer = Trainer(TrainingConfig(batch_size=4))
        assert np.array_equal(
            trainer.predict(model_a, batch), trainer.predict(model_b, batch)
        )
        assert descriptor.cache_key() == _entry.manifest["descriptor_cache_key"]


# -- the micro-batcher ---------------------------------------------------------------
def _echo_first_column(batch: np.ndarray) -> np.ndarray:
    """Identify each row by its first element -- exposes any misalignment."""
    return np.asarray(batch).reshape(batch.shape[0], -1)[:, 0].copy()


class TestMicroBatcher:
    def test_deadline_flushes_a_partial_batch(self):
        sizes = []
        batcher = MicroBatcher(
            lambda b: (sizes.append(b.shape[0]), _echo_first_column(b))[1],
            max_batch_size=64,
            max_delay_ms=5.0,
            max_queue=128,
        )
        try:
            start = time.monotonic()
            result = batcher.predict(np.full((1, 4), 42.0))
            elapsed = time.monotonic() - start
            assert result.tolist() == [42.0]
            assert sizes == [1]  # the deadline fired well below max_batch_size
            assert elapsed < 2.0
            assert batcher.stats()["batches_total"] == 1
        finally:
            batcher.close()

    def test_full_batch_flushes_before_the_deadline(self):
        sizes = []
        batcher = MicroBatcher(
            lambda b: (sizes.append(b.shape[0]), _echo_first_column(b))[1],
            max_batch_size=8,
            max_delay_ms=10_000.0,  # the deadline alone would take 10s
            max_queue=64,
        )
        try:
            start = time.monotonic()
            threads = [
                threading.Thread(
                    target=batcher.predict, args=(np.full((2, 4), float(i)),)
                )
                for i in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
            assert time.monotonic() - start < 5.0  # max_batch_size fired early
            assert sum(sizes) == 8
            stats = batcher.stats()
            assert stats["requests_total"] == 4
            assert stats["largest_batch"] == 8
        finally:
            batcher.close()

    def test_bounded_queue_raises_queue_full(self):
        release = threading.Event()
        in_flight = threading.Event()

        def blocked_predict(batch):
            in_flight.set()
            release.wait(timeout=30)
            return _echo_first_column(batch)

        batcher = MicroBatcher(
            blocked_predict, max_batch_size=4, max_delay_ms=0.0, max_queue=4
        )
        threads = [
            threading.Thread(target=batcher.predict, args=(np.zeros((4, 2)),))
            for _ in range(2)
        ]
        try:
            threads[0].start()
            assert in_flight.wait(timeout=10)  # first request occupies the model
            threads[1].start()
            deadline = time.monotonic() + 10
            while batcher.stats()["queued_rows"] < 4:  # second fills the queue
                assert time.monotonic() < deadline
                time.sleep(0.005)
            with pytest.raises(QueueFull, match="full"):
                batcher.predict(np.zeros((1, 2)))
            assert batcher.stats()["rejected_total"] == 1
        finally:
            release.set()
            for thread in threads:
                thread.join(timeout=30)
            batcher.close()

    def test_hammered_results_stay_row_aligned(self):
        batcher = MicroBatcher(
            _echo_first_column, max_batch_size=8, max_delay_ms=2.0, max_queue=256
        )
        results: dict = {}

        def submit(index: int) -> None:
            rows = 1 + index % 3
            marker = float(index)
            results[index] = batcher.predict(np.full((rows, 4), marker))

        try:
            threads = [
                threading.Thread(target=submit, args=(index,)) for index in range(24)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            for index in range(24):
                rows = 1 + index % 3
                assert results[index].tolist() == [float(index)] * rows
            stats = batcher.stats()
            assert stats["requests_total"] == 24
            assert stats["batches_total"] < 24  # coalescing actually happened
        finally:
            batcher.close()

    def test_shape_validation_rejects_bad_requests_alone(self):
        batcher = MicroBatcher(
            _echo_first_column,
            max_batch_size=4,
            max_delay_ms=1.0,
            input_shape=(3, 10, 10),
        )
        try:
            with pytest.raises(ValueError, match="model expects"):
                batcher.predict(np.zeros((1, 4)))
            with pytest.raises(ValueError, match="batch of shape"):
                batcher.predict(np.zeros(10))
            assert batcher.predict(np.zeros((0, 3, 10, 10))).shape == (0,)
        finally:
            batcher.close()

    def test_predict_fn_failure_reaches_every_caller(self):
        def exploding(batch):
            raise RuntimeError("model on fire")

        batcher = MicroBatcher(exploding, max_batch_size=4, max_delay_ms=1.0)
        try:
            with pytest.raises(RuntimeError, match="model on fire"):
                batcher.predict(np.zeros((2, 2)))
        finally:
            batcher.close()

    def test_closed_batcher_rejects_submissions(self):
        batcher = MicroBatcher(_echo_first_column, max_batch_size=4)
        batcher.close()
        with pytest.raises(RuntimeError, match="closed"):
            batcher.predict(np.zeros((1, 2)))

    def test_queue_smaller_than_batch_is_rejected(self):
        with pytest.raises(ValueError, match="max_queue"):
            MicroBatcher(_echo_first_column, max_batch_size=8, max_queue=4)


# -- served predictions --------------------------------------------------------------
class TestServingParity:
    def test_served_matches_direct_trainer_predict(self, promoted):
        zoo, entry = promoted
        rng = np.random.default_rng(11)
        inputs = rng.normal(size=(12, 3, 10, 10))

        server = ModelServer(zoo.root, max_batch_size=32, max_delay_ms=2.0)
        try:
            served = server.predict("tiny", inputs)
        finally:
            server.close()

        model, _descriptor, _ = zoo.load_model("tiny")
        model.astype("float32")  # the server's serving dtype
        direct = Trainer(
            TrainingConfig(batch_size=32, inference_batch_size=32)
        ).predict(model, inputs, batch_size=inputs.shape[0])
        assert np.array_equal(served, direct)

    def test_instrumentation_toggle_leaves_predictions_bit_identical(self, promoted):
        zoo, _entry = promoted
        rng = np.random.default_rng(13)
        inputs = rng.normal(size=(6, 3, 10, 10))
        outputs = {}
        for enabled in (False, True):
            previous = obs_metrics.set_enabled(enabled)
            server = ModelServer(zoo.root, max_batch_size=8, max_delay_ms=1.0)
            try:
                outputs[enabled] = server.predict("tiny", inputs)
            finally:
                server.close()
                obs_metrics.set_enabled(previous)
        assert np.array_equal(outputs[False], outputs[True])

    def test_serving_metrics_observe_requests_and_batches(self, promoted):
        zoo, _entry = promoted
        registry = obs_metrics.MetricsRegistry()
        previous_registry = obs_metrics.set_registry(registry)
        previous_enabled = obs_metrics.set_enabled(True)
        server = ModelServer(zoo.root, max_batch_size=8, max_delay_ms=1.0)
        try:
            server.predict("tiny", np.zeros((2, 3, 10, 10)))
            rendered = registry.render_prometheus()
        finally:
            server.close()
            obs_metrics.set_enabled(previous_enabled)
            obs_metrics.set_registry(previous_registry)
        assert 'repro_serving_requests_total{model="tiny"} 1' in rendered
        assert 'repro_serving_batches_total{model="tiny"} 1' in rendered

    def test_unknown_model_raises_model_not_found(self, promoted):
        zoo, _entry = promoted
        server = ModelServer(zoo.root)
        try:
            with pytest.raises(ModelNotFound):
                server.predict("nope", np.zeros((1, 3, 10, 10)))
        finally:
            server.close()


# -- satellite: inference workspaces survive across batches --------------------------
class TestInferenceWorkspaceReuse:
    def test_same_shape_batches_reuse_conv_workspaces(self, promoted):
        zoo, _entry = promoted
        model, _descriptor, _ = zoo.load_model("tiny")
        trainer = Trainer(TrainingConfig(batch_size=8, inference_batch_size=8))
        batch = np.random.default_rng(3).normal(size=(8, 3, 10, 10))

        trainer.predict(model, batch)  # allocates the inference workspaces
        # Pointwise (1x1) convolutions unfold via an identity reshape and
        # never stage patches; only the spatial kernels own workspaces.
        convs = [
            module
            for module in model.modules()
            if isinstance(module, (Conv2d, DepthwiseConv2d))
            and module._inference_workspace is not None
        ]
        assert convs
        workspaces = [id(conv._inference_workspace) for conv in convs]

        tracemalloc.start()
        before, _peak = tracemalloc.get_traced_memory()
        for _ in range(3):
            trainer.predict(model, batch)
        after, _peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()

        # Identity: repeated same-shape inference touches the same buffers.
        assert [id(conv._inference_workspace) for conv in convs] == workspaces
        # Allocation: steady-state growth stays far below one workspace's
        # footprint (the patch matrices are the dominant inference buffers).
        workspace_bytes = sum(conv._inference_workspace.nbytes for conv in convs)
        assert after - before < max(workspace_bytes // 2, 64 * 1024)

    def test_shape_change_reallocates_then_resettles(self, promoted):
        zoo, _entry = promoted
        model, _descriptor, _ = zoo.load_model("tiny")
        trainer = Trainer(TrainingConfig(batch_size=8, inference_batch_size=8))
        rng = np.random.default_rng(4)
        trainer.predict(model, rng.normal(size=(8, 3, 10, 10)))
        convs = [
            module
            for module in model.modules()
            if isinstance(module, (Conv2d, DepthwiseConv2d))
            and module._inference_workspace is not None
        ]
        assert convs
        first = [id(conv._inference_workspace) for conv in convs]
        trainer.predict(model, rng.normal(size=(4, 3, 10, 10)))  # smaller batch
        second = [id(conv._inference_workspace) for conv in convs]
        assert first != second
        trainer.predict(model, rng.normal(size=(4, 3, 10, 10)))
        assert [id(conv._inference_workspace) for conv in convs] == second


# -- the daemon's serving endpoints --------------------------------------------------
def _post_json(url: str, payload: dict, timeout: float = 120.0) -> dict:
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.load(response)


def _raw_http(host: str, port: int, data: bytes, timeout: float = 10.0) -> bytes:
    """Send raw bytes, return whatever the server answers until it closes."""
    chunks = []
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall(data)
        try:
            while True:
                chunk = sock.recv(4096)
                if not chunk:
                    break
                chunks.append(chunk)
        except socket.timeout:
            pass
    return b"".join(chunks)


@pytest.fixture(scope="module")
def serving_daemon(finished_run, promoted, tmp_path_factory):
    from repro.service.daemon import RunService

    runs_root, run_id = finished_run
    zoo, _entry = promoted
    service = RunService(
        runs_root,
        port=0,
        zoo_root=zoo.root,
        max_batch_size=8,
        flush_ms=2.0,
        request_timeout=2.0,
    ).start()
    yield service, run_id
    service.shutdown()


class TestDaemonServing:
    def test_get_models_lists_the_zoo(self, serving_daemon):
        service, _run_id = serving_daemon
        with urllib.request.urlopen(service.url + "/models", timeout=30) as response:
            models = json.load(response)["models"]
        assert any(model["name"] == "tiny" for model in models)

    def test_promote_endpoint_creates_an_entry(self, serving_daemon):
        service, run_id = serving_daemon
        body = _post_json(
            service.url + "/models/promote",
            {"run_id": run_id, "name": "tiny-http"},
        )
        assert body["model"]["name"] == "tiny-http"
        assert body["model"]["source_run_id"] == run_id
        with urllib.request.urlopen(service.url + "/models", timeout=30) as response:
            names = {model["name"] for model in json.load(response)["models"]}
        assert "tiny-http" in names

    def test_predict_endpoint_matches_in_process_serving(
        self, serving_daemon, promoted
    ):
        service, _run_id = serving_daemon
        zoo, _entry = promoted
        inputs = np.random.default_rng(5).normal(size=(3, 3, 10, 10))
        body = _post_json(
            service.url + "/models/tiny/predict", {"inputs": inputs.tolist()}
        )
        server = ModelServer(zoo.root, max_batch_size=8, max_delay_ms=2.0)
        try:
            expected = server.predict("tiny", inputs)
        finally:
            server.close()
        assert body["count"] == 3
        assert body["predictions"] == [int(value) for value in expected]

    def test_unknown_model_is_structured_404(self, serving_daemon):
        service, _run_id = serving_daemon
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post_json(service.url + "/models/ghost/predict", {"inputs": [[0.0]]})
        assert excinfo.value.code == 404
        assert json.load(excinfo.value)["error"]["type"] == "unknown-model"

    def test_promote_of_unready_run_is_409(self, serving_daemon):
        service, _run_id = serving_daemon
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post_json(service.url + "/models/promote", {"run_id": "no-such-run"})
        assert excinfo.value.code == 404

    def test_backpressure_surfaces_as_429(self, serving_daemon, monkeypatch):
        service, _run_id = serving_daemon

        def full(name, inputs):
            raise QueueFull(name, 8, 8)

        monkeypatch.setattr(service.model_server, "predict", full)
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post_json(service.url + "/models/tiny/predict", {"inputs": [[0.0]]})
        assert excinfo.value.code == 429
        assert json.load(excinfo.value)["error"]["type"] == "backpressure"

    def test_missing_content_length_is_411(self, serving_daemon):
        service, _run_id = serving_daemon
        response = _raw_http(
            service.host,
            service.port,
            b"POST /runs HTTP/1.1\r\nHost: test\r\n\r\n",
        )
        assert b"411" in response.split(b"\r\n", 1)[0]
        assert b"length-required" in response

    def test_oversized_body_is_rejected_at_the_headers(self, serving_daemon):
        service, _run_id = serving_daemon
        declared = service.server.max_body_bytes + 1
        # No body bytes follow the headers: a 413 here proves the server
        # answered from Content-Length alone instead of draining the wire.
        response = _raw_http(
            service.host,
            service.port,
            (
                f"POST /runs HTTP/1.1\r\nHost: test\r\n"
                f"Content-Length: {declared}\r\n\r\n"
            ).encode("ascii"),
        )
        assert b"413" in response.split(b"\r\n", 1)[0]
        assert b"payload-too-large" in response

    def test_stalled_body_times_out_with_408(self, serving_daemon):
        service, _run_id = serving_daemon
        response = _raw_http(
            service.host,
            service.port,
            b"POST /runs HTTP/1.1\r\nHost: test\r\n"
            b"Content-Length: 100\r\n\r\n{\"par",  # stall mid-body
            timeout=30.0,
        )
        assert b"408" in response.split(b"\r\n", 1)[0]
        assert b"request-timeout" in response


# -- the CLI surface -----------------------------------------------------------------
class TestServingCli:
    def test_promote_then_list_shows_zoo_entries(
        self, finished_run, tmp_path, capsys
    ):
        runs_root, run_id = finished_run
        zoo_root = str(tmp_path / "zoo")
        assert (
            cli_main(
                [
                    "promote",
                    run_id,
                    "--runs-root",
                    runs_root,
                    "--zoo-root",
                    zoo_root,
                    "--name",
                    "cli-model",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "promoted" in out and "cli-model:" in out

        assert (
            cli_main(
                ["list", "--runs-root", runs_root, "--zoo-root", zoo_root]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "zoo (1 deployable model" in out
        assert "cli-model:" in out

    def test_promote_unknown_run_exits_nonzero(self, tmp_path, capsys):
        rc = cli_main(
            [
                "promote",
                "missing-run",
                "--runs-root",
                str(tmp_path / "runs"),
                "--zoo-root",
                str(tmp_path / "zoo"),
            ]
        )
        assert rc != 0
        assert "missing-run" in capsys.readouterr().err
