"""Shared fixtures: tiny datasets and backbones sized for fast CPU tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.blocks.spec import BlockSpec, ClassifierSpec, StemSpec
from repro.data.dataset import GroupedDataset, stratified_split
from repro.data.dermatology import DermatologyConfig, DermatologyGenerator
from repro.zoo.descriptors import ArchitectureDescriptor, HeadSpec


@pytest.fixture(scope="session")
def tiny_config() -> DermatologyConfig:
    """A very small dermatology configuration (12x12 images)."""
    return DermatologyConfig(
        image_size=12,
        samples_per_class_majority=8,
        minority_fraction=0.5,
        seed=123,
    )


@pytest.fixture(scope="session")
def tiny_dataset(tiny_config) -> GroupedDataset:
    """A small grouped dataset shared across tests (read-only)."""
    return DermatologyGenerator(tiny_config).generate()


@pytest.fixture(scope="session")
def tiny_splits(tiny_dataset):
    """60/20/20 splits of the tiny dataset."""
    return stratified_split(tiny_dataset, rng=0)


@pytest.fixture(scope="session")
def tiny_backbone() -> ArchitectureDescriptor:
    """A 4-block backbone small enough to search over in tests."""
    return ArchitectureDescriptor(
        name="TinyBackbone",
        stem=StemSpec(ch_in=3, ch_out=8, kernel=3, stride=2),
        blocks=(
            BlockSpec("DB", 8, 16, 8),
            BlockSpec("MB", 8, 24, 16, stride=2),
            BlockSpec("DB", 16, 32, 16),
            BlockSpec("MB", 16, 48, 24, stride=2),
        ),
        head=HeadSpec(ch_in=24, ch_out=32),
        classifier=ClassifierSpec(ch_in=32, num_classes=5),
        input_resolution=224,
    )


@pytest.fixture()
def rng() -> np.random.Generator:
    """A fresh deterministic generator per test."""
    return np.random.default_rng(0)
