"""Tests for the observability layer: metric registries, Prometheus
exposition, span tracing, Chrome trace export, the daemon's /metrics
endpoint and the observes-never-steers invariant."""

from __future__ import annotations

import json
import os
import threading
import urllib.request

import pytest

from repro.api.run import execute
from repro.api.spec import (
    DatasetSpec,
    DesignSpecConfig,
    RunSpec,
    SearchParams,
)
from repro.engine.engine import EngineConfig
from repro.engine.events import METRICS_UPDATED, SPAN, EngineEvent
from repro.obs import metrics as obs
from repro.obs.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    parse_prometheus_text,
)
from repro.obs.tracing import Tracer
from repro.obs.trace_export import chrome_trace, export_chrome_trace
from repro.obs.top import histogram_quantile, render, sample_value
from repro.service.cli import ProgressPrinter


def _tiny_spec(episodes: int = 2, **search_kwargs) -> RunSpec:
    return RunSpec(
        strategy="fahana",
        dataset=DatasetSpec(
            image_size=10,
            samples_per_class=8,
            minority_fraction=0.5,
            seed=123,
            split_seed=0,
        ),
        design=DesignSpecConfig(timing_constraint_ms=1e6),
        search=SearchParams(
            episodes=episodes,
            child_epochs=1,
            child_batch_size=8,
            pretrain_epochs=0,
            max_searchable=2,
            width_multiplier=0.25,
            seed=0,
            **search_kwargs,
        ),
    )


# -- registry semantics ---------------------------------------------------------------
class TestMetricsRegistry:
    def test_counter_monotonic(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "help")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_set_inc_dec(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g", "help")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec(3)
        assert gauge.value == 4.0

    def test_histogram_buckets_cumulative(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", "help", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            hist.observe(value)
        child = hist.labels()
        buckets = child.buckets()
        assert buckets == {"0.1": 1, "1": 3, "10": 4, "+Inf": 5}
        assert child.count == 5
        assert child.sum == pytest.approx(56.05)
        assert child.quantile(0.5) == 1.0

    def test_histogram_rejects_unsorted_buckets(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("bad", buckets=(1.0, 0.5))

    def test_same_name_returns_same_family(self):
        registry = MetricsRegistry()
        assert registry.counter("x_total") is registry.counter("x_total")

    def test_type_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("mixed")
        with pytest.raises(ValueError):
            registry.gauge("mixed")

    def test_labeled_children_are_distinct_series(self):
        registry = MetricsRegistry()
        family = registry.counter("lookups_total", "h", labelnames=("result",))
        family.labels(result="hit").inc(3)
        family.labels(result="miss").inc()
        values = {
            labels["result"]: child.value for labels, child in family.samples()
        }
        assert values == {"hit": 3.0, "miss": 1.0}

    def test_concurrent_increments_do_not_lose_updates(self):
        registry = MetricsRegistry()
        counter = registry.counter("contended_total")
        child = counter.labels()

        def spin():
            for _ in range(1000):
                child.inc()

        threads = [threading.Thread(target=spin) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 8000.0

    def test_parent_mirroring_writes_through(self):
        parent = MetricsRegistry()
        child = MetricsRegistry(parent=parent)
        child.counter("c_total").inc(2)
        child.histogram("h", buckets=(1.0,)).observe(0.5)
        assert parent.counter("c_total").value == 2.0
        assert parent.histogram("h", buckets=(1.0,)).labels().count == 1
        # Writes are mirrored, not shared: a sibling run keeps its own view.
        sibling = MetricsRegistry(parent=parent)
        sibling.counter("c_total").inc()
        assert child.counter("c_total").value == 2.0
        assert parent.counter("c_total").value == 3.0

    def test_disabled_writes_are_dropped(self):
        registry = MetricsRegistry()
        counter = registry.counter("kill_total")
        previous = obs.set_enabled(False)
        try:
            counter.inc()
            registry.histogram("kill_h").observe(1.0)
        finally:
            obs.set_enabled(previous)
        assert counter.value == 0.0
        counter.inc()
        assert counter.value == 1.0

    def test_callback_gauges_replace_and_never_raise(self):
        registry = MetricsRegistry()
        registry.register_callback("cb", "old", lambda: 1.0)
        registry.register_callback("cb", "new", lambda: 2.0)
        registry.register_callback("boom", "raises", lambda: 1 / 0)
        snapshot = registry.snapshot()
        assert snapshot["cb"]["samples"] == [{"labels": {}, "value": 2.0}]
        assert "boom" not in snapshot
        registry.unregister_callback("cb")
        assert "cb" not in registry.snapshot()

    def test_snapshot_is_json_encodable(self):
        registry = MetricsRegistry()
        registry.counter("a_total", "h", labelnames=("k",)).labels(k="v").inc()
        registry.histogram("b").observe(0.2)
        json.dumps(registry.snapshot())


# -- exposition format ----------------------------------------------------------------
class TestPrometheusExposition:
    def test_golden_exposition(self):
        registry = MetricsRegistry()
        registry.counter(
            "repro_demo_total", "Demo counter", labelnames=("result",)
        ).labels(result="hit").inc(3)
        registry.gauge("repro_demo_gauge", "Demo gauge").set(1.5)
        hist = registry.histogram("repro_demo_seconds", "Demo hist", buckets=(0.5, 1.0))
        hist.observe(0.2)
        hist.observe(2.0)
        assert registry.render_prometheus() == (
            "# HELP repro_demo_total Demo counter\n"
            "# TYPE repro_demo_total counter\n"
            'repro_demo_total{result="hit"} 3\n'
            "# HELP repro_demo_gauge Demo gauge\n"
            "# TYPE repro_demo_gauge gauge\n"
            "repro_demo_gauge 1.5\n"
            "# HELP repro_demo_seconds Demo hist\n"
            "# TYPE repro_demo_seconds histogram\n"
            'repro_demo_seconds_bucket{le="0.5"} 1\n'
            'repro_demo_seconds_bucket{le="1"} 1\n'
            'repro_demo_seconds_bucket{le="+Inf"} 2\n'
            "repro_demo_seconds_sum 2.2\n"
            "repro_demo_seconds_count 2\n"
        )

    def test_parse_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("rt_total", "h", labelnames=("k",)).labels(k='a"b\\c').inc(7)
        registry.histogram("rt_seconds", buckets=(1.0,)).observe(0.5)
        parsed = parse_prometheus_text(registry.render_prometheus())
        assert sample_value(parsed, "rt_total", {"k": 'a"b\\c'}) == 7.0
        assert sample_value(parsed, "rt_seconds_count") == 1.0
        assert sample_value(parsed, "rt_seconds_bucket", {"le": "+Inf"}) == 1.0


# -- span tracing ---------------------------------------------------------------------
class TestTracer:
    def test_span_nesting_and_ordering(self):
        emitted = []
        tracer = Tracer(lambda payload, episode: emitted.append((payload, episode)))
        with tracer.span("outer", episode=3):
            with tracer.span("inner"):
                pass
            with tracer.span("inner2"):
                pass
        # Children complete (and emit) before their parent.
        names = [payload["name"] for payload, _ in emitted]
        assert names == ["inner", "inner2", "outer"]
        by_name = {payload["name"]: payload for payload, _ in emitted}
        outer = by_name["outer"]
        assert outer["parent_id"] == 0
        assert by_name["inner"]["parent_id"] == outer["span_id"]
        assert by_name["inner2"]["parent_id"] == outer["span_id"]
        assert emitted[2][1] == 3  # episode rides the event, not the payload
        assert outer["dur"] >= by_name["inner"]["dur"]

    def test_record_nests_under_open_span(self):
        emitted = []
        tracer = Tracer(lambda payload, episode: emitted.append(payload))
        with tracer.span("stage") as stage_id:
            tracer.record("train", start=123.0, duration=0.25, tid="worker-1")
        recorded = emitted[0]
        assert recorded["parent_id"] == stage_id
        assert recorded["tid"] == "worker-1"
        assert recorded["ts"] == 123.0
        assert recorded["dur"] == 0.25

    def test_disabled_tracer_emits_nothing(self):
        emitted = []
        tracer = Tracer(lambda payload, episode: emitted.append(payload))
        previous = obs.set_enabled(False)
        try:
            with tracer.span("quiet") as span_id:
                assert span_id == 0
            assert tracer.record("r", start=0.0, duration=0.0) == 0
        finally:
            obs.set_enabled(previous)
        assert emitted == []


# -- chrome trace export --------------------------------------------------------------
class TestTraceExport:
    def _span_event(self, name, ts, dur, tid="engine", parent=0, episode=None):
        return EngineEvent(
            kind=SPAN,
            episode=episode,
            payload={
                "name": name, "cat": "engine", "ts": ts, "dur": dur,
                "tid": tid, "span_id": 1, "parent_id": parent,
            },
        )

    def test_chrome_trace_structure(self):
        events = [
            self._span_event("wave", 100.0, 0.5, episode=0),
            self._span_event("train", 100.1, 0.3, tid="worker-1", parent=1),
        ]
        document = chrome_trace(events)
        metadata = [e for e in document["traceEvents"] if e["ph"] == "M"]
        spans = [e for e in document["traceEvents"] if e["ph"] == "X"]
        assert {m["args"]["name"] for m in metadata} == {"engine", "worker-1"}
        wave, train = spans
        assert wave["ts"] == 0.0  # normalized to the earliest span
        assert train["ts"] == pytest.approx(100000.0)  # +0.1 s in us
        assert train["dur"] == pytest.approx(300000.0)
        assert train["args"]["parent_span"] == 1
        assert wave["args"]["episode"] == 0

    def test_export_round_trip_from_live_run(self, tmp_path):
        run_dir = str(tmp_path / "run")
        execute(_tiny_spec(), engine=EngineConfig(run_dir=run_dir))
        summary = export_chrome_trace(run_dir)
        assert summary["spans"] > 0
        with open(summary["path"]) as handle:
            document = json.load(handle)
        names = {e["name"] for e in document["traceEvents"] if e["ph"] == "X"}
        # The engine phases and the worker-measured training spans are there.
        assert {"wave", "sample", "evaluate", "observe", "train"} <= names
        assert all(
            e["ts"] >= 0.0 for e in document["traceEvents"] if e["ph"] == "X"
        )

    def test_export_errors(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            export_chrome_trace(str(tmp_path))
        telemetry = tmp_path / "telemetry.jsonl"
        telemetry.write_text('{"kind": "run-started", "timestamp": 1.0}\n')
        with pytest.raises(ValueError):
            export_chrome_trace(str(tmp_path))


# -- instrumented runs ----------------------------------------------------------------
class TestRunInstrumentation:
    def test_report_metrics_snapshot(self, tmp_path):
        report = execute(
            _tiny_spec(),
            engine=EngineConfig(run_dir=str(tmp_path / "run"), use_cache=True),
        )
        metrics = report.metrics
        episodes = sum(
            sample["value"]
            for sample in metrics["repro_engine_episodes_total"]["samples"]
        )
        assert episodes == 2
        assert metrics["repro_engine_waves_total"]["samples"][0]["value"] >= 1
        wave_hist = metrics["repro_engine_wave_seconds"]["samples"][0]
        assert wave_hist["count"] >= 1
        assert metrics["repro_cache_lookups_total"]["samples"]
        assert metrics["repro_pool_tasks_total"]["samples"][0]["value"] == 2
        json.dumps(report.to_dict())

    def test_metrics_updated_event_and_progress_line(self, tmp_path):
        report = execute(
            _tiny_spec(),
            engine=EngineConfig(run_dir=str(tmp_path / "run"), use_cache=True),
        )
        updates = [
            json.loads(line)
            for line in open(report.telemetry_path)
            if json.loads(line)["kind"] == METRICS_UPDATED
        ]
        assert updates and updates[-1]["episodes_done"] == 2
        assert updates[-1]["episodes_per_second"] > 0
        assert updates[-1]["cache_hit_rate"] is not None
        line = ProgressPrinter().line(EngineEvent.from_dict(updates[-1]))
        assert "2 episodes" in line and "ep/s" in line and "cache hit rate" in line

    def test_per_run_registries_are_isolated(self, tmp_path):
        first = execute(_tiny_spec(), engine=EngineConfig(use_cache=True))
        second = execute(_tiny_spec(), engine=EngineConfig(use_cache=True))

        def episode_count(report):
            return sum(
                s["value"]
                for s in report.metrics["repro_engine_episodes_total"]["samples"]
            )

        assert episode_count(first) == 2
        assert episode_count(second) == 2  # not 4: snapshots are per run

    def test_instrumentation_does_not_steer(self, tmp_path):
        """Float64 runs are bit-for-bit identical with observability off."""
        baseline = execute(_tiny_spec(episodes=3))
        previous = obs.set_enabled(False)
        try:
            dark = execute(_tiny_spec(episodes=3))
        finally:
            obs.set_enabled(previous)
        assert [r.reward for r in baseline.history.records] == [
            r.reward for r in dark.history.records
        ]
        assert [r.accuracy for r in baseline.history.records] == [
            r.accuracy for r in dark.history.records
        ]
        assert baseline.spec.cache_key() == dark.spec.cache_key()
        # The disabled run recorded nothing.
        assert all(
            not sample.get("value") and not sample.get("count")
            for payload in dark.metrics.values()
            for sample in payload["samples"]
        )


# -- the daemon endpoint and the top dashboard ---------------------------------------
class TestMetricsEndpoint:
    def test_daemon_serves_prometheus_text(self, tmp_path):
        from repro.service.client import RunClient
        from repro.service.daemon import RunService

        # A fresh process-global registry: /metrics is the process fleet
        # view, and other tests' runs have already mirrored into the old one.
        previous = obs.set_registry(MetricsRegistry())
        service = RunService(str(tmp_path / "runs"), port=0).start()
        try:
            handle = RunClient.connect(service.url).submit(_tiny_spec())
            handle.result(timeout=120)
            with urllib.request.urlopen(f"{service.url}/metrics") as response:
                assert response.status == 200
                assert response.headers["Content-Type"].startswith("text/plain")
                text = response.read().decode("utf-8")
            parsed = parse_prometheus_text(text)
            assert sample_value(parsed, "repro_service_worker_slots") == 1.0
            assert (
                sample_value(parsed, "repro_service_runs", {"state": "finished"})
                == 1.0
            )
            episodes = sum(
                s["value"] for s in parsed.get("repro_engine_episodes_total", [])
            )
            assert episodes == 2.0
            assert sample_value(parsed, "repro_engine_waves_total") >= 1.0
        finally:
            service.shutdown()
            obs.set_registry(previous)

    def test_top_renders_canned_scrape(self):
        registry = MetricsRegistry()
        registry.gauge("repro_service_worker_slots").set(2)
        registry.gauge("repro_service_slots_busy").set(1)
        registry.gauge("repro_service_queue_depth").set(3)
        registry.counter(
            "repro_engine_episodes_total", labelnames=("result",)
        ).labels(result="trained").inc(5)
        registry.histogram("repro_engine_wave_seconds").observe(0.3)
        metrics = parse_prometheus_text(registry.render_prometheus())
        runs = [
            {
                "run_id": "r1", "state": "running", "strategy": "fahana",
                "episodes_done": 5, "episodes": 10, "best_reward": 0.5,
            }
        ]
        frame = render(metrics, runs, "http://localhost:1")
        assert "slots 1/2 busy" in frame
        assert "queue depth 3" in frame
        assert "trained 5" in frame
        assert "r1" in frame and "running" in frame
        assert (
            histogram_quantile(metrics, "repro_engine_wave_seconds", 0.5) == 0.5
        )
