"""Tests for the dermatology data substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    GROUP_DARK,
    GROUP_LIGHT,
    DermatologyConfig,
    DermatologyGenerator,
    GroupedDataset,
    balance_minority,
    brightness_jitter,
    generate_dermatology_dataset,
    normalize_images,
    oversample_minority,
    random_horizontal_flip,
    stratified_split,
)
from repro.data.dermatology import DISEASE_CLASSES


class TestDermatologyConfig:
    def test_defaults_are_five_classes(self):
        assert DermatologyConfig().num_classes == 5
        assert len(DISEASE_CLASSES) == 5

    def test_minority_count_derived_from_fraction(self):
        config = DermatologyConfig(samples_per_class_majority=40, minority_fraction=0.25)
        assert config.samples_per_class_minority == 10

    def test_invalid_image_size(self):
        with pytest.raises(ValueError):
            DermatologyConfig(image_size=4)

    def test_invalid_minority_fraction(self):
        with pytest.raises(ValueError):
            DermatologyConfig(minority_fraction=0.0)

    def test_invalid_num_classes(self):
        with pytest.raises(ValueError):
            DermatologyConfig(num_classes=9)


class TestGenerator:
    def test_dataset_shape_and_ranges(self, tiny_dataset, tiny_config):
        expected = tiny_config.num_classes * (
            tiny_config.samples_per_class_majority
            + tiny_config.samples_per_class_minority
        )
        assert len(tiny_dataset) == expected
        assert tiny_dataset.images.shape[1:] == (3, tiny_config.image_size, tiny_config.image_size)
        assert tiny_dataset.images.min() >= 0.0 and tiny_dataset.images.max() <= 1.0

    def test_all_classes_present(self, tiny_dataset, tiny_config):
        assert set(np.unique(tiny_dataset.labels)) == set(range(tiny_config.num_classes))

    def test_light_is_majority(self, tiny_dataset):
        counts = tiny_dataset.group_counts()
        assert counts[GROUP_LIGHT] > counts[GROUP_DARK]
        assert tiny_dataset.minority_group() == GROUP_DARK
        assert tiny_dataset.majority_group() == GROUP_LIGHT

    def test_generation_is_deterministic(self, tiny_config):
        a = DermatologyGenerator(tiny_config).generate()
        b = DermatologyGenerator(tiny_config).generate()
        np.testing.assert_allclose(a.images, b.images)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_different_seed_changes_images(self, tiny_config):
        a = DermatologyGenerator(tiny_config).generate(rng=1)
        b = DermatologyGenerator(tiny_config).generate(rng=2)
        assert not np.allclose(a.images, b.images)

    def test_dark_images_are_darker_on_average(self, tiny_dataset):
        light = tiny_dataset.images[tiny_dataset.group_indices(GROUP_LIGHT)]
        dark = tiny_dataset.images[tiny_dataset.group_indices(GROUP_DARK)]
        assert light.mean() > dark.mean() + 0.1

    def test_lesion_contrast_lower_for_dark_group(self, tiny_config):
        generator = DermatologyGenerator(tiny_config)
        light = generator.generate_group(GROUP_LIGHT, 20, rng=0)
        dark = generator.generate_group(GROUP_DARK, 20, rng=0)
        # per-image contrast proxy: standard deviation of pixel intensities
        assert light.images.std(axis=(1, 2, 3)).mean() > dark.images.std(axis=(1, 2, 3)).mean()

    def test_classes_are_visually_distinct(self, tiny_config):
        """Mean images of different classes should differ measurably."""
        generator = DermatologyGenerator(tiny_config)
        per_class = [
            generator.generate_group(GROUP_LIGHT, 12, rng=c).images.mean(axis=0)
            for c in range(3)
        ]
        for i in range(3):
            for j in range(i + 1, 3):
                assert np.abs(per_class[i] - per_class[j]).mean() > 1e-3

    def test_generate_group_single_group(self, tiny_config):
        generator = DermatologyGenerator(tiny_config)
        dark_only = generator.generate_group(GROUP_DARK, 4, rng=0)
        assert set(np.unique(dark_only.groups)) == {1}
        assert len(dark_only) == 4 * tiny_config.num_classes

    def test_generate_group_unknown_group_raises(self, tiny_config):
        with pytest.raises(ValueError):
            DermatologyGenerator(tiny_config).generate_group("green", 2)

    def test_convenience_wrapper(self, tiny_config):
        dataset = generate_dermatology_dataset(tiny_config)
        assert isinstance(dataset, GroupedDataset)


class TestGroupedDataset:
    def test_subset_preserves_alignment(self, tiny_dataset):
        subset = tiny_dataset.subset([0, 1, 2])
        assert len(subset) == 3
        np.testing.assert_array_equal(subset.labels, tiny_dataset.labels[:3])

    def test_group_indices_cover_dataset(self, tiny_dataset):
        light = tiny_dataset.group_indices(GROUP_LIGHT)
        dark = tiny_dataset.group_indices(GROUP_DARK)
        assert len(light) + len(dark) == len(tiny_dataset)

    def test_group_indices_unknown_raises(self, tiny_dataset):
        with pytest.raises(KeyError):
            tiny_dataset.group_indices("unknown")

    def test_concatenate(self, tiny_dataset):
        combined = tiny_dataset.concatenate(tiny_dataset.subset([0, 1]))
        assert len(combined) == len(tiny_dataset) + 2

    def test_concatenate_shape_mismatch_raises(self, tiny_dataset):
        other = GroupedDataset(
            images=np.zeros((2, 3, 8, 8)), labels=np.zeros(2), groups=np.zeros(2)
        )
        with pytest.raises(ValueError):
            tiny_dataset.concatenate(other)

    def test_shuffled_preserves_multiset(self, tiny_dataset):
        shuffled = tiny_dataset.shuffled(rng=0)
        assert sorted(shuffled.labels.tolist()) == sorted(tiny_dataset.labels.tolist())

    def test_validation_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            GroupedDataset(images=np.zeros((2, 3, 8)), labels=np.zeros(2), groups=np.zeros(2))
        with pytest.raises(ValueError):
            GroupedDataset(images=np.zeros((2, 3, 8, 8)), labels=np.zeros(3), groups=np.zeros(2))

    def test_group_index_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            GroupedDataset(
                images=np.zeros((2, 3, 8, 8)), labels=np.zeros(2), groups=np.array([0, 5])
            )

    def test_num_classes(self, tiny_dataset, tiny_config):
        assert tiny_dataset.num_classes == tiny_config.num_classes


class TestSplits:
    def test_split_sizes_sum_to_total(self, tiny_dataset):
        splits = stratified_split(tiny_dataset, rng=0)
        assert sum(splits.sizes) == len(tiny_dataset)

    def test_split_fractions_roughly_60_20_20(self, tiny_dataset):
        splits = stratified_split(tiny_dataset, rng=0)
        total = len(tiny_dataset)
        assert splits.sizes[0] / total == pytest.approx(0.6, abs=0.12)

    def test_every_split_contains_both_groups(self, tiny_splits):
        for split in (tiny_splits.train, tiny_splits.validation, tiny_splits.test):
            counts = split.group_counts()
            assert counts[GROUP_LIGHT] > 0 and counts[GROUP_DARK] > 0

    def test_every_split_contains_every_class(self, tiny_splits, tiny_config):
        for split in (tiny_splits.train, tiny_splits.validation, tiny_splits.test):
            assert set(np.unique(split.labels)) == set(range(tiny_config.num_classes))

    def test_split_deterministic(self, tiny_dataset):
        a = stratified_split(tiny_dataset, rng=5)
        b = stratified_split(tiny_dataset, rng=5)
        np.testing.assert_array_equal(a.train.labels, b.train.labels)

    def test_invalid_fractions_raise(self, tiny_dataset):
        with pytest.raises(ValueError):
            stratified_split(tiny_dataset, train_fraction=0.0)
        with pytest.raises(ValueError):
            stratified_split(tiny_dataset, train_fraction=0.9, validation_fraction=0.2)


class TestBalancing:
    def test_balance_minority_increases_minority_share(self, tiny_dataset, tiny_config):
        generator = DermatologyGenerator(tiny_config)
        balanced = balance_minority(tiny_dataset, generator, factor=5, rng=0)
        before = tiny_dataset.group_counts()[GROUP_DARK] / len(tiny_dataset)
        after = balanced.group_counts()[GROUP_DARK] / len(balanced)
        assert after > before
        assert balanced.group_counts()[GROUP_DARK] >= 4 * tiny_dataset.group_counts()[GROUP_DARK]

    def test_balance_minority_keeps_majority_count(self, tiny_dataset, tiny_config):
        generator = DermatologyGenerator(tiny_config)
        balanced = balance_minority(tiny_dataset, generator, factor=3, rng=0)
        assert balanced.group_counts()[GROUP_LIGHT] == tiny_dataset.group_counts()[GROUP_LIGHT]

    def test_balance_minority_factor_one_is_noop_size(self, tiny_dataset, tiny_config):
        generator = DermatologyGenerator(tiny_config)
        balanced = balance_minority(tiny_dataset, generator, factor=1, rng=0)
        assert len(balanced) >= len(tiny_dataset)

    def test_balance_invalid_factor(self, tiny_dataset, tiny_config):
        with pytest.raises(ValueError):
            balance_minority(tiny_dataset, DermatologyGenerator(tiny_config), factor=0)

    def test_oversample_minority_duplicates(self, tiny_dataset):
        oversampled = oversample_minority(tiny_dataset, factor=3, rng=0)
        assert oversampled.group_counts()[GROUP_DARK] == 3 * tiny_dataset.group_counts()[GROUP_DARK]

    def test_oversample_invalid_factor(self, tiny_dataset):
        with pytest.raises(ValueError):
            oversample_minority(tiny_dataset, factor=0)


class TestTransforms:
    def test_normalize_zero_mean_unit_std(self, tiny_dataset):
        normalised, mean, std = normalize_images(tiny_dataset.images)
        np.testing.assert_allclose(normalised.mean(axis=(0, 2, 3)), np.zeros(3), atol=1e-9)
        np.testing.assert_allclose(normalised.std(axis=(0, 2, 3)), np.ones(3), atol=1e-9)

    def test_normalize_reuses_statistics(self, tiny_dataset):
        _, mean, std = normalize_images(tiny_dataset.images)
        renormalised, mean2, std2 = normalize_images(tiny_dataset.images[:4], mean, std)
        np.testing.assert_allclose(mean, mean2)
        np.testing.assert_allclose(std, std2)

    def test_normalize_requires_4d(self):
        with pytest.raises(ValueError):
            normalize_images(np.zeros((3, 8, 8)))

    def test_flip_probability_one_reverses_width(self, tiny_dataset):
        flipped = random_horizontal_flip(tiny_dataset.images, probability=1.0, rng=0)
        np.testing.assert_allclose(flipped, tiny_dataset.images[:, :, :, ::-1])

    def test_flip_probability_zero_is_identity(self, tiny_dataset):
        flipped = random_horizontal_flip(tiny_dataset.images, probability=0.0, rng=0)
        np.testing.assert_allclose(flipped, tiny_dataset.images)

    def test_flip_invalid_probability(self, tiny_dataset):
        with pytest.raises(ValueError):
            random_horizontal_flip(tiny_dataset.images, probability=1.5)

    def test_brightness_jitter_stays_in_range(self, tiny_dataset):
        jittered = brightness_jitter(tiny_dataset.images, magnitude=0.3, rng=0)
        assert jittered.min() >= 0.0 and jittered.max() <= 1.0

    def test_brightness_jitter_invalid_magnitude(self, tiny_dataset):
        with pytest.raises(ValueError):
            brightness_jitter(tiny_dataset.images, magnitude=-0.1)
