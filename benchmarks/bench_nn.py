"""Benchmark: the NN compute core (kernels, precision, optimizers).

Tracks the cost of the child-training hot path that every search reward is
paid for:

* **per-layer**: forward+backward time of the conv workhorses (3x3 Conv2d,
  pointwise Conv2d, DepthwiseConv2d, MaxPool2d) under the new kernels vs the
  seed's (``im2col_reference`` + per-call ``einsum(..., optimize=True)`` +
  dense ``col2im``), in float64 and float32,
* **im2col**: the strided zero-copy unfold vs the seed's Python-loop unfold,
* **end-to-end**: child-training throughput (samples/second) of a
  MobileNetV2(0.35) child at the default 32x32 resolution -- seed kernels at
  float64 (the pre-optimization stack), new kernels at float64, and new
  kernels at float32 (``TrainingConfig.precision``).

Asserts the headline guarantees: the new float64 kernels reproduce the seed
kernels' training losses to ~1e-12 (the einsum-vs-GEMM last-ulp budget; the
*search-scale* bit-for-bit parity is pinned by tests/test_perf_core.py) with
identical accuracies, and float32 training clears >= 1.6x
the seed stack's throughput (>= 2x is the observed/recorded figure; the
assert leaves headroom for noisy CI machines -- the measured ratio lands in
``BENCH_nn.json``).  Results are written to ``BENCH_nn.json`` (override with
the ``BENCH_NN_JSON`` environment variable); ``BENCH_NN_QUICK=1`` shrinks
the measurement counts for CI.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager

import numpy as np

from conftest import run_once

import repro.nn.layers.conv as conv_module
import repro.nn.optim as optim_module
from repro.blocks.mobile import MobileInvertedBlock
from repro.nn.functional import col2im, im2col, im2col_reference
from repro.nn.layers.conv import Conv2d, DepthwiseConv2d
from repro.nn.layers.norm import BatchNorm2d
from repro.nn.layers.pooling import MaxPool2d
from repro.nn.trainer import Trainer, TrainingConfig
from repro.zoo.registry import get_architecture

QUICK = os.environ.get("BENCH_NN_QUICK", "") not in ("", "0")
REPS = 5 if QUICK else 20
EPOCHS = 1 if QUICK else 2
SAMPLES = 64 if QUICK else 96
IMAGE_SIZE = 32  # the default dataset resolution
BATCH = 32
CLASSES = 5


# -- the seed's conv kernels (for the old-vs-new comparison) ------------------------
def _legacy_conv_forward(self, x):
    n, c, h, w = x.shape
    if c != self.in_channels:
        raise ValueError(f"expected {self.in_channels} input channels, got {c}")
    k = self.kernel_size
    cols = im2col_reference(x, k, k, self.stride, self.padding)
    n_, _, _, _, out_h, out_w = cols.shape
    cols_mat = cols.reshape(n_, self.in_channels * k * k, out_h * out_w)
    weight_mat = self.weight.data.reshape(self.out_channels, -1)
    out = np.einsum("of,nfl->nol", weight_mat, cols_mat, optimize=True)
    out = out.reshape(n_, self.out_channels, out_h, out_w)
    if self.use_bias:
        out = out + self.bias.data[None, :, None, None]
    self._cache_cols = cols_mat
    self._cache_input_shape = x.shape
    return out


def _legacy_conv_backward(self, grad_output):
    n, _, out_h, out_w = grad_output.shape
    k = self.kernel_size
    grad_mat = grad_output.reshape(n, self.out_channels, out_h * out_w)
    weight_grad = np.einsum(
        "nol,nfl->of", grad_mat, self._cache_cols, optimize=True
    ).reshape(self.weight.data.shape)
    self.weight.accumulate_grad(weight_grad)
    if self.use_bias:
        self.bias.accumulate_grad(grad_mat.sum(axis=(0, 2)))
    weight_mat = self.weight.data.reshape(self.out_channels, -1)
    grad_cols = np.einsum("of,nol->nfl", weight_mat, grad_mat, optimize=True)
    grad_cols = grad_cols.reshape(n, self.in_channels, k, k, out_h, out_w)
    grad_input = col2im(
        grad_cols, self._cache_input_shape, k, k, self.stride, self.padding
    )
    self._cache_cols = None
    self._cache_input_shape = None
    return grad_input


def _legacy_depthwise_forward(self, x):
    n, c, h, w = x.shape
    if c != self.channels:
        raise ValueError(f"expected {self.channels} channels, got {c}")
    k = self.kernel_size
    cols = im2col_reference(x, k, k, self.stride, self.padding)
    out = np.einsum("cij,ncijhw->nchw", self.weight.data, cols, optimize=True)
    if self.use_bias:
        out = out + self.bias.data[None, :, None, None]
    self._cache_cols = cols
    self._cache_input_shape = x.shape
    return out


def _legacy_depthwise_backward(self, grad_output):
    k = self.kernel_size
    weight_grad = np.einsum(
        "nchw,ncijhw->cij", grad_output, self._cache_cols, optimize=True
    )
    self.weight.accumulate_grad(weight_grad)
    if self.use_bias:
        self.bias.accumulate_grad(grad_output.sum(axis=(0, 2, 3)))
    grad_cols = np.einsum(
        "cij,nchw->ncijhw", self.weight.data, grad_output, optimize=True
    )
    grad_input = col2im(
        grad_cols, self._cache_input_shape, k, k, self.stride, self.padding
    )
    self._cache_cols = None
    self._cache_input_shape = None
    return grad_input


def _legacy_bn_forward(self, x):
    if x.ndim != 4 or x.shape[1] != self.num_features:
        raise ValueError(
            f"expected input of shape (N, {self.num_features}, H, W), got {x.shape}"
        )
    if self.training:
        mean = x.mean(axis=(0, 2, 3))
        var = x.var(axis=(0, 2, 3))
        self.running_mean = (1 - self.momentum) * self.running_mean + self.momentum * mean
        self.running_var = (1 - self.momentum) * self.running_var + self.momentum * var
    else:
        mean = self.running_mean
        var = self.running_var
    std = np.sqrt(var + self.eps)
    normalised = (x - mean[None, :, None, None]) / std[None, :, None, None]
    out = (
        self.gamma.data[None, :, None, None] * normalised
        + self.beta.data[None, :, None, None]
    )
    if self.training:
        self._cache_normalised = normalised
        self._cache_std = std
    return out


def _legacy_bn_backward(self, grad_output):
    normalised = self._cache_normalised
    std = self._cache_std
    n, _, h, w = grad_output.shape
    count = n * h * w
    self.gamma.accumulate_grad((grad_output * normalised).sum(axis=(0, 2, 3)))
    self.beta.accumulate_grad(grad_output.sum(axis=(0, 2, 3)))
    grad_norm = grad_output * self.gamma.data[None, :, None, None]
    sum_grad = grad_norm.sum(axis=(0, 2, 3), keepdims=True)
    sum_grad_norm = (grad_norm * normalised).sum(axis=(0, 2, 3), keepdims=True)
    grad_input = (
        grad_norm - sum_grad / count - normalised * sum_grad_norm / count
    ) / std[None, :, None, None]
    self._cache_normalised = None
    self._cache_std = None
    return grad_input


def _legacy_block_forward(self, x):
    out = self.expand.forward(x)
    out = self.depthwise.forward(out)
    out = self.project.forward(out)
    if self.use_residual:
        self._cache_residual = x
        out = out + x
    return out


def _legacy_block_backward(self, grad_output):
    grad = self.project.backward(grad_output)
    grad = self.depthwise.backward(grad)
    grad = self.expand.backward(grad)
    if self.use_residual:
        grad = grad + grad_output
        self._cache_residual = None
    return grad


def _legacy_adam_step(self):
    self._clip_gradients()
    self._step += 1
    bias1 = 1.0 - self.beta1**self._step
    bias2 = 1.0 - self.beta2**self._step
    for param in self.parameters:
        if not param.trainable:
            continue
        grad = param.grad
        if self.weight_decay > 0:
            grad = grad + self.weight_decay * param.data
        key = id(param)
        m = self._m.get(key)
        v = self._v.get(key)
        if m is None:
            m = np.zeros_like(param.data)
            v = np.zeros_like(param.data)
        m = self.beta1 * m + (1 - self.beta1) * grad
        v = self.beta2 * v + (1 - self.beta2) * grad**2
        self._m[key] = m
        self._v[key] = v
        m_hat = m / bias1
        v_hat = v / bias2
        param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


_LEGACY_PATCHES = (
    (conv_module.Conv2d, "forward", _legacy_conv_forward),
    (conv_module.Conv2d, "backward", _legacy_conv_backward),
    (conv_module.DepthwiseConv2d, "forward", _legacy_depthwise_forward),
    (conv_module.DepthwiseConv2d, "backward", _legacy_depthwise_backward),
    (BatchNorm2d, "forward", _legacy_bn_forward),
    (BatchNorm2d, "backward", _legacy_bn_backward),
    (MobileInvertedBlock, "forward", _legacy_block_forward),
    (MobileInvertedBlock, "backward", _legacy_block_backward),
    (optim_module.Adam, "step", _legacy_adam_step),
)


@contextmanager
def legacy_conv_kernels(convs_only: bool = False):
    """Swap the hot path back onto the seed's implementations.

    ``convs_only`` restricts the swap to the convolution kernels (for the
    per-layer micro-benchmarks); the full swap also restores the seed's
    batch-norm temporaries, residual-add allocations and allocating Adam
    step, so the end-to-end "legacy" measurement is the seed stack.
    """
    patches = _LEGACY_PATCHES[:4] if convs_only else _LEGACY_PATCHES
    saved = [(cls, name, getattr(cls, name)) for cls, name, _ in patches]
    for cls, name, impl in patches:
        setattr(cls, name, impl)
    try:
        yield
    finally:
        for cls, name, impl in saved:
            setattr(cls, name, impl)


# -- measurement helpers -------------------------------------------------------------
def _best_of(fn, reps):
    fn()  # warm-up (path caches, workspaces)
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _layer_step_seconds(layer, x, reps):
    """Best-of forward+backward wall time for one layer."""

    def step():
        out = layer.forward(x)
        layer.backward(out)
        layer.zero_grad()

    return _best_of(step, reps)


def _pool_step_seconds(layer, x, reps):
    def step():
        out = layer.forward(x)
        layer.backward(out)

    return _best_of(step, reps)


def _train_throughput(precision, legacy=False):
    """Best-of-N training throughput (fresh model per repetition)."""
    rng = np.random.default_rng(0)
    images = rng.random((SAMPLES, 3, IMAGE_SIZE, IMAGE_SIZE))
    labels = rng.integers(0, CLASSES, SAMPLES)
    kwargs = {} if precision is None else {"precision": precision}
    best_seconds, history = float("inf"), None
    for _ in range(1 if QUICK else 2):
        model = get_architecture("MobileNetV2", num_classes=CLASSES).build(
            num_classes=CLASSES, width_multiplier=0.35, rng=0
        )
        trainer = Trainer(
            TrainingConfig(epochs=EPOCHS, batch_size=BATCH, seed=0, **kwargs)
        )
        start = time.perf_counter()
        if legacy:
            with legacy_conv_kernels():
                history = trainer.fit(model, images, labels)
        else:
            history = trainer.fit(model, images, labels)
        best_seconds = min(best_seconds, time.perf_counter() - start)
    return EPOCHS * SAMPLES / best_seconds, history


def test_bench_nn(benchmark):
    rng = np.random.default_rng(0)

    def harness():
        results = {"layers": {}, "im2col": {}, "end_to_end": {}}

        # -- per-layer forward+backward, old vs new, float64 vs float32 -------
        layer_cases = {
            "conv3x3": lambda: Conv2d(16, 32, 3, rng=0),
            "conv1x1": lambda: Conv2d(32, 64, 1, padding=0, rng=0),
            "depthwise3x3": lambda: DepthwiseConv2d(32, 3, rng=0),
        }
        x64 = rng.random((BATCH, 16, 16, 16))
        inputs = {
            "conv3x3": x64,
            "conv1x1": rng.random((BATCH, 32, 16, 16)),
            "depthwise3x3": rng.random((BATCH, 32, 16, 16)),
        }
        for name, build in layer_cases.items():
            entry = {}
            with legacy_conv_kernels(convs_only=True):
                entry["legacy_float64_us"] = (
                    _layer_step_seconds(build(), inputs[name], REPS) * 1e6
                )
            entry["new_float64_us"] = (
                _layer_step_seconds(build(), inputs[name], REPS) * 1e6
            )
            layer32 = build().astype(np.float32)
            entry["new_float32_us"] = (
                _layer_step_seconds(
                    layer32, inputs[name].astype(np.float32), REPS
                )
                * 1e6
            )
            entry["kernel_speedup"] = entry["legacy_float64_us"] / entry["new_float64_us"]
            entry["float32_speedup"] = entry["legacy_float64_us"] / entry["new_float32_us"]
            results["layers"][name] = entry

        pool = MaxPool2d(2)
        xp = rng.random((BATCH, 32, 16, 16))
        results["layers"]["maxpool2x2"] = {
            "new_float64_us": _pool_step_seconds(pool, xp, REPS) * 1e6,
        }

        # -- im2col: strided unfold vs the seed's Python loop -----------------
        xi = rng.random((BATCH, 32, 16, 16))
        new_s = _best_of(lambda: im2col(xi, 3, 3, 1, 1), REPS)
        ref_s = _best_of(lambda: im2col_reference(xi, 3, 3, 1, 1), REPS)
        assert np.array_equal(
            im2col(xi, 3, 3, 1, 1), im2col_reference(xi, 3, 3, 1, 1)
        )
        results["im2col"] = {
            "new_us": new_s * 1e6,
            "reference_us": ref_s * 1e6,
            "speedup": ref_s / new_s,
        }

        # -- end-to-end child training ----------------------------------------
        legacy_tput, legacy_history = _train_throughput(None, legacy=True)
        new64_tput, new64_history = _train_throughput(None)
        new32_tput, _ = _train_throughput("float32")
        results["end_to_end"] = {
            "config": {
                "model": "MobileNetV2(w=0.35)",
                "image_size": IMAGE_SIZE,
                "samples": SAMPLES,
                "epochs": EPOCHS,
                "batch_size": BATCH,
            },
            "legacy_float64_samples_per_s": legacy_tput,
            "new_float64_samples_per_s": new64_tput,
            "new_float32_samples_per_s": new32_tput,
            "float64_kernel_speedup": new64_tput / legacy_tput,
            "float32_total_speedup": new32_tput / legacy_tput,
        }
        results["float64_parity"] = {
            "max_abs_loss_diff": float(
                max(
                    abs(a - b)
                    for a, b in zip(legacy_history.losses, new64_history.losses)
                )
            ),
            "accuracies_identical": legacy_history.accuracies
            == new64_history.accuracies,
        }
        return results

    results = run_once(benchmark, harness)

    # The float64 rewrite tracks the seed kernels to last-ulp accumulation
    # (einsum and direct GEMM round differently at some shapes) and must not
    # move a single prediction.
    parity = results["float64_parity"]
    assert parity["max_abs_loss_diff"] < 1e-9, parity
    assert parity["accuracies_identical"], parity
    end = results["end_to_end"]
    # Headline: float32 on the new kernels clears the seed float64 stack by
    # ~2x on an unloaded machine; assert with headroom for CI noise.
    assert end["float32_total_speedup"] >= 1.6, end
    assert end["float64_kernel_speedup"] >= 1.0, end

    output_path = os.environ.get("BENCH_NN_JSON", "BENCH_nn.json")
    with open(output_path, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)

    print(
        f"\nnn bench (MobileNetV2 w=0.35 @ {IMAGE_SIZE}px, {EPOCHS}x{SAMPLES} samples): "
        f"seed float64 {end['legacy_float64_samples_per_s']:.0f} samples/s, "
        f"new float64 {end['new_float64_samples_per_s']:.0f} "
        f"(x{end['float64_kernel_speedup']:.2f}), "
        f"new float32 {end['new_float32_samples_per_s']:.0f} "
        f"(x{end['float32_total_speedup']:.2f} vs seed)"
    )
    for name, entry in results["layers"].items():
        if "legacy_float64_us" in entry:
            print(
                f"  {name}: legacy {entry['legacy_float64_us']:.0f}us -> "
                f"new {entry['new_float64_us']:.0f}us "
                f"(x{entry['kernel_speedup']:.2f}); float32 "
                f"{entry['new_float32_us']:.0f}us (x{entry['float32_speedup']:.2f})"
            )
    print(
        f"  im2col 3x3: reference {results['im2col']['reference_us']:.0f}us -> "
        f"strided {results['im2col']['new_us']:.0f}us "
        f"(x{results['im2col']['speedup']:.2f}); results in {output_path}"
    )
