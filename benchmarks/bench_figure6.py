"""Benchmark: regenerate Figure 6 (accuracy/unfairness Pareto frontiers)."""

from __future__ import annotations

from conftest import run_once

from repro.experiments import figure6


def test_bench_figure6(benchmark, bench_preset):
    result = run_once(benchmark, figure6.run, preset=bench_preset, seed=0)
    rendered = figure6.render(result)
    # each group has a non-empty frontier and it is a subset of the group rows
    assert result.frontier_g1 and result.frontier_g2
    g1_names = {row.evaluation.name for row in result.table3.group_rows(1)}
    assert {r.evaluation.name for r in result.frontier_g1} <= g1_names
    print("\n" + rendered)
