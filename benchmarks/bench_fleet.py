"""Benchmark: fleet wave completion time under injected faults.

Stands up a real ``RunService`` daemon (port 0) with a fast supervision
contract, joins worker-agent threads over HTTP, and times
``RemoteWorkerPool.map_ordered`` waves through three scenarios:

* **baseline** -- two healthy agents, no faults: the fabric's intrinsic
  overhead (lease polls, heartbeats, completion round trips).
* **kill-agent** -- the only agent dies abruptly after leasing its first
  task; a healthy agent joins after the death.  The wave must still
  complete (every result correct, in order), and the extra wall time is the
  price of one dead-agent detection plus a lease reassignment.
* **lossy-transport** -- dropped lease/complete calls and duplicated
  completions on a deterministic schedule: retries and fencing in steady
  state.

Every scenario asserts the results are exactly what a local map would have
produced -- a slow wave is a finding, a wrong wave is a failure.  Results go
to ``BENCH_fleet.json`` (override with ``BENCH_FLEET_JSON``);
``BENCH_FLEET_QUICK=1`` shrinks the wave for CI.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time

from conftest import run_once

from repro.fleet import (
    ChaosPolicy,
    FleetConfig,
    RemoteWorkerPool,
    RetryPolicy,
    WorkerAgent,
)
from repro.service.daemon import RunService

QUICK = os.environ.get("BENCH_FLEET_QUICK", "") not in ("", "0")
WAVE_TASKS = 8 if QUICK else 32

CONFIG = FleetConfig(
    heartbeat_interval=0.1,
    miss_factor=3.0,
    lease_seconds=0.6,
    poll_interval=0.02,
)
RETRY = RetryPolicy(max_attempts=3, base_delay=0.02, max_delay=0.05)


def _task(x):
    # A sliver of real work, so the numbers measure supervision overhead
    # rather than an empty round trip.
    total = 0
    for i in range(200):
        total += (x + i) * (x + i)
    return total


def _start_agent(url, name, chaos=None):
    agent = WorkerAgent(
        url, name=name, chaos=chaos, retry=RETRY, register_timeout=10.0
    )
    thread = threading.Thread(target=agent.run, daemon=True, name=f"agent-{name}")
    thread.start()
    return agent, thread


def _stop_agents(*pairs):
    for agent, _thread in pairs:
        agent.stop()
    for _agent, thread in pairs:
        thread.join(timeout=10)


def _wait_for_agents(supervisor, count, timeout=10.0):
    deadline = time.monotonic() + timeout
    while supervisor.alive_agents() < count:
        assert time.monotonic() < deadline, f"fleet never reached {count} agents"
        time.sleep(0.01)


def _timed_wave(service):
    pool = RemoteWorkerPool(supervisor=service.supervisor)
    payloads = list(range(WAVE_TASKS))
    start = time.perf_counter()
    results = pool.map_ordered(_task, payloads)
    seconds = time.perf_counter() - start
    assert [value for value, _label in results] == [_task(p) for p in payloads]
    return seconds, results


def _scenario_baseline(service):
    pairs = [
        _start_agent(service.url, "steady-a"),
        _start_agent(service.url, "steady-b"),
    ]
    try:
        _wait_for_agents(service.supervisor, 2)
        seconds, _results = _timed_wave(service)
        return {"seconds": seconds, "tasks": WAVE_TASKS}
    finally:
        _stop_agents(*pairs)


def _scenario_kill_agent(service):
    before = service.supervisor.reassignments
    chaos = ChaosPolicy(kill_on_task=0)
    doomed, doomed_thread = _start_agent(service.url, "doomed", chaos=chaos)
    healthy = None
    try:
        _wait_for_agents(service.supervisor, 1)
        waver = {}

        def wave():
            waver["seconds"], waver["results"] = _timed_wave(service)

        runner = threading.Thread(target=wave, name="bench-wave")
        runner.start()
        doomed_thread.join(timeout=30)  # dies holding its first lease
        assert doomed.killed, "chaos kill never fired"
        healthy = _start_agent(service.url, "healthy")
        runner.join(timeout=60)
        assert "seconds" in waver, "the disturbed wave never completed"
        reassigned = service.supervisor.reassignments - before
        assert reassigned >= 1, "the killed agent's lease was never reassigned"
        return {
            "seconds": waver["seconds"],
            "tasks": WAVE_TASKS,
            "reassignments": reassigned,
            "detection_budget_seconds": CONFIG.agent_timeout,
        }
    finally:
        if healthy is not None:
            _stop_agents(healthy)
        doomed.stop()
        doomed_thread.join(timeout=10)


def _scenario_lossy_transport(service):
    chaos = ChaosPolicy(
        drop={"lease": {0, 4}, "complete": {1}},
        duplicate={"complete": {0, 2}},
    )
    pair = _start_agent(service.url, "lossy", chaos=chaos)
    try:
        _wait_for_agents(service.supervisor, 1)
        seconds, _results = _timed_wave(service)
        return {
            "seconds": seconds,
            "tasks": WAVE_TASKS,
            "dropped": chaos.dropped,
            "duplicated": chaos.duplicated,
            "stale_completions_fenced": service.supervisor.stale_completions,
        }
    finally:
        _stop_agents(pair)


def test_bench_fleet(benchmark):
    def harness():
        with tempfile.TemporaryDirectory(prefix="bench-fleet-") as root:
            service = RunService(
                os.path.join(root, "runs"), port=0, fleet=CONFIG
            ).start()
            try:
                return {
                    "baseline": _scenario_baseline(service),
                    "kill_agent": _scenario_kill_agent(service),
                    "lossy_transport": _scenario_lossy_transport(service),
                }
            finally:
                service.shutdown()

    scenarios = run_once(benchmark, harness)

    baseline = scenarios["baseline"]["seconds"]
    recovery_overhead = scenarios["kill_agent"]["seconds"] - baseline
    payload = {
        "quick": QUICK,
        "wave_tasks": WAVE_TASKS,
        "heartbeat_interval_s": CONFIG.heartbeat_interval,
        "lease_seconds": CONFIG.lease_seconds,
        "agent_timeout_s": CONFIG.agent_timeout,
        "scenarios": scenarios,
        "kill_recovery_overhead_seconds": recovery_overhead,
    }
    output_path = os.environ.get("BENCH_FLEET_JSON", "BENCH_fleet.json")
    with open(output_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)

    print(
        f"\nfleet bench ({WAVE_TASKS}-task waves): baseline "
        f"{baseline:.2f}s, kill-agent "
        f"{scenarios['kill_agent']['seconds']:.2f}s "
        f"({scenarios['kill_agent']['reassignments']} reassignment(s), "
        f"detection budget {CONFIG.agent_timeout:.2f}s), lossy transport "
        f"{scenarios['lossy_transport']['seconds']:.2f}s "
        f"({scenarios['lossy_transport']['dropped']} dropped / "
        f"{scenarios['lossy_transport']['duplicated']} duplicated); "
        f"results in {output_path}"
    )
