"""Benchmark: regenerate Table 2 (freezing effectiveness, MONAS vs FaHaNa)."""

from __future__ import annotations

from conftest import run_once

from repro.experiments import table2


def test_bench_table2(benchmark, bench_preset):
    result = run_once(benchmark, table2.run, preset=bench_preset, seed=0, episodes=2)
    rendered = table2.render(result)
    fahana_space = result.runs["FaHaNa"]["tight"].history.space_size
    monas_space = result.runs["MONAS"]["tight"].history.space_size
    # freezing shrinks the search space (the paper reports 1e19 -> 1e9)
    assert fahana_space < monas_space
    # FaHaNa trains only the searchable tail, so its per-episode cost is lower
    assert result.speedup("relaxed") > 0
    print("\n" + rendered)
