"""Benchmark: the content-addressed artifact store and the shared cache tier.

Two measurements:

* **per-op latency** -- PUT/GET round trips over 4 KiB payloads against a
  :class:`~repro.store.core.LocalStore` (filesystem) and a
  :class:`~repro.store.remote.RemoteStore` talking to a live
  ``RunService`` daemon over HTTP.  Reported as mean milliseconds per
  operation, the unit a capacity plan needs.
* **cold vs warm search** -- one ``bench``-scale search run twice against
  the same daemon's shared evaluation-cache tier (``store_url``).  The cold
  run trains every child and publishes its results; the warm run is a fresh
  engine (empty local caches) that must serve every episode from the tier
  without training anything.  Asserts the headline guarantee: warm wall
  time at least 2x faster than cold, zero evaluations run, and the same
  rewards.

Results go to ``BENCH_store.json`` (override with ``BENCH_STORE_JSON``);
``BENCH_STORE_QUICK=1`` shrinks the op counts for CI.
"""

from __future__ import annotations

import json
import os
import tempfile
import time

from conftest import run_once

import repro
from repro.engine import EngineConfig
from repro.experiments.common import prepare_data, search_spec
from repro.service.daemon import RunService
from repro.store import LocalStore, RemoteStore

QUICK = os.environ.get("BENCH_STORE_QUICK", "") not in ("", "0")
OBJECT_OPS = 64 if QUICK else 256
OBJECT_BYTES = 4096
EPISODES = 3


def _payloads(count):
    # Distinct deterministic payloads: os.urandom would make keys (and any
    # dedupe accidents) run-dependent.
    return [
        (f"object-{index:06d}-".encode("ascii") * (OBJECT_BYTES // 14 + 1))[
            :OBJECT_BYTES
        ]
        for index in range(count)
    ]


def _timed_ops(store, payloads):
    start = time.perf_counter()
    keys = [store.put(data) for data in payloads]
    put_seconds = time.perf_counter() - start
    start = time.perf_counter()
    for key in keys:
        assert store.get(key) is not None
    get_seconds = time.perf_counter() - start
    return {
        "ops": len(payloads),
        "object_bytes": OBJECT_BYTES,
        "put_ms_per_op": put_seconds / len(payloads) * 1e3,
        "get_ms_per_op": get_seconds / len(payloads) * 1e3,
    }


def _scenario_op_latency(service, root):
    local = _timed_ops(LocalStore(os.path.join(root, "local-bench")), _payloads(OBJECT_OPS))
    remote = _timed_ops(RemoteStore(service.url), _payloads(OBJECT_OPS))
    return {"local": local, "remote": remote}


def _timed_search(spec, splits, url):
    start = time.perf_counter()
    report = repro.run(
        spec,
        engine=EngineConfig(use_cache=True, store_url=url),
        train_dataset=splits.train,
        validation_dataset=splits.validation,
    )
    return report, time.perf_counter() - start


def _scenario_cold_vs_warm(service, preset):
    splits = prepare_data(preset, seed=0).splits
    spec = search_spec(
        preset, "fahana", episodes=EPISODES, seed=0, timing_constraint_ms=1e6
    )
    cold_report, cold_seconds = _timed_search(spec, splits, service.url)
    assert cold_report.evaluations_run > 0, "the cold run trained nothing"
    warm_report, warm_seconds = _timed_search(spec, splits, service.url)
    assert warm_report.evaluations_run == 0, (
        "the warm run re-trained despite the shared tier"
    )
    assert (
        warm_report.history.reward_trajectory()
        == cold_report.history.reward_trajectory()
    ), "remote-hit rewards differ from the locally computed ones"
    assert warm_seconds * 2 <= cold_seconds, (
        f"warm run ({warm_seconds:.2f}s) is not >=2x faster than cold "
        f"({cold_seconds:.2f}s)"
    )
    return {
        "episodes": EPISODES,
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "speedup": cold_seconds / warm_seconds,
        "cold_evaluations": cold_report.evaluations_run,
        "warm_evaluations": warm_report.evaluations_run,
        "store_stats": service.store.stats(),
    }


def test_bench_store(benchmark, bench_preset):
    def harness():
        with tempfile.TemporaryDirectory(prefix="bench-store-") as root:
            service = RunService(os.path.join(root, "runs"), port=0).start()
            try:
                return {
                    "op_latency": _scenario_op_latency(service, root),
                    "shared_tier": _scenario_cold_vs_warm(service, bench_preset),
                }
            finally:
                service.shutdown()

    scenarios = run_once(benchmark, harness)

    payload = {"quick": QUICK, "scenarios": scenarios}
    output_path = os.environ.get("BENCH_STORE_JSON", "BENCH_store.json")
    with open(output_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)

    ops = scenarios["op_latency"]
    tier = scenarios["shared_tier"]
    print(
        f"\nstore bench: local put/get "
        f"{ops['local']['put_ms_per_op']:.3f}/{ops['local']['get_ms_per_op']:.3f} "
        f"ms/op, remote put/get "
        f"{ops['remote']['put_ms_per_op']:.3f}/{ops['remote']['get_ms_per_op']:.3f} "
        f"ms/op ({OBJECT_OPS} x {OBJECT_BYTES} B); shared tier cold "
        f"{tier['cold_seconds']:.2f}s -> warm {tier['warm_seconds']:.2f}s "
        f"({tier['speedup']:.1f}x); results in {output_path}"
    )
