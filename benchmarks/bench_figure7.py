"""Benchmark: regenerate Figure 7 (FaHaNa-Fair architecture visualisation)."""

from __future__ import annotations

from conftest import run_once

from repro.experiments import figure7


def test_bench_figure7(benchmark):
    result = run_once(benchmark, figure7.run)
    rendered = figure7.render(result)
    assert result.descriptor.name == "FaHaNa-Fair"
    assert result.tail_uses_larger_blocks
    assert "Conv 7x7" in rendered
    print("\n" + rendered)
