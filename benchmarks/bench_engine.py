"""Benchmark: the search engine versus the sequential seed loop.

Runs one declarative :class:`~repro.api.spec.RunSpec` (at the ``bench``
scale) through ``repro.run`` under different engine configurations:

* the sequential reference loop (serial backend, cache off) -- the seed
  repository's original execution model,
* the thread backend evaluating a whole policy batch concurrently,
* a warm-cache replay, where every episode is served from the
  content-addressed evaluation cache,
* the process backend with and without the shared-evaluator worker
  initializer (``EngineConfig.share_evaluator``), reporting how much
  shipping the evaluator once per worker saves over re-pickling it per task.

Asserts the engine's headline guarantees: backend-independent rewards and
training-free cache replays.
"""

from __future__ import annotations

import time

from conftest import run_once

import repro
from repro.engine import EngineConfig, EvaluationCache
from repro.experiments.common import prepare_data, search_spec

EPISODES = 4


def _spec(preset) -> "repro.RunSpec":
    spec = search_spec(preset, "fahana", episodes=EPISODES, seed=0)
    # One policy batch spans the whole run, so every backend evaluates the
    # same sampled children and parallelism is observable.
    return spec.with_overrides(values={"search.policy_batch": EPISODES})


def _timed_run(spec, splits, engine: EngineConfig):
    start = time.perf_counter()
    report = repro.run(
        spec,
        engine=engine,
        train_dataset=splits.train,
        validation_dataset=splits.validation,
    )
    return report, time.perf_counter() - start


def test_bench_engine(benchmark, bench_preset):
    splits = prepare_data(bench_preset, seed=0).splits
    spec = _spec(bench_preset)

    def harness():
        serial, serial_seconds = _timed_run(spec, splits, EngineConfig())
        threaded, thread_seconds = _timed_run(
            spec, splits, EngineConfig(backend="thread", num_workers=2)
        )
        cache = EvaluationCache(capacity=256)
        _timed_run(spec, splits, EngineConfig(use_cache=True, cache=cache))
        warm, warm_seconds = _timed_run(
            spec, splits, EngineConfig(use_cache=True, cache=cache)
        )
        shared, shared_seconds = _timed_run(
            spec,
            splits,
            EngineConfig(backend="process", num_workers=2, share_evaluator=True),
        )
        unshared, unshared_seconds = _timed_run(
            spec,
            splits,
            EngineConfig(backend="process", num_workers=2, share_evaluator=False),
        )
        return {
            "serial": serial,
            "threaded": threaded,
            "warm": warm,
            "shared": shared,
            "unshared": unshared,
            "serial_seconds": serial_seconds,
            "thread_seconds": thread_seconds,
            "warm_seconds": warm_seconds,
            "shared_seconds": shared_seconds,
            "unshared_seconds": unshared_seconds,
        }

    outcome = run_once(benchmark, harness)

    # Backend independence: identical rewards regardless of execution backend.
    reference = outcome["serial"].history.reward_trajectory()
    assert outcome["threaded"].history.reward_trajectory() == reference
    assert outcome["shared"].history.reward_trajectory() == reference
    assert outcome["unshared"].history.reward_trajectory() == reference
    # A warm cache replays the search without a single training run.
    assert outcome["warm"].evaluations_run == 0
    assert all(record.cache_hit for record in outcome["warm"].history.records)

    print(
        f"\nengine bench ({EPISODES} episodes): "
        f"serial {outcome['serial_seconds']:.2f}s, "
        f"thread {outcome['thread_seconds']:.2f}s "
        f"(speedup x{outcome['serial_seconds'] / max(outcome['thread_seconds'], 1e-9):.2f}), "
        f"warm cache {outcome['warm_seconds']:.2f}s "
        f"(hit rate {outcome['warm'].cache_hit_rate:.0%})"
    )
    print(
        f"process backend: shared evaluator {outcome['shared_seconds']:.2f}s vs "
        f"per-task pickling {outcome['unshared_seconds']:.2f}s "
        f"(initializer saves "
        f"{outcome['unshared_seconds'] - outcome['shared_seconds']:+.2f}s)"
    )
