"""Benchmark: the search engine versus the sequential seed loop.

Runs one declarative :class:`~repro.api.spec.RunSpec` (at the ``bench``
scale) through ``repro.run`` under different engine configurations:

* the sequential reference loop (serial backend, cache off) -- the seed
  repository's original execution model,
* the thread backend evaluating a whole policy batch concurrently,
* a warm-cache replay, where every episode is served from the
  content-addressed evaluation cache,
* the process backend with and without the shared-evaluator worker
  initializer (``EngineConfig.share_evaluator``), reporting how much
  shipping the evaluator once per worker saves over re-pickling it per task,
* the process backend with and without per-worker BLAS thread pinning
  (``EngineConfig.blas_threads_per_worker``): N worker processes x M BLAS
  threads oversubscribe the cores, so the initializer pins each worker to
  one BLAS thread by default and the delta is reported here,
* a staged multi-fidelity run (proxy stage at reduced epochs/data, top half
  of each wave promoted to full training), reporting how many full-fidelity
  trainings the successive-halving schedule saves at the same episode budget.

Asserts the engine's headline guarantees: backend-independent rewards,
training-free cache replays, and >= 2x fewer full-fidelity trainings under
the multi-fidelity schedule.  Results are written to ``BENCH_engine.json``
(override the location with the ``BENCH_ENGINE_JSON`` environment variable)
so CI can archive the perf trajectory.
"""

from __future__ import annotations

import json
import os
import time

from conftest import run_once

import repro
from repro.engine import EngineConfig, EvaluationCache
from repro.experiments.common import prepare_data, search_spec

EPISODES = 4

MULTI_FIDELITY_EVALUATION = {
    "fidelities": [
        {"name": "proxy", "epochs": 1, "data_fraction": 0.5, "promote_fraction": 0.5},
        {"name": "full"},
    ]
}


def _spec(preset) -> "repro.RunSpec":
    # The loose timing constraint keeps every sampled child trainable: at the
    # bench scale the 1500 ms default rejects the whole wave at the latency
    # gate, which would leave nothing for the backends (or the fidelity
    # ladder) to actually evaluate.
    spec = search_spec(
        preset, "fahana", episodes=EPISODES, seed=0, timing_constraint_ms=1e6
    )
    # One policy batch spans the whole run, so every backend evaluates the
    # same sampled children and parallelism is observable.
    return spec.with_overrides(values={"search.policy_batch": EPISODES})


def _timed_run(spec, splits, engine: EngineConfig):
    start = time.perf_counter()
    report = repro.run(
        spec,
        engine=engine,
        train_dataset=splits.train,
        validation_dataset=splits.validation,
    )
    return report, time.perf_counter() - start


def test_bench_engine(benchmark, bench_preset):
    splits = prepare_data(bench_preset, seed=0).splits
    spec = _spec(bench_preset)

    def harness():
        serial, serial_seconds = _timed_run(spec, splits, EngineConfig())
        threaded, thread_seconds = _timed_run(
            spec, splits, EngineConfig(backend="thread", num_workers=2)
        )
        cache = EvaluationCache(capacity=256)
        _timed_run(spec, splits, EngineConfig(use_cache=True, cache=cache))
        warm, warm_seconds = _timed_run(
            spec, splits, EngineConfig(use_cache=True, cache=cache)
        )
        shared, shared_seconds = _timed_run(
            spec,
            splits,
            EngineConfig(backend="process", num_workers=2, share_evaluator=True),
        )
        unshared, unshared_seconds = _timed_run(
            spec,
            splits,
            EngineConfig(backend="process", num_workers=2, share_evaluator=False),
        )
        unpinned, unpinned_seconds = _timed_run(
            spec,
            splits,
            EngineConfig(
                backend="process", num_workers=2, blas_threads_per_worker=None
            ),
        )
        staged_spec = repro.RunSpec.from_dict(
            {**spec.to_dict(), "evaluation": MULTI_FIDELITY_EVALUATION}
        )
        staged, staged_seconds = _timed_run(staged_spec, splits, EngineConfig())
        return {
            "serial": serial,
            "threaded": threaded,
            "warm": warm,
            "shared": shared,
            "unshared": unshared,
            "unpinned": unpinned,
            "staged": staged,
            "serial_seconds": serial_seconds,
            "thread_seconds": thread_seconds,
            "warm_seconds": warm_seconds,
            "shared_seconds": shared_seconds,
            "unshared_seconds": unshared_seconds,
            "unpinned_seconds": unpinned_seconds,
            "staged_seconds": staged_seconds,
        }

    outcome = run_once(benchmark, harness)

    # Backend independence: identical rewards regardless of execution backend.
    reference = outcome["serial"].history.reward_trajectory()
    assert outcome["threaded"].history.reward_trajectory() == reference
    assert outcome["shared"].history.reward_trajectory() == reference
    assert outcome["unshared"].history.reward_trajectory() == reference
    # BLAS pinning changes scheduling, never results.
    assert outcome["unpinned"].history.reward_trajectory() == reference
    # A warm cache replays the search without a single training run.
    assert outcome["warm"].evaluations_run == 0
    assert all(record.cache_hit for record in outcome["warm"].history.records)
    # The multi-fidelity schedule completes the same episode budget with at
    # least 2x fewer full-fidelity trainings (top half of each wave promoted).
    serial_full = outcome["serial"].evaluations_by_fidelity.get("full", 0)
    staged_full = outcome["staged"].evaluations_by_fidelity.get("full", 0)
    assert len(outcome["staged"].history) == EPISODES
    assert serial_full > 0 and staged_full * 2 <= serial_full

    payload = {
        "episodes": EPISODES,
        "seconds": {
            "serial": outcome["serial_seconds"],
            "thread": outcome["thread_seconds"],
            "warm_cache": outcome["warm_seconds"],
            "process_shared": outcome["shared_seconds"],
            "process_unshared": outcome["unshared_seconds"],
            "process_blas_unpinned": outcome["unpinned_seconds"],
            "multi_fidelity": outcome["staged_seconds"],
        },
        "blas_pinning_savings_seconds": outcome["unpinned_seconds"]
        - outcome["shared_seconds"],
        "thread_speedup": outcome["serial_seconds"]
        / max(outcome["thread_seconds"], 1e-9),
        "warm_cache_hit_rate": outcome["warm"].cache_hit_rate,
        "full_trainings": {"single_stage": serial_full, "multi_fidelity": staged_full},
        "trainings_by_fidelity": dict(outcome["staged"].evaluations_by_fidelity),
        "full_training_savings": 1.0 - staged_full / max(serial_full, 1),
    }
    output_path = os.environ.get("BENCH_ENGINE_JSON", "BENCH_engine.json")
    with open(output_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)

    print(
        f"\nengine bench ({EPISODES} episodes): "
        f"serial {outcome['serial_seconds']:.2f}s, "
        f"thread {outcome['thread_seconds']:.2f}s "
        f"(speedup x{outcome['serial_seconds'] / max(outcome['thread_seconds'], 1e-9):.2f}), "
        f"warm cache {outcome['warm_seconds']:.2f}s "
        f"(hit rate {outcome['warm'].cache_hit_rate:.0%})"
    )
    print(
        f"process backend: shared evaluator {outcome['shared_seconds']:.2f}s vs "
        f"per-task pickling {outcome['unshared_seconds']:.2f}s "
        f"(initializer saves "
        f"{outcome['unshared_seconds'] - outcome['shared_seconds']:+.2f}s); "
        f"BLAS pinned (1 thread/worker) {outcome['shared_seconds']:.2f}s vs "
        f"unpinned {outcome['unpinned_seconds']:.2f}s "
        f"(pinning saves "
        f"{outcome['unpinned_seconds'] - outcome['shared_seconds']:+.2f}s)"
    )
    print(
        f"multi-fidelity: {staged_full} full trainings vs {serial_full} "
        f"single-stage ({payload['full_training_savings']:.0%} fewer) in "
        f"{outcome['staged_seconds']:.2f}s; results in {output_path}"
    )
