"""Benchmark: the search engine versus the sequential seed loop.

Measures (at the ``bench`` scale):

* the sequential reference loop (serial backend, cache off) -- this is the
  seed repository's original execution model,
* the thread backend evaluating a whole policy batch concurrently,
* a warm-cache replay, where every episode is served from the
  content-addressed evaluation cache.

Reports the thread-backend speedup and the warm-run cache hit-rate, and
asserts the engine's two headline guarantees: backend-independent rewards
and training-free cache replays.
"""

from __future__ import annotations

import time

from conftest import run_once

from repro.core import FaHaNaConfig, FaHaNaSearch, ProducerConfig
from repro.core.api import default_design_spec
from repro.core.policy import PolicyGradientConfig
from repro.engine import EngineConfig, EvaluationCache, SearchEngine
from repro.experiments.common import prepare_data
from repro.nn.trainer import TrainingConfig

EPISODES = 4


def _make_search(preset, splits) -> FaHaNaSearch:
    config = FaHaNaConfig(
        episodes=EPISODES,
        seed=0,
        producer=ProducerConfig(
            backbone="MobileNetV2",
            freeze=True,
            pretrain_epochs=preset.pretrain_epochs,
            width_multiplier=preset.width_multiplier,
            max_searchable=preset.max_searchable,
        ),
        # One policy batch spans the whole run, so every backend evaluates
        # the same sampled children and parallelism is observable.
        policy=PolicyGradientConfig(batch_episodes=EPISODES),
        child_training=TrainingConfig(
            epochs=preset.child_epochs, batch_size=preset.batch_size, seed=0
        ),
    )
    return FaHaNaSearch(
        splits.train, splits.validation, default_design_spec(), config
    )


def _timed_run(engine: SearchEngine):
    start = time.perf_counter()
    result = engine.run()
    return result, time.perf_counter() - start


def test_bench_engine(benchmark, bench_preset):
    splits = prepare_data(bench_preset, seed=0).splits

    def harness():
        serial, serial_seconds = _timed_run(
            SearchEngine(_make_search(bench_preset, splits), EngineConfig())
        )
        threaded, thread_seconds = _timed_run(
            SearchEngine(
                _make_search(bench_preset, splits),
                EngineConfig(backend="thread", num_workers=2),
            )
        )
        cache = EvaluationCache(capacity=256)
        SearchEngine(
            _make_search(bench_preset, splits),
            EngineConfig(use_cache=True, cache=cache),
        ).run()
        warm_engine = SearchEngine(
            _make_search(bench_preset, splits),
            EngineConfig(use_cache=True, cache=cache),
        )
        warm, warm_seconds = _timed_run(warm_engine)
        return {
            "serial": serial,
            "threaded": threaded,
            "warm": warm,
            "serial_seconds": serial_seconds,
            "thread_seconds": thread_seconds,
            "warm_seconds": warm_seconds,
            "warm_evaluations": warm_engine.evaluations_run,
            "warm_hit_rate": cache.hit_rate,
        }

    outcome = run_once(benchmark, harness)

    # Backend independence: identical rewards regardless of execution backend.
    assert (
        outcome["serial"].history.reward_trajectory()
        == outcome["threaded"].history.reward_trajectory()
    )
    # A warm cache replays the search without a single training run.
    assert outcome["warm_evaluations"] == 0
    assert all(record.cache_hit for record in outcome["warm"].history.records)

    print(
        f"\nengine bench ({EPISODES} episodes): "
        f"serial {outcome['serial_seconds']:.2f}s, "
        f"thread {outcome['thread_seconds']:.2f}s "
        f"(speedup x{outcome['serial_seconds'] / max(outcome['thread_seconds'], 1e-9):.2f}), "
        f"warm cache {outcome['warm_seconds']:.2f}s "
        f"(hit rate {outcome['warm_hit_rate']:.0%})"
    )
