"""Benchmark: the observability layer's overhead budget.

Runs the same declarative spec (bench scale, explicit all-default engine so
the suite's shared warm cache cannot mask training cost) with instrumentation
enabled and disabled (:func:`repro.obs.set_enabled`), interleaved to cancel
machine drift, and asserts the enforced budget: default-on metrics + spans
cost **at most 3%** wall time over the kill-switch baseline.  Also asserts
the observes-never-steers invariant at the reward level -- the instrumented
and dark runs produce identical reward trajectories.

Results are written to ``BENCH_obs.json`` (override with the
``BENCH_OBS_JSON`` environment variable) so CI archives the overhead
trajectory next to the engine and kernel benchmarks.
"""

from __future__ import annotations

import json
import os
import time

from conftest import run_once

import repro
from repro.engine import EngineConfig
from repro.experiments.common import prepare_data, search_spec
from repro.obs import metrics as obs_metrics

EPISODES = 4
PAIRS = 5
MAX_OVERHEAD = 0.03


def _spec(preset):
    spec = search_spec(
        preset, "fahana", episodes=EPISODES, seed=0, timing_constraint_ms=1e6
    )
    return spec.with_overrides(values={"search.policy_batch": EPISODES})


def _timed_run(spec, splits, enabled: bool):
    previous = obs_metrics.set_enabled(enabled)
    try:
        start = time.perf_counter()
        # Explicit EngineConfig(): bypasses the benchmark session's default
        # (shared warm cache), so every episode pays for real training and
        # the ratio measures instrumentation against actual work.
        report = repro.run(
            spec,
            engine=EngineConfig(),
            train_dataset=splits.train,
            validation_dataset=splits.validation,
        )
        return report, time.perf_counter() - start
    finally:
        obs_metrics.set_enabled(previous)


def test_bench_obs_overhead(benchmark, bench_preset):
    splits = prepare_data(bench_preset, seed=0).splits
    spec = _spec(bench_preset)

    def harness():
        # Warm-up: backbone pretraining and numpy buffers, outside the clock.
        warm, _ = _timed_run(spec, splits, enabled=True)
        on_seconds, off_seconds = [], []
        on_report = warm
        off_report = None
        for _ in range(PAIRS):
            off_report, off = _timed_run(spec, splits, enabled=False)
            on_report, on = _timed_run(spec, splits, enabled=True)
            on_seconds.append(on)
            off_seconds.append(off)
        return {
            "on": on_seconds,
            "off": off_seconds,
            "on_report": on_report,
            "off_report": off_report,
        }

    outcome = run_once(benchmark, harness)
    # Min-over-pairs: the fastest observed run of each arm is the one least
    # disturbed by scheduler/frequency noise, so their ratio isolates the
    # instrumentation cost (single-pair ratios swing far wider than 3%).
    on_best = min(outcome["on"])
    off_best = min(outcome["off"])
    overhead = on_best / off_best - 1.0

    # Observability observes, it never steers: identical rewards either way.
    assert (
        outcome["on_report"].history.reward_trajectory()
        == outcome["off_report"].history.reward_trajectory()
    )
    # The instrumented run actually recorded its work...
    episodes_counted = sum(
        sample["value"]
        for sample in outcome["on_report"].metrics[
            "repro_engine_episodes_total"
        ]["samples"]
    )
    assert episodes_counted == EPISODES
    # ...and the dark run recorded nothing.
    assert not any(
        sample.get("value") or sample.get("count")
        for payload in outcome["off_report"].metrics.values()
        for sample in payload["samples"]
    )
    # The enforced budget: default-on instrumentation costs at most 3%.
    assert overhead <= MAX_OVERHEAD, (
        f"observability overhead {overhead:.1%} exceeds the {MAX_OVERHEAD:.0%} "
        f"budget (enabled best {on_best:.3f}s vs disabled best {off_best:.3f}s)"
    )

    payload = {
        "episodes": EPISODES,
        "pairs": PAIRS,
        "enabled_seconds": outcome["on"],
        "disabled_seconds": outcome["off"],
        "enabled_best_seconds": on_best,
        "disabled_best_seconds": off_best,
        "overhead_fraction": overhead,
        "budget_fraction": MAX_OVERHEAD,
    }
    output_path = os.environ.get("BENCH_OBS_JSON", "BENCH_obs.json")
    with open(output_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)

    print(
        f"\nobs bench ({EPISODES} episodes x {PAIRS} pairs): "
        f"enabled {on_best:.3f}s vs disabled {off_best:.3f}s "
        f"-> overhead {overhead:+.2%} (budget {MAX_OVERHEAD:.0%}); "
        f"results in {output_path}"
    )
