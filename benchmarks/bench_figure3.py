"""Benchmark: regenerate Figure 3 (per-stage group feature variation)."""

from __future__ import annotations

from conftest import run_once

from repro.experiments import figure3


def test_bench_figure3(benchmark, bench_preset):
    result = run_once(benchmark, figure3.run, preset=bench_preset, seed=0)
    rendered = figure3.render(result)
    analysis = result.analysis
    # one variation value per spatial stage (stem + every MobileNetV2 block)
    assert len(analysis.variations) == 18
    assert all(v >= 0 for v in analysis.variations)
    assert 0 <= analysis.split_index < len(analysis.variations)
    print("\n" + rendered)
