"""Benchmark: regenerate Table 4 (compatibility with data balancing)."""

from __future__ import annotations

from conftest import run_once

from repro.experiments import table4


def test_bench_table4(benchmark, bench_preset):
    networks = ["MobileNetV2", "MnasNet 0.5", "FaHaNa-Small"]
    result = run_once(
        benchmark, table4.run, preset=bench_preset, seed=0, networks=networks
    )
    rendered = table4.render(result)
    assert set(result.rows) == set(networks)
    for row in result.rows.values():
        # the balanced training set genuinely contains more minority data
        assert row.balanced.accuracy >= 0.0
    print("\n" + rendered)
