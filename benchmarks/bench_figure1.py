"""Benchmark: regenerate Figure 1 (unfairness vs model size / minority volume)."""

from __future__ import annotations

from conftest import run_once

from repro.experiments import figure1


def test_bench_figure1(benchmark, bench_preset):
    result = run_once(benchmark, figure1.run, preset=bench_preset, seed=0)
    rendered = figure1.render(result)
    # the series covers every Figure 1(a) network and every minority multiplier
    assert len(result.size_fairness) == len(figure1.FIGURE1A_NETWORKS)
    assert set(result.minority_sweep) == set(figure1.FIGURE1B_MULTIPLIERS)
    assert "unfairness" in rendered
    print("\n" + rendered)
