"""Ablation benchmarks for the design choices called out in DESIGN.md.

* freezing threshold gamma (split point sensitivity),
* reward weights alpha/beta (accuracy-fairness trade-off),
* hardware-reject shortcut on/off (evaluation cost),
* unfairness metric (L1 vs worst-group gap).
"""

from __future__ import annotations

import numpy as np
from conftest import run_once

from repro.core import (
    BackboneProducer,
    ProducerConfig,
    RewardConfig,
    compute_reward,
    find_split_point,
)
from repro.experiments.common import prepare_data
from repro.fairness.metrics import max_gap_unfairness, unfairness_score
from repro.nn.trainer import TrainingConfig
from repro.zoo import get_architecture


def test_bench_ablation_freezing_gamma(benchmark, bench_preset):
    """Sweep the freezing threshold gamma and report the resulting split points."""
    data = prepare_data(bench_preset, seed=0)

    def sweep():
        splits = {}
        producer = BackboneProducer(
            dataset=data.splits.train,
            config=ProducerConfig(
                backbone="MobileNetV2",
                freeze=True,
                pretrain_epochs=bench_preset.pretrain_epochs,
                width_multiplier=bench_preset.width_multiplier,
            ),
            trainer_config=TrainingConfig(epochs=bench_preset.pretrain_epochs, seed=0),
            num_classes=data.splits.train.num_classes,
            rng=0,
        )
        analysis = producer.prepare()
        for gamma in (0.25, 0.5, 0.75, 1.0):
            splits[gamma] = find_split_point(analysis.variations, gamma)
        return splits

    splits = run_once(benchmark, sweep)
    # a higher threshold can only move the split point later (or keep it)
    gammas = sorted(splits)
    assert all(splits[a] <= splits[b] for a, b in zip(gammas, gammas[1:]))
    print("\ngamma -> split point:", splits)


def test_bench_ablation_reward_weights(benchmark):
    """Sweep alpha/beta and verify the accuracy-fairness trade-off direction."""
    accurate_unfair = {"accuracy": 0.85, "unfairness": 0.40}
    modest_fair = {"accuracy": 0.78, "unfairness": 0.05}

    def sweep():
        outcome = {}
        for beta in (0.0, 0.5, 1.0, 2.0, 4.0):
            config = RewardConfig(alpha=1.0, beta=beta, timing_constraint_ms=1e9)
            reward_a = compute_reward(
                accurate_unfair["accuracy"], accurate_unfair["unfairness"], 1.0, config
            )
            reward_b = compute_reward(
                modest_fair["accuracy"], modest_fair["unfairness"], 1.0, config
            )
            outcome[beta] = "accurate" if reward_a > reward_b else "fair"
        return outcome

    outcome = benchmark(sweep)
    assert outcome[0.0] == "accurate"
    assert outcome[4.0] == "fair"
    print("\nbeta -> preferred candidate:", outcome)


def test_bench_ablation_hardware_reject_shortcut(benchmark, bench_preset):
    """Measure how many candidate networks the latency shortcut rejects untrained."""
    from repro.core import LSTMController, SearchSpace
    from repro.hardware.latency import LatencyEstimator
    from repro.hardware.device import RASPBERRY_PI_4

    data = prepare_data(bench_preset, seed=0)
    producer = BackboneProducer(
        dataset=data.splits.train,
        config=ProducerConfig(
            backbone="MobileNetV2",
            freeze=True,
            pretrain_epochs=0,
            width_multiplier=bench_preset.width_multiplier,
            max_searchable=bench_preset.max_searchable,
        ),
        trainer_config=TrainingConfig(epochs=0, seed=0),
        num_classes=data.splits.train.num_classes,
        rng=0,
    )
    producer.prepare()
    space = SearchSpace()
    controller = LSTMController(space, producer.positions, hidden_size=16, rng=0)
    estimator = LatencyEstimator(RASPBERRY_PI_4, resolution=224)

    def count_rejections():
        rejected = 0
        sampled = 24
        rng = np.random.default_rng(0)
        for _ in range(sampled):
            sample = controller.sample(rng=rng)
            child = producer.produce(sample.decisions, rng=rng)
            if estimator.network_latency_ms(child.descriptor) > 1500.0:
                rejected += 1
        return rejected, sampled

    rejected, sampled = run_once(benchmark, count_rejections)
    print(f"\nhardware shortcut rejects {rejected}/{sampled} children without training")
    assert 0 <= rejected <= sampled


def test_bench_ablation_unfairness_metric(benchmark, bench_preset):
    """Compare the paper's L1 unfairness score against the worst-group gap."""
    data = prepare_data(bench_preset, seed=0)
    dataset = data.splits.test
    rng = np.random.default_rng(0)

    def compare_metrics():
        results = []
        for _ in range(50):
            predictions = rng.integers(0, dataset.num_classes, size=len(dataset))
            l1 = unfairness_score(
                predictions, dataset.labels, dataset.groups, dataset.group_names
            )
            gap = max_gap_unfairness(
                predictions, dataset.labels, dataset.groups, dataset.group_names
            )
            results.append((l1, gap))
        return results

    results = benchmark(compare_metrics)
    # the worst-group gap never exceeds the L1 score, and both are non-negative
    assert all(0 <= gap <= l1 + 1e-12 for l1, gap in results)
