"""Benchmark: regenerate Table 1 (hardware specification vs fairness)."""

from __future__ import annotations

from conftest import run_once

from repro.experiments import paper_values, table1


def test_bench_table1(benchmark, bench_preset):
    result = run_once(benchmark, table1.run, preset=bench_preset, seed=0)
    rendered = table1.render(result)
    # the latency model reproduces the paper's meets-spec pattern exactly
    for name, row in paper_values.TABLE1.items():
        assert result.meets_spec(name) == row["meets_spec"], name
    print("\n" + rendered)
