"""Benchmark: regenerate Table 3 (FaHaNa-Nets vs existing architectures)."""

from __future__ import annotations

from conftest import run_once

from repro.experiments import table3
from repro.zoo.registry import GROUP_LARGE, GROUP_SMALL


def test_bench_table3(benchmark, bench_preset):
    result = run_once(benchmark, table3.run, preset=bench_preset, seed=0)
    rendered = table3.render(result)
    assert len(result.rows) == len(GROUP_SMALL) + len(GROUP_LARGE)
    small = result.row("FaHaNa-Small")
    # the headline hardware claims hold by construction of the latency model
    assert small.storage_reduction > 3.0      # paper: 5.28x vs MobileNetV2
    assert small.pi_speedup > 3.0             # paper: 5.75x
    assert small.odroid_speedup > 3.0         # paper: 5.79x
    fair = result.row("FaHaNa-Fair")
    assert fair.pi_speedup > 1.2              # paper: 1.75x vs ResNet-50
    print("\n" + rendered)
