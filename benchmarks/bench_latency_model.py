"""Benchmark: the analytic latency model itself (pricing speed and fidelity).

During the search every sampled child must be priced before the train/skip
decision, so the per-network pricing cost is on the NAS critical path.  This
benchmark measures it and re-validates the calibration against the paper's
published Raspberry Pi latencies.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import paper_values
from repro.hardware import RASPBERRY_PI_4, LatencyEstimator, estimate_latency_ms
from repro.zoo import get_architecture


def test_bench_latency_pricing_throughput(benchmark):
    descriptors = [get_architecture(name) for name in paper_values.TABLE3]
    estimator = LatencyEstimator(RASPBERRY_PI_4, resolution=224)

    def price_all():
        return [estimator.network_latency_ms(d) for d in descriptors]

    latencies = benchmark(price_all)
    assert all(latency > 0 for latency in latencies)


def test_bench_latency_model_fidelity(benchmark):
    def evaluate_fidelity():
        ratios = []
        for name, row in paper_values.TABLE1.items():
            estimate = estimate_latency_ms(get_architecture(name), RASPBERRY_PI_4)
            ratios.append(estimate / row["latency_pi_ms"])
        return ratios

    ratios = benchmark(evaluate_fidelity)
    # calibrated model stays within a factor of ~2 of the paper's measurements
    assert 0.4 < float(np.median(ratios)) < 2.0
