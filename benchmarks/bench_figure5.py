"""Benchmark: regenerate Figure 5 (FaHaNa search vs existing networks)."""

from __future__ import annotations

from conftest import run_once

from repro.experiments import figure5


def test_bench_figure5(benchmark, bench_preset):
    result = run_once(benchmark, figure5.run, preset=bench_preset, seed=0)
    rendered = figure5.render(result)
    assert len(result.search.history) == bench_preset.search_episodes
    assert len(result.existing) == len(figure5.COMPARISON_NETWORKS)
    print("\n" + rendered)
