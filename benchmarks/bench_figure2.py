"""Benchmark: regenerate Figure 2 (per-group accuracy and unfairness)."""

from __future__ import annotations

from conftest import run_once

from repro.experiments import figure2


def test_bench_figure2(benchmark, bench_preset):
    result = run_once(benchmark, figure2.run, preset=bench_preset, seed=0)
    rendered = figure2.render(result)
    assert len(result.evaluations) == len(figure2.FIGURE2_NETWORKS)
    for evaluation in result.evaluations:
        assert set(evaluation.group_accuracy) == {"light", "dark"}
    print("\n" + rendered)
