"""Benchmark: serving throughput under micro-batching, closed and open loop.

Promotes a real (reduced-scale) search run into a temporary zoo, then drives
the served model two ways:

* **closed loop** -- a fixed fleet of client threads, each issuing single-row
  predicts back-to-back, against (a) the micro-batched :class:`ModelServer`
  and (b) a lock-serialized unbatched baseline (the same thread-safety
  constraint a bare :class:`~repro.nn.module.Module` imposes, paying the
  per-layer Python dispatch once per row).  The enforced budget: batching
  delivers **at least 3x** the serial throughput at saturation.
* **open loop** -- requests fired on a fixed arrival schedule regardless of
  completions, recording each request's end-to-end latency.  The flush
  deadline (``max_delay_ms``) bounds the queueing term, so p99 must stay
  within the deadline plus a small number of batch compute times.

Results are written to ``BENCH_serving.json`` (override with the
``BENCH_SERVING_JSON`` environment variable); ``BENCH_SERVING_QUICK=1``
shrinks the request counts for CI.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from conftest import run_once

from repro.api import DatasetSpec, DesignSpecConfig, RunSpec, SearchParams
from repro.engine import set_default_engine_config
from repro.nn.trainer import Trainer, TrainingConfig
from repro.service import RunClient
from repro.serving import ModelServer
from repro.serving.registry import ZooRegistry

QUICK = os.environ.get("BENCH_SERVING_QUICK", "") not in ("", "0")
CLIENTS = 16
REQUESTS_PER_CLIENT = 8 if QUICK else 32
OPEN_LOOP_REQUESTS = 64 if QUICK else 256
OPEN_LOOP_INTERVAL_S = 0.002
MIN_SPEEDUP = 3.0

# The serving knobs under test: (max_batch_size, max_delay_ms).
CONFIGS = ((16, 5.0),) if QUICK else ((8, 2.0), (16, 5.0), (32, 10.0))


def _spec() -> RunSpec:
    return RunSpec(
        strategy="fahana",
        dataset=DatasetSpec(
            image_size=10,
            samples_per_class=8,
            minority_fraction=0.5,
            seed=123,
            split_seed=0,
        ),
        design=DesignSpecConfig(timing_constraint_ms=1e6),
        search=SearchParams(
            episodes=2,
            child_epochs=1,
            child_batch_size=8,
            pretrain_epochs=0,
            max_searchable=2,
            width_multiplier=0.25,
            seed=0,
        ),
    )


def _promote(root: str) -> ZooRegistry:
    runs_root = os.path.join(root, "runs")
    client = RunClient.local(runs_root=runs_root, max_workers=1)
    # Registry-managed runs refuse the benchmark session's live shared cache
    # (a process-local object cannot back resumable on-disk runs).
    previous = set_default_engine_config(None)
    try:
        handle = client.submit(_spec())
        handle.result(timeout=300)
    finally:
        set_default_engine_config(previous)
    zoo = ZooRegistry(os.path.join(root, "zoo"))
    zoo.promote_run(runs_root, handle.run_id, name="bench")
    return zoo


def _closed_loop_batched(server: ModelServer, rows: np.ndarray) -> float:
    """Wall seconds for CLIENTS threads x REQUESTS_PER_CLIENT single rows."""

    def client(index: int) -> None:
        row = rows[index % rows.shape[0] : index % rows.shape[0] + 1]
        for _ in range(REQUESTS_PER_CLIENT):
            server.predict("bench", row)

    with ThreadPoolExecutor(max_workers=CLIENTS) as pool:
        start = time.perf_counter()
        futures = [pool.submit(client, index) for index in range(CLIENTS)]
        for future in futures:
            future.result()
        return time.perf_counter() - start


def _closed_loop_serial(zoo: ZooRegistry, rows: np.ndarray) -> float:
    """The unbatched baseline: one row per forward, serialized by a lock."""
    model, _descriptor, _entry = zoo.load_model("bench")
    model.astype("float32")
    trainer = Trainer(TrainingConfig(batch_size=1, inference_batch_size=1))
    lock = threading.Lock()
    trainer.predict(model, rows[:1], batch_size=1)  # warm the buffers

    def client(index: int) -> None:
        row = rows[index % rows.shape[0] : index % rows.shape[0] + 1]
        for _ in range(REQUESTS_PER_CLIENT):
            with lock:
                trainer.predict(model, row, batch_size=1)

    with ThreadPoolExecutor(max_workers=CLIENTS) as pool:
        start = time.perf_counter()
        futures = [pool.submit(client, index) for index in range(CLIENTS)]
        for future in futures:
            future.result()
        return time.perf_counter() - start


def _open_loop(server: ModelServer, rows: np.ndarray) -> list:
    """Fire requests on a fixed schedule; return per-request latencies."""
    latencies = [None] * OPEN_LOOP_REQUESTS

    def fire(index: int) -> None:
        row = rows[index % rows.shape[0] : index % rows.shape[0] + 1]
        start = time.perf_counter()
        server.predict("bench", row)
        latencies[index] = time.perf_counter() - start

    with ThreadPoolExecutor(max_workers=CLIENTS * 2) as pool:
        origin = time.perf_counter()
        futures = []
        for index in range(OPEN_LOOP_REQUESTS):
            # Open loop: hold the arrival schedule even if completions lag.
            delay = origin + index * OPEN_LOOP_INTERVAL_S - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            futures.append(pool.submit(fire, index))
        for future in futures:
            future.result()
    return latencies


def _percentile(values: list, fraction: float) -> float:
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1, int(fraction * len(ordered)))]


def test_bench_serving(benchmark):
    def harness():
        with tempfile.TemporaryDirectory(prefix="bench-serving-") as root:
            zoo = _promote(root)
            rows = np.random.default_rng(0).normal(size=(8, 3, 10, 10))
            serial_seconds = _closed_loop_serial(zoo, rows)

            sweep = []
            for max_batch, flush_ms in CONFIGS:
                server = ModelServer(
                    zoo.root,
                    max_batch_size=max_batch,
                    max_delay_ms=flush_ms,
                    max_queue=max(256, CLIENTS * 4),
                )
                try:
                    server.predict("bench", rows)  # load + warm the model
                    batched_seconds = _closed_loop_batched(server, rows)
                    # Calibrate one full batch's compute, for the p99 bound.
                    full = np.repeat(rows, (max_batch // 8) + 1, axis=0)
                    start = time.perf_counter()
                    server.predict("bench", full[:max_batch])
                    batch_seconds = time.perf_counter() - start
                    latencies = _open_loop(server, rows)
                    stats = server.models()[0]["serving"]
                finally:
                    server.close()
                sweep.append(
                    {
                        "max_batch_size": max_batch,
                        "max_delay_ms": flush_ms,
                        "batched_seconds": batched_seconds,
                        "batch_compute_seconds": batch_seconds,
                        "open_loop_p50_ms": _percentile(latencies, 0.50) * 1e3,
                        "open_loop_p99_ms": _percentile(latencies, 0.99) * 1e3,
                        "mean_batch_size": stats["mean_batch_size"],
                        "largest_batch": stats["largest_batch"],
                    }
                )
            return serial_seconds, sweep

    serial_seconds, sweep = run_once(benchmark, harness)

    total_requests = CLIENTS * REQUESTS_PER_CLIENT
    serial_rps = total_requests / serial_seconds
    results = []
    for config in sweep:
        batched_rps = total_requests / config["batched_seconds"]
        speedup = batched_rps / serial_rps
        # The deadline bounds queueing; compute adds at most a few batch
        # passes (the request's own batch plus ones draining ahead of it).
        p99_budget_ms = (
            config["max_delay_ms"]
            + 5 * config["batch_compute_seconds"] * 1e3
            + 50.0  # scheduler jitter headroom on loaded CI machines
        )
        results.append(
            {
                **config,
                "batched_rps": batched_rps,
                "speedup": speedup,
                "p99_budget_ms": p99_budget_ms,
            }
        )

    best = max(results, key=lambda entry: entry["speedup"])
    assert best["speedup"] >= MIN_SPEEDUP, (
        f"micro-batching delivered only {best['speedup']:.2f}x over the "
        f"serialized baseline (budget: >= {MIN_SPEEDUP:.0f}x at saturation)"
    )
    for entry in results:
        assert entry["open_loop_p99_ms"] <= entry["p99_budget_ms"], (
            f"open-loop p99 {entry['open_loop_p99_ms']:.1f}ms exceeds the "
            f"{entry['p99_budget_ms']:.1f}ms budget at batch="
            f"{entry['max_batch_size']} flush={entry['max_delay_ms']}ms"
        )
        assert entry["mean_batch_size"] > 1.0  # coalescing actually happened

    payload = {
        "quick": QUICK,
        "clients": CLIENTS,
        "requests_per_client": REQUESTS_PER_CLIENT,
        "open_loop_requests": OPEN_LOOP_REQUESTS,
        "open_loop_interval_ms": OPEN_LOOP_INTERVAL_S * 1e3,
        "serial_seconds": serial_seconds,
        "serial_rps": serial_rps,
        "min_speedup_budget": MIN_SPEEDUP,
        "configs": results,
    }
    output_path = os.environ.get("BENCH_SERVING_JSON", "BENCH_serving.json")
    with open(output_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)

    print(
        f"\nserving bench ({total_requests} closed-loop requests, "
        f"{CLIENTS} clients): serial {serial_rps:.0f} req/s vs batched "
        f"{best['batched_rps']:.0f} req/s -> {best['speedup']:.1f}x "
        f"(budget {MIN_SPEEDUP:.0f}x); open-loop p99 "
        f"{best['open_loop_p99_ms']:.1f}ms vs deadline "
        f"{best['max_delay_ms']:.0f}ms+compute; results in {output_path}"
    )
