"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures at the
``bench`` scale (a reduced budget sized so the full suite completes on a
laptop CPU in minutes).  Pass ``--benchmark-only`` to pytest to run them; the
same harness functions accept the ``small`` / ``full`` presets for the
higher-fidelity runs recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.engine import EngineConfig, EvaluationCache, set_default_engine_config
from repro.experiments.common import clear_caches
from repro.experiments.presets import CI

# The benchmark preset: slightly smaller than CI so that harnesses which train
# many networks (Table 3 trains twelve) stay fast.
BENCH = dataclasses.replace(
    CI,
    name="bench",
    image_size=12,
    samples_per_class=10,
    minority_fraction=0.4,
    width_multiplier=0.2,
    train_epochs=2,
    batch_size=8,
    search_episodes=3,
    child_epochs=1,
    pretrain_epochs=1,
    max_searchable=3,
)


@pytest.fixture(scope="session")
def bench_preset():
    """The reduced-scale preset used by every benchmark."""
    return BENCH


@pytest.fixture(scope="session", autouse=True)
def _clear_experiment_caches():
    """Keep benchmark runs independent of any earlier in-process state."""
    clear_caches()
    yield
    clear_caches()


@pytest.fixture(scope="session")
def engine_cache() -> EvaluationCache:
    """One evaluation cache shared by every search of the benchmark session."""
    return EvaluationCache(capacity=2048)


@pytest.fixture(scope="session", autouse=True)
def _engine_memoization(engine_cache):
    """Route every search through the engine with a shared evaluation cache.

    Harnesses that run several searches over the same configuration (and the
    searches themselves, when the controller re-samples a child) then skip
    repeated training for free; the context fingerprint keeps runs with
    different constraints or presets from cross-contaminating.
    """
    previous = set_default_engine_config(
        EngineConfig(backend="serial", use_cache=True, cache=engine_cache)
    )
    yield
    set_default_engine_config(previous)


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
