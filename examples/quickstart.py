"""Quickstart: generate the dataset, train one network, measure its fairness.

Runs in about a minute on a laptop CPU.  It walks through the library's main
objects in the order a user would meet them:

1. generate the synthetic dermatology dataset (light-skin majority,
   dark-skin minority) and split it 60/20/20,
2. build a reference architecture from the zoo at a reduced training scale,
3. train it and evaluate overall accuracy, per-group accuracy and the
   paper's unfairness score,
4. price the same architecture on the Raspberry Pi / Odroid latency models,
5. run a tiny architecture search through the declarative run API
   (one serializable RunSpec in, one RunReport out).
"""

from __future__ import annotations

import repro
from repro.api import DesignSpecConfig, RunSpec, SearchParams
from repro.data import DermatologyConfig, DermatologyGenerator, normalize_images, stratified_split
from repro.engine import EngineConfig
from repro.fairness import evaluate_fairness
from repro.hardware import ODROID_XU4, RASPBERRY_PI_4, estimate_latency_ms
from repro.nn import Trainer, TrainingConfig
from repro.zoo import get_architecture


def main() -> None:
    # 1. Data: 5 dermatology classes, two skin-tone groups, 4:1 imbalance.
    config = DermatologyConfig(
        image_size=24, samples_per_class_majority=40, minority_fraction=0.25, seed=7
    )
    dataset = DermatologyGenerator(config).generate()
    splits = stratified_split(dataset, rng=0)
    print(f"dataset: {len(dataset)} images, groups = {dataset.group_counts()}")

    train_images, mean, std = normalize_images(splits.train.images)
    splits.train.images[:] = train_images
    splits.test.images[:] = normalize_images(splits.test.images, mean, std)[0]

    # 2. Architecture: the paper's FaHaNa-Fair reference network, built at a
    #    reduced width so CPU training is quick.
    descriptor = get_architecture("FaHaNa-Fair")
    print(f"\n{descriptor.describe()}\n")
    model = descriptor.build(num_classes=5, width_multiplier=0.35, rng=0)

    # 3. Train and evaluate fairness.
    trainer = Trainer(TrainingConfig(epochs=12, batch_size=16, seed=0))
    history = trainer.fit(model, splits.train.images, splits.train.labels)
    report = evaluate_fairness(model, splits.test, trainer)
    print(f"final training accuracy: {history.final_accuracy:.2%}")
    print(f"test fairness report:    {report.summary()}")

    # 4. Hardware: analytic latency at the paper's deployment scale (224x224).
    pi = estimate_latency_ms(descriptor, RASPBERRY_PI_4)
    odroid = estimate_latency_ms(descriptor, ODROID_XU4)
    print(
        f"deployment estimate: {descriptor.storage_mb():.2f} MB, "
        f"{pi:.0f} ms on Raspberry Pi 4, {odroid:.0f} ms on Odroid XU-4"
    )

    # 5. Search: a few NAS episodes through the declarative run API.  One
    #    RunSpec describes the whole run (it round-trips to JSON, so the same
    #    spec drives repro.run(), the repro-search CLI and a remote worker);
    #    the engine section's evaluation cache memoizes repeated controller
    #    samples (switch engine.backend to "thread" for parallel waves).
    spec = RunSpec(
        strategy="fahana",
        # Relaxed timing constraint so the demo's sampled children qualify
        # for training (the paper's 1500 ms budget rejects most of the wide
        # children an untrained controller proposes).
        design=DesignSpecConfig(timing_constraint_ms=4000.0),
        search=SearchParams(
            episodes=4,
            child_epochs=2,
            pretrain_epochs=1,
            max_searchable=2,
            width_multiplier=0.25,
            seed=0,
        ),
        engine=EngineConfig(use_cache=True),
    )
    report = repro.run(
        spec, train_dataset=splits.train, validation_dataset=splits.validation
    )
    print("\nengine search summary:")
    print(report.summary())


if __name__ == "__main__":
    main()
