"""Edge-deployment planning: from device budgets to a served, promoted model.

Part 1 reproduces the Table 1 decision problem as a library workflow: given a
device and a latency budget, rank every zoo architecture, flag the ones that
meet the specification, and show the accuracy/fairness price of the feasible
set.  No training is needed for the hardware side -- the analytic latency
model prices full-scale (224x224) networks directly.

Part 2 closes the loop the way a deployment would: run a real (reduced-scale)
FaHaNa search, pick the Pareto point for each device class from the search
history with the same latency model, promote the picks into a model zoo
(``repro.serving``), and answer predictions through the batched
:class:`~repro.serving.server.ModelServer`.
"""

from __future__ import annotations

import os
import tempfile

from repro.experiments import paper_values
from repro.hardware import (
    HardwareSpec,
    ODROID_XU4,
    RASPBERRY_PI_4,
    estimate_latency_ms,
    peak_activation_mb,
)
from repro.utils.tabulate import format_table
from repro.zoo import get_architecture, list_architectures

TIMING_BUDGETS_MS = (700.0, 1500.0, 2500.0)


def plan_with_latency_model() -> None:
    """Part 1: rank the paper's networks against each device's budgets."""
    names = [n for n in list_architectures() if n in paper_values.TABLE3 or n == "SqueezeNet 1.0"]
    for device in (RASPBERRY_PI_4, ODROID_XU4):
        rows = []
        for name in sorted(names, key=lambda n: estimate_latency_ms(get_architecture(n), device)):
            descriptor = get_architecture(name)
            latency = estimate_latency_ms(descriptor, device)
            paper_row = paper_values.TABLE3.get(name, {})
            rows.append(
                [
                    name,
                    f"{descriptor.param_count() / 1e6:.2f}M",
                    f"{descriptor.storage_mb():.1f}",
                    f"{peak_activation_mb(descriptor):.1f}",
                    f"{latency:.0f}",
                    " ".join(
                        "yes" if latency <= budget else "no"
                        for budget in TIMING_BUDGETS_MS
                    ),
                    f"{paper_row.get('unfairness', float('nan')):.3f}",
                ]
            )
        print(f"\n=== {device.name} (budgets: {', '.join(f'{b:.0f}ms' for b in TIMING_BUDGETS_MS)}) ===")
        print(
            format_table(
                ["model", "params", "weights MB", "peak act MB", "latency ms",
                 "meets budgets", "paper unfairness"],
                rows,
            )
        )

    print(
        "\nTakeaway (paper, Table 1): under a 1500 ms budget on the Raspberry Pi "
        "only the small depthwise networks qualify, and those are exactly the "
        "least fair ones -- which is why FaHaNa searches for small AND fair "
        "architectures instead of picking an off-the-shelf network."
    )

    spec = HardwareSpec(device=RASPBERRY_PI_4, timing_constraint_ms=1500.0)
    feasible = [
        name
        for name in names
        if estimate_latency_ms(get_architecture(name), spec.device) <= spec.timing_constraint_ms
    ]
    print(f"\nfeasible under the paper's default specification: {', '.join(sorted(feasible))}")


def promote_and_serve(root: str) -> None:
    """Part 2: search, promote one Pareto point per device class, serve it."""
    import numpy as np

    from repro.api import DatasetSpec, DesignSpecConfig, RunSpec, SearchParams
    from repro.engine.serde import history_from_dict
    from repro.service import RunClient
    from repro.service.registry import RunRegistry
    from repro.serving import ModelServer
    from repro.serving.registry import (
        LATENCY_CLASSES,
        REFERENCE_DEVICE,
        ZooRegistry,
        latency_class,
    )
    from repro.hardware.device import get_device

    runs_root = os.path.join(root, "runs")
    spec = RunSpec(
        strategy="fahana",
        dataset=DatasetSpec(
            image_size=10, samples_per_class=8, minority_fraction=0.5,
            seed=123, split_seed=0,
        ),
        design=DesignSpecConfig(timing_constraint_ms=1e6),
        search=SearchParams(
            episodes=4, child_epochs=1, child_batch_size=8, pretrain_epochs=0,
            max_searchable=2, width_multiplier=0.25, seed=0,
        ),
    )
    print("\n=== promote & serve (reduced-scale search) ===")
    handle = RunClient.local(runs_root=runs_root, max_workers=1).submit(spec)
    handle.result(timeout=300)
    print(f"search finished: run {handle.run_id}")

    # Pick the served Pareto point per device class: among the episodes that
    # satisfy each tier's budget on the reference device, take the highest
    # search reward.  This is the same latency model Part 1 plans with.
    report = RunRegistry(runs_root).load_report(handle.run_id)
    history = history_from_dict(report["history"])
    device = get_device(REFERENCE_DEVICE)
    candidates = [
        (record, estimate_latency_ms(record.descriptor, device))
        for record in history.valid_records()
    ]
    zoo = ZooRegistry(os.path.join(root, "zoo"))
    picks = {}
    for tier, budget_ms in LATENCY_CLASSES:
        fitting = [(r, ms) for r, ms in candidates if ms <= budget_ms]
        if not fitting:
            print(f"  {tier:9s} (<= {budget_ms:.0f}ms): no feasible episode")
            continue
        record, latency = max(fitting, key=lambda pair: pair[0].reward)
        entry = zoo.promote_run(
            runs_root, handle.run_id,
            name=f"fahana-{tier}", episode=record.episode,
        )
        picks[tier] = entry
        print(
            f"  {tier:9s} (<= {budget_ms:.0f}ms): episode {record.episode} "
            f"at {latency:.0f}ms -> {entry.name}:{entry.version} "
            f"(class {latency_class(latency)})"
        )

    if not picks:
        return
    # Serve the tightest-budget pick through the micro-batched server.
    tier, entry = next(iter(picks.items()))
    server = ModelServer(zoo.root)
    try:
        inputs = np.random.default_rng(0).normal(
            size=(4, *entry.manifest["input_shape"])
        )
        predictions = server.predict(entry.name, inputs)
        stats = server.models()[0].get("serving") or {}
        print(
            f"served {entry.name} ({tier} tier): predictions "
            f"{predictions.tolist()} via batches of mean size "
            f"{stats.get('mean_batch_size', 0):.1f}"
        )
    finally:
        server.close()


def main() -> None:
    plan_with_latency_model()
    with tempfile.TemporaryDirectory(prefix="edge-deploy-") as root:
        promote_and_serve(root)


if __name__ == "__main__":
    main()
