"""Edge-deployment planning: which architectures fit which device budget?

Reproduces the Table 1 decision problem as a library workflow: given a device
and a latency budget, rank every zoo architecture, flag the ones that meet
the specification, and show the accuracy/fairness price of the feasible set.
No training is needed for the hardware side -- the analytic latency model
prices full-scale (224x224) networks directly.
"""

from __future__ import annotations

from repro.experiments import paper_values
from repro.hardware import (
    HardwareSpec,
    ODROID_XU4,
    RASPBERRY_PI_4,
    estimate_latency_ms,
    peak_activation_mb,
)
from repro.utils.tabulate import format_table
from repro.zoo import get_architecture, list_architectures

TIMING_BUDGETS_MS = (700.0, 1500.0, 2500.0)


def main() -> None:
    names = [n for n in list_architectures() if n in paper_values.TABLE3 or n == "SqueezeNet 1.0"]
    for device in (RASPBERRY_PI_4, ODROID_XU4):
        rows = []
        for name in sorted(names, key=lambda n: estimate_latency_ms(get_architecture(n), device)):
            descriptor = get_architecture(name)
            latency = estimate_latency_ms(descriptor, device)
            paper_row = paper_values.TABLE3.get(name, {})
            rows.append(
                [
                    name,
                    f"{descriptor.param_count() / 1e6:.2f}M",
                    f"{descriptor.storage_mb():.1f}",
                    f"{peak_activation_mb(descriptor):.1f}",
                    f"{latency:.0f}",
                    " ".join(
                        "yes" if latency <= budget else "no"
                        for budget in TIMING_BUDGETS_MS
                    ),
                    f"{paper_row.get('unfairness', float('nan')):.3f}",
                ]
            )
        print(f"\n=== {device.name} (budgets: {', '.join(f'{b:.0f}ms' for b in TIMING_BUDGETS_MS)}) ===")
        print(
            format_table(
                ["model", "params", "weights MB", "peak act MB", "latency ms",
                 "meets budgets", "paper unfairness"],
                rows,
            )
        )

    print(
        "\nTakeaway (paper, Table 1): under a 1500 ms budget on the Raspberry Pi "
        "only the small depthwise networks qualify, and those are exactly the "
        "least fair ones -- which is why FaHaNa searches for small AND fair "
        "architectures instead of picking an off-the-shelf network."
    )

    spec = HardwareSpec(device=RASPBERRY_PI_4, timing_constraint_ms=1500.0)
    feasible = [
        name
        for name in names
        if estimate_latency_ms(get_architecture(name), spec.device) <= spec.timing_constraint_ms
    ]
    print(f"\nfeasible under the paper's default specification: {', '.join(sorted(feasible))}")


if __name__ == "__main__":
    main()
