"""Run the FaHaNa fairness- and hardware-aware architecture search.

This is the paper's headline use case: given the dermatology dataset, a
target device (Raspberry Pi 4) and a timing constraint, search for networks
that balance accuracy and fairness while meeting the hardware specification.
The script then prints the searched Pareto candidates and compares the best
one against MobileNetV2.

Expected runtime: a few minutes at the default (reduced) scale.  Increase
``EPISODES`` / image size for higher-fidelity runs.
"""

from __future__ import annotations

import repro
from repro.experiments.common import evaluate_architecture, prepare_data, search_spec
from repro.experiments.presets import get_preset

EPISODES = 12


def main() -> None:
    preset = get_preset("ci")
    data = prepare_data(preset, seed=0)
    spec = search_spec(
        preset, "fahana", episodes=EPISODES, seed=0, timing_constraint_ms=1500.0
    )
    design = spec.design.build()

    print(
        f"searching {EPISODES} episodes on {design.hardware.device.name} "
        f"with TC = {design.timing_constraint_ms:.0f} ms ..."
    )
    result = repro.run(
        spec,
        train_dataset=data.splits.train,
        validation_dataset=data.splits.validation,
    ).result

    print("\n== search summary ==")
    print(result.summary())

    if result.freezing_analysis is not None:
        print("\n== freezing analysis (Observation 3 / Figure 3) ==")
        print(result.freezing_analysis.describe())

    print("\n== Pareto candidates (reward vs model size) ==")
    for record in result.history.pareto_reward_size():
        print(
            f"  episode {record.episode:3d}: reward={record.reward:.4f} "
            f"accuracy={record.accuracy:.2%} unfairness={record.unfairness:.4f} "
            f"params={record.num_parameters:,} latency={record.latency_ms:.0f} ms"
        )

    if result.best is not None:
        print("\n== best searched network vs MobileNetV2 ==")
        baseline = evaluate_architecture("MobileNetV2", preset, seed=0)
        best = result.best
        print(f"  MobileNetV2 : unfairness={baseline.unfairness:.4f}, "
              f"params={baseline.params:,}, Pi latency={baseline.latency_pi_ms:.0f} ms")
        print(f"  FaHaNa best : unfairness={best.unfairness:.4f}, "
              f"params={best.num_parameters:,}, Pi latency={best.latency_ms:.0f} ms")
        print("\n== best searched architecture ==")
        print(best.descriptor.describe())


if __name__ == "__main__":
    main()
