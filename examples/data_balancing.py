"""Data balancing vs architecture choice (Figure 1(b) and Table 4).

Trains the same small network with and without 5x additional minority data
and compares the fairness gain against simply choosing a different (larger or
searched) architecture -- the paper's point being that the architecture
matters at least as much as the data.
"""

from __future__ import annotations

from repro.data import (
    DermatologyConfig,
    DermatologyGenerator,
    balance_minority,
    normalize_images,
    stratified_split,
)
from repro.fairness import evaluate_fairness
from repro.nn import Trainer, TrainingConfig
from repro.utils.tabulate import format_table
from repro.zoo import get_architecture


def train_and_report(name, train, test, epochs=10, width=0.3, seed=0):
    descriptor = get_architecture(name)
    model = descriptor.build(num_classes=5, width_multiplier=width, rng=seed)
    trainer = Trainer(TrainingConfig(epochs=epochs, batch_size=16, seed=seed))
    train_images, mean, std = normalize_images(train.images)
    trainer.fit(model, train_images, train.labels)
    test_images, _, _ = normalize_images(test.images, mean, std)
    normalised_test = type(test)(test_images, test.labels, test.groups, test.group_names)
    return evaluate_fairness(model, normalised_test, trainer)


def main() -> None:
    config = DermatologyConfig(
        image_size=20, samples_per_class_majority=32, minority_fraction=0.25, seed=11
    )
    generator = DermatologyGenerator(config)
    dataset = generator.generate()
    splits = stratified_split(dataset, rng=0)
    balanced_train = balance_minority(splits.train, generator, factor=5, rng=0)
    print(
        f"training set: {splits.train.group_counts()} -> balanced: "
        f"{balanced_train.group_counts()}"
    )

    rows = []
    small = "MnasNet 0.5"
    searched = "FaHaNa-Fair"

    plain = train_and_report(small, splits.train, splits.test)
    rows.append([f"{small} (unbalanced)", f"{plain.overall_accuracy:.2%}", f"{plain.unfairness:.4f}"])

    balanced = train_and_report(small, balanced_train, splits.test)
    rows.append(
        [f"{small} (5x minority data)", f"{balanced.overall_accuracy:.2%}", f"{balanced.unfairness:.4f}"]
    )

    alternative = train_and_report(searched, splits.train, splits.test)
    rows.append(
        [f"{searched} (unbalanced)", f"{alternative.overall_accuracy:.2%}", f"{alternative.unfairness:.4f}"]
    )

    print()
    print(format_table(["configuration", "accuracy", "unfairness"], rows))
    print(
        "\nPaper's reading of this comparison (Figure 1b): extra minority data "
        "helps, but picking the right architecture can matter more -- a small "
        "network trained with 5x minority data can still be less fair than a "
        "well-chosen architecture without any balancing."
    )


if __name__ == "__main__":
    main()
