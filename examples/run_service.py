"""Run lifecycle API end to end: submit, stream events, cancel, resume.

Uses the in-process executor with an on-disk registry -- the same code path
the ``repro-search serve`` daemon runs behind HTTP.  Start a daemon and
replace ``RunClient.local(...)`` with ``RunClient.connect(url)`` and nothing
else changes.

    PYTHONPATH=src python examples/run_service.py
"""

from __future__ import annotations

import os
import tempfile

from repro.engine.events import EPISODE_FINISHED
from repro.service import RunCancelled, RunClient

SPEC = os.path.join(os.path.dirname(__file__), "specs", "smoke.json")


def main() -> None:
    with tempfile.TemporaryDirectory() as scratch:
        runs_root = os.path.join(scratch, "runs")
        client = RunClient.local(runs_root=runs_root)

        # -- submit and stream the typed event feed --------------------------------
        handle = client.submit(SPEC)
        print(f"submitted {handle.run_id} (state: {handle.state})")
        for event in handle.events(follow=True):
            if event.kind == EPISODE_FINISHED:
                print(
                    f"  episode {event.episode}: "
                    f"reward={event.payload['reward']:+.4f} "
                    f"worker={event.payload['worker']}"
                )
        report = handle.result()
        print(f"finished: {len(report.history)} episodes\n{report.summary()}\n")

        # -- cancel mid-run, then resume from the checkpoint -----------------------
        second = client.submit(SPEC)
        for event in second.events(follow=True):
            if event.kind == EPISODE_FINISHED:
                print(f"cancelling {second.run_id} after episode {event.episode}")
                second.cancel()  # honoured at the next wave boundary
                break
        try:
            second.result()
        except RunCancelled:
            status = second.status()
            print(
                f"cancelled at episode {status['episodes_done']} -- "
                f"checkpoint kept under {status['run_dir']}"
            )
        resumed = client.resume(second.run_id)
        final = resumed.result()
        print(
            f"resumed and completed: {len(final.history)} episodes "
            f"(continued from {final.resumed_from})"
        )

        # -- the registry is plain files -------------------------------------------
        print("\nruns root layout:")
        for status in client.list_runs():
            print(f"  {status['run_id']}: {status['state']}")
        print(f"  (tail any run offline: repro-search tail <dir-under-{runs_root}>)")


if __name__ == "__main__":
    main()
