"""Observability end to end: metrics, spans, and a Chrome-loadable trace.

Runs a tiny architecture search with the default-on telemetry layer and then
shows the three ways to look at it:

1. ``RunReport.metrics`` -- the run's own registry snapshot (counters,
   gauges, histograms), attached to every report,
2. the process-global registry's Prometheus text exposition -- the same
   bytes ``GET /metrics`` serves when the daemon is running,
3. ``trace.json`` -- the run's nested spans exported to Chrome
   ``trace_event`` format (open in chrome://tracing or ui.perfetto.dev),
   equivalent to ``repro-search trace <run_dir>``.

Instrumentation never steers the search: flip the kill switch
(``repro.obs.set_enabled(False)``) and the rewards are bit-for-bit the same.

    PYTHONPATH=src python examples/observability.py
"""

from __future__ import annotations

import os
import tempfile

import repro
from repro.api import DesignSpecConfig, RunSpec, SearchParams
from repro.data import DermatologyConfig, DermatologyGenerator, stratified_split
from repro.engine import EngineConfig
from repro.obs import metrics as obs_metrics
from repro.obs.trace_export import export_chrome_trace


def main() -> None:
    config = DermatologyConfig(
        image_size=16, samples_per_class_majority=16, minority_fraction=0.4, seed=7
    )
    splits = stratified_split(DermatologyGenerator(config).generate(), rng=0)

    spec = RunSpec(
        strategy="fahana",
        design=DesignSpecConfig(timing_constraint_ms=4000.0),
        search=SearchParams(
            episodes=4,
            child_epochs=1,
            pretrain_epochs=1,
            max_searchable=2,
            width_multiplier=0.25,
            seed=0,
        ),
    )

    with tempfile.TemporaryDirectory() as scratch:
        run_dir = os.path.join(scratch, "run")
        report = repro.run(
            spec,
            engine=EngineConfig(use_cache=True, run_dir=run_dir),
            train_dataset=splits.train,
            validation_dataset=splits.validation,
        )
        print(report.summary())

        # 1. The run's own metrics ride along on the report.
        metrics = report.metrics
        print("\nreport.metrics highlights:")
        for sample in metrics["repro_engine_episodes_total"]["samples"]:
            print(f"  episodes[{sample['labels']['result']}] = {sample['value']:.0f}")
        wave = metrics["repro_engine_wave_seconds"]["samples"][0]
        print(f"  waves = {wave['count']:.0f}, total wave time = {wave['sum']:.2f}s")
        for sample in metrics.get("repro_cache_lookups_total", {}).get("samples", []):
            print(f"  cache[{sample['labels']['result']}] = {sample['value']:.0f}")

        # 2. The process-global registry aggregates every run in the process;
        #    the daemon serves exactly this text at GET /metrics.
        exposition = obs_metrics.get_registry().render_prometheus()
        engine_lines = [
            line
            for line in exposition.splitlines()
            if line.startswith("repro_engine_episodes_total")
        ]
        print("\nPrometheus exposition (excerpt):")
        for line in engine_lines:
            print(f"  {line}")

        # 3. Spans were persisted to the run's telemetry.jsonl; export them to
        #    Chrome trace_event JSON (same as: repro-search trace <run_dir>).
        result = export_chrome_trace(run_dir)
        print(
            f"\ntrace: {result['spans']} spans across {result['threads']} "
            f"threads -> {result['path']}"
        )
        print("open it in chrome://tracing or https://ui.perfetto.dev")


if __name__ == "__main__":
    main()
