"""Package metadata for the FaHaNa reproduction."""

import os
import re

from setuptools import find_packages, setup


def read_version() -> str:
    here = os.path.dirname(os.path.abspath(__file__))
    with open(os.path.join(here, "src", "repro", "version.py"), encoding="utf-8") as f:
        match = re.search(r'__version__\s*=\s*"([^"]+)"', f.read())
    if match is None:
        raise RuntimeError("cannot parse __version__ from src/repro/version.py")
    return match.group(1)


setup(
    name="fahana-repro",
    version=read_version(),
    description=(
        "Reproduction of 'The Larger The Fairer? Small Neural Networks Can "
        "Achieve Fairness for Edge Devices' (DAC 2022): fairness- and "
        "hardware-aware NAS with a parallel search engine"
    ),
    long_description=(
        "A from-scratch numpy implementation of the FaHaNa fairness- and "
        "hardware-aware neural architecture search framework, including the "
        "block-based search space, LSTM controller, backbone freezing, edge "
        "latency models, the paper's experiment harnesses and a search engine "
        "with parallel episode execution, content-addressed evaluation "
        "caching and checkpoint/resume, all driven by a declarative, "
        "serializable RunSpec API (repro.run) with a pluggable strategy "
        "registry."
    ),
    long_description_content_type="text/plain",
    author="paper-repo-growth",
    license="MIT",
    python_requires=">=3.9",
    package_dir={"": "src"},
    packages=find_packages("src"),
    install_requires=["numpy>=1.22"],
    extras_require={"test": ["pytest", "pytest-benchmark"]},
    entry_points={
        "console_scripts": [
            "repro-search=repro.engine.cli:main",
            "repro-lint=repro.analysis.cli:main",
        ],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "License :: OSI Approved :: MIT License",
        "Programming Language :: Python :: 3",
        "Topic :: Scientific/Engineering :: Artificial Intelligence",
    ],
)
