"""In-process model server: zoo entries behind per-model micro-batchers.

One :class:`ModelServer` fronts a zoo root.  The first predict for a model
loads its promoted weights, casts the model to the serving dtype (float32 by
default -- inference needs no float64 bit-parity and float32 roughly doubles
numpy kernel throughput) and starts a :class:`~repro.serving.batcher
.MicroBatcher` whose flush thread is the *only* thread that touches the
model, so the non-thread-safe numpy modules are safe under concurrent
callers.  Predictions are class indices from ``Trainer.predict`` -- the same
code path as offline evaluation, so served results bitwise-match a direct
``Trainer.predict`` on the served model.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional

import numpy as np

from repro.nn.trainer import Trainer, TrainingConfig
from repro.serving.batcher import MicroBatcher
from repro.serving.registry import DEFAULT_ZOO_ROOT, ZooRegistry


class _ServedModel:
    """One loaded model: weights, trainer and its micro-batcher."""

    def __init__(
        self,
        name: str,
        version: str,
        model,
        input_shape,
        max_batch_size: int,
        max_delay_ms: float,
        max_queue: int,
    ):
        self.name = name
        self.version = version
        self.model = model
        trainer = Trainer(
            TrainingConfig(
                batch_size=max_batch_size, inference_batch_size=max_batch_size
            )
        )
        self.trainer = trainer
        self.batcher = MicroBatcher(
            predict_fn=lambda batch: trainer.predict(
                model, batch, batch_size=max(batch.shape[0], 1)
            ),
            max_batch_size=max_batch_size,
            max_delay_ms=max_delay_ms,
            max_queue=max_queue,
            input_shape=input_shape,
            model_name=name,
        )

    def predict(self, inputs: np.ndarray) -> np.ndarray:
        return self.batcher.predict(inputs)


class ModelServer:
    """Serves promoted zoo models through per-model micro-batchers."""

    def __init__(
        self,
        zoo_root: str = DEFAULT_ZOO_ROOT,
        max_batch_size: int = 32,
        max_delay_ms: float = 5.0,
        max_queue: int = 256,
        dtype: Optional[str] = "float32",
    ):
        self.zoo = ZooRegistry(zoo_root)
        self.max_batch_size = max_batch_size
        self.max_delay_ms = max_delay_ms
        self.max_queue = max_queue
        self.dtype = dtype
        self._lock = threading.Lock()
        self._served: Dict[str, _ServedModel] = {}

    # -- model lifecycle -----------------------------------------------------------
    def _get_served(self, name: str) -> _ServedModel:
        with self._lock:
            served = self._served.get(name)
            if served is not None:
                return served
            model, descriptor, entry = self.zoo.load_model(name)
            if self.dtype is not None:
                model.astype(self.dtype)
            recorded = entry.manifest.get("input_shape")
            input_shape = (
                tuple(int(dim) for dim in recorded)
                if recorded
                else (
                    descriptor.stem.ch_in,
                    descriptor.input_resolution,
                    descriptor.input_resolution,
                )
            )
            served = _ServedModel(
                name=name,
                version=entry.version,
                model=model,
                input_shape=input_shape,
                max_batch_size=self.max_batch_size,
                max_delay_ms=self.max_delay_ms,
                max_queue=self.max_queue,
            )
            self._served[name] = served
            return served

    def invalidate(self, name: str) -> None:
        """Drop a loaded model (after a re-promotion changed ``latest``)."""
        with self._lock:
            served = self._served.pop(name, None)
        if served is not None:
            served.batcher.close()

    # -- serving -------------------------------------------------------------------
    def predict(self, name: str, inputs: np.ndarray) -> np.ndarray:
        """Blocking batched predict: class indices for ``inputs`` rows."""
        return self._get_served(name).predict(inputs)

    def models(self) -> List[Dict[str, Any]]:
        """Every zoo entry's manifest, with live serving stats when loaded."""
        with self._lock:
            loaded = dict(self._served)
        rows: List[Dict[str, Any]] = []
        for entry in self.zoo.list_entries():
            row: Dict[str, Any] = dict(entry.manifest)
            served = loaded.get(entry.name)
            if served is not None and served.version == entry.version:
                row["serving"] = served.batcher.stats()
            rows.append(row)
        return rows

    def close(self) -> None:
        """Stop every model's batcher (draining queued requests first)."""
        with self._lock:
            served = list(self._served.values())
            self._served.clear()
        for model in served:
            model.batcher.close()
