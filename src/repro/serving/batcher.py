"""Request micro-batching: coalesce concurrent predicts into one forward pass.

Single-row inference through a pure-numpy network is dominated by per-layer
Python dispatch; a batch of 32 rows pays that overhead once.  The
:class:`MicroBatcher` exploits this: callers block in :meth:`predict` while
a single flush thread gathers concurrent requests into one batch and runs
the model once, so serving throughput scales with batch efficiency instead
of request count.

Flush policy (the two serving knobs):

* **max_batch_size** -- a flush fires as soon as this many rows are queued,
* **max_delay_ms** -- a flush fires this long after the *oldest* queued
  request arrived, whatever the batch size; the deadline therefore bounds
  the queueing component of every request's latency.

The queue is bounded (``max_queue`` rows): a submit that would overflow it
raises :class:`QueueFull` immediately -- backpressure, surfaced as HTTP 429
by the daemon -- instead of letting latency grow without bound.  Requests
are never split across flushes and results are re-sliced per request in
submission order, so callers always get their own rows back.

All timing uses the monotonic clock and the ``repro.obs`` instruments only
*observe* (requests, batch sizes, queue waits); flush decisions never read a
metric, and disabling instrumentation leaves predictions bit-identical.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.obs import metrics as obs_metrics

BATCH_SIZE_BUCKETS: Tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256)

# Serving instruments, cached per registry (same idiom as the trainer's).
_instrument_cache: Tuple[Optional[obs_metrics.MetricsRegistry], tuple] = (None, ())


def _serving_instruments() -> tuple:
    global _instrument_cache
    registry = obs_metrics.get_registry()
    cached_registry, instruments = _instrument_cache
    if cached_registry is not registry:
        instruments = (
            registry.counter(
                "repro_serving_requests_total",
                "Predict requests completed",
                labelnames=("model",),
            ),
            registry.counter(
                "repro_serving_batches_total",
                "Micro-batches executed",
                labelnames=("model",),
            ),
            registry.counter(
                "repro_serving_rejected_total",
                "Predict requests rejected by queue backpressure",
                labelnames=("model",),
            ),
            registry.histogram(
                "repro_serving_batch_size",
                "Rows per executed micro-batch",
                labelnames=("model",),
                buckets=BATCH_SIZE_BUCKETS,
            ),
            registry.histogram(
                "repro_serving_queue_wait_seconds",
                "Time a request spent queued before its batch ran",
                labelnames=("model",),
            ),
            registry.histogram(
                "repro_serving_request_seconds",
                "End-to-end request latency (queue wait + batch compute)",
                labelnames=("model",),
            ),
        )
        _instrument_cache = (registry, instruments)  # repro-lint: disable=THR001 -- benign last-write-wins cache: concurrent writers build identical tuples from the same locked registry
    return instruments


class QueueFull(RuntimeError):
    """The batcher's bounded request queue is at capacity (backpressure)."""

    def __init__(self, model: str, queued_rows: int, max_queue: int):
        super().__init__(
            f"serving queue for model {model!r} is full "
            f"({queued_rows}/{max_queue} rows queued); retry later"
        )
        self.model = model
        self.queued_rows = queued_rows
        self.max_queue = max_queue


class _Pending:
    """One in-flight predict call, owned by its submitting thread."""

    __slots__ = ("inputs", "enqueued", "done", "result", "error")

    def __init__(self, inputs: np.ndarray, enqueued: float):
        self.inputs = inputs
        self.enqueued = enqueued
        self.done = threading.Event()
        self.result: Optional[np.ndarray] = None
        self.error: Optional[BaseException] = None


class MicroBatcher:
    """Coalesces concurrent ``predict`` calls into single batched forwards.

    ``predict_fn`` receives one ``(rows, *input_shape)`` array per flush and
    must return one result row per input row; it runs only on the flush
    thread, so a non-thread-safe model (every :class:`~repro.nn.module.Module`
    is one) is safe behind a batcher.  ``input_shape`` (when given) validates
    each submission's trailing shape up front, so one malformed request fails
    alone instead of poisoning the batch it would have joined.
    """

    def __init__(
        self,
        predict_fn: Callable[[np.ndarray], np.ndarray],
        max_batch_size: int = 32,
        max_delay_ms: float = 5.0,
        max_queue: int = 128,
        input_shape: Optional[Tuple[int, ...]] = None,
        model_name: str = "model",
    ):
        if max_batch_size <= 0:
            raise ValueError("max_batch_size must be positive")
        if max_delay_ms < 0:
            raise ValueError("max_delay_ms must be non-negative")
        if max_queue < max_batch_size:
            raise ValueError("max_queue must be at least max_batch_size")
        self.predict_fn = predict_fn
        self.max_batch_size = max_batch_size
        self.max_delay_ms = max_delay_ms
        self.max_queue = max_queue
        self.input_shape = tuple(input_shape) if input_shape is not None else None
        self.model_name = model_name

        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._pending: List[_Pending] = []
        self._pending_rows = 0
        self._closed = False
        # Reusable staging buffer: steady-state serving copies request rows
        # into the same workspace instead of concatenating fresh arrays.
        self._staging: Optional[np.ndarray] = None
        self._staging_key: Optional[Tuple[Tuple[int, ...], np.dtype]] = None
        # Plain counters for stats(); metrics mirror these when obs is on.
        self._requests_total = 0
        self._batches_total = 0
        self._rejected_total = 0
        self._rows_total = 0
        self._largest_batch = 0

        self._thread = threading.Thread(
            target=self._flush_loop,
            daemon=True,
            name=f"repro-serving-batcher-{model_name}",
        )
        self._thread.start()

    # -- submission ----------------------------------------------------------------
    def predict(self, inputs: np.ndarray) -> np.ndarray:
        """Block until the micro-batch containing ``inputs`` has run.

        ``inputs`` is one request of shape ``(rows, *input_shape)``; the
        returned array holds exactly this request's result rows, in order.
        """
        inputs = np.asarray(inputs)
        if inputs.ndim < 2:
            raise ValueError(
                f"predict expects a batch of shape (rows, ...); got {inputs.shape}"
            )
        if self.input_shape is not None and tuple(inputs.shape[1:]) != self.input_shape:
            raise ValueError(
                f"request rows have shape {tuple(inputs.shape[1:])}, "
                f"model expects {self.input_shape}"
            )
        rows = inputs.shape[0]
        if rows == 0:
            return np.zeros((0,), dtype=np.int64)

        pending = _Pending(inputs, time.monotonic())
        with self._lock:
            if self._closed:
                raise RuntimeError(f"batcher for {self.model_name!r} is closed")
            if self._pending_rows + rows > self.max_queue:
                self._rejected_total += 1
                if obs_metrics.enabled():
                    _serving_instruments()[2].labels(model=self.model_name).inc()
                raise QueueFull(self.model_name, self._pending_rows, self.max_queue)
            self._pending.append(pending)
            self._pending_rows += rows
            self._wake.notify()
        pending.done.wait()
        if pending.error is not None:
            raise pending.error
        return pending.result

    # -- flush thread --------------------------------------------------------------
    def _flush_loop(self) -> None:
        while True:
            batch = self._next_batch()
            if batch is None:
                return
            self._run_batch(batch)

    def _next_batch(self) -> Optional[List[_Pending]]:
        """Wait for a full batch or an expired deadline; None when drained."""
        with self._lock:
            while True:
                if self._pending:
                    if self._pending_rows >= self.max_batch_size:
                        break
                    deadline = self._pending[0].enqueued + self.max_delay_ms / 1000.0
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._wake.wait(timeout=remaining)
                elif self._closed:
                    return None
                else:
                    self._wake.wait()
            taken: List[_Pending] = []
            rows = 0
            while self._pending:
                request = self._pending[0]
                request_rows = request.inputs.shape[0]
                if taken and rows + request_rows > self.max_batch_size:
                    break
                taken.append(self._pending.pop(0))
                rows += request_rows
            self._pending_rows -= rows
            return taken

    def _staging_view(self, taken: List[_Pending], total: int) -> np.ndarray:
        """Copy the requests into the reusable staging workspace."""
        row_shape = tuple(taken[0].inputs.shape[1:])
        dtype = taken[0].inputs.dtype
        key = (row_shape, dtype)
        if (
            self._staging is None
            or self._staging_key != key
            or self._staging.shape[0] < total
        ):
            capacity = max(self.max_batch_size, total)
            self._staging = np.empty((capacity,) + row_shape, dtype=dtype)
            self._staging_key = key
        view = self._staging[:total]
        offset = 0
        for request in taken:
            rows = request.inputs.shape[0]
            view[offset : offset + rows] = request.inputs
            offset += rows
        return view

    def _run_batch(self, taken: List[_Pending]) -> None:
        total = sum(request.inputs.shape[0] for request in taken)
        started = time.monotonic()
        instrumented = obs_metrics.enabled()
        try:
            homogeneous = all(
                request.inputs.shape[1:] == taken[0].inputs.shape[1:]
                and request.inputs.dtype == taken[0].inputs.dtype
                for request in taken
            )
            if homogeneous:
                batch = self._staging_view(taken, total)
            else:
                batch = np.concatenate([request.inputs for request in taken])
            results = np.asarray(self.predict_fn(batch))
            if results.shape[0] != total:
                raise RuntimeError(
                    f"predict_fn returned {results.shape[0]} rows for a "
                    f"{total}-row batch"
                )
            offset = 0
            for request in taken:
                rows = request.inputs.shape[0]
                # Copy: the model may hand back views of reusable buffers.
                request.result = np.array(results[offset : offset + rows], copy=True)
                offset += rows
        except BaseException as error:  # surface on every waiting caller
            for request in taken:
                request.error = error
        finally:
            finished = time.monotonic()
            with self._lock:
                self._requests_total += len(taken)
                self._batches_total += 1
                self._rows_total += total
                self._largest_batch = max(self._largest_batch, total)
            if instrumented:
                instruments = _serving_instruments()
                label = {"model": self.model_name}
                instruments[0].labels(**label).inc(len(taken))
                instruments[1].labels(**label).inc()
                instruments[3].labels(**label).observe(float(total))
                for request in taken:
                    instruments[4].labels(**label).observe(
                        started - request.enqueued
                    )
                    instruments[5].labels(**label).observe(
                        finished - request.enqueued
                    )
            for request in taken:
                request.done.set()

    # -- lifecycle / stats ---------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Live counters (requests, batches, rejections, mean batch size)."""
        with self._lock:
            batches = self._batches_total
            return {
                "model": self.model_name,
                "max_batch_size": self.max_batch_size,
                "max_delay_ms": self.max_delay_ms,
                "max_queue": self.max_queue,
                "requests_total": self._requests_total,
                "batches_total": batches,
                "rejected_total": self._rejected_total,
                "queued_rows": self._pending_rows,
                "largest_batch": self._largest_batch,
                "mean_batch_size": (self._rows_total / batches) if batches else 0.0,
            }

    def close(self, timeout: float = 5.0) -> None:
        """Drain queued requests, then stop the flush thread."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._wake.notify_all()
        self._thread.join(timeout=timeout)
