"""Deterministic weight artifacts for the model zoo.

``numpy.savez`` embeds the current wall-clock in every zip member header, so
two otherwise identical saves differ byte-for-byte -- which would break the
zoo's contract that promoting the same run twice produces *byte-identical*
entries (the property the content-hash dedupe store relies on).  The writer
here builds the same ``.npz`` container by hand: one uncompressed ``.npy``
member per array, names sorted, every zip timestamp pinned to the DOS epoch.
``numpy.load`` reads the result like any other ``.npz`` archive.

The capture/restore helpers snapshot a model's *complete* numeric state:
parameters via ``state_dict`` plus every registered buffer (batch-norm
running statistics), keyed by qualified name under a ``param/`` or
``buffer/`` prefix so the two namespaces cannot collide.
"""

from __future__ import annotations

import io
import os
import zipfile
from typing import Dict

import numpy as np

from repro.nn.module import Module
from repro.utils.fingerprint import array_fingerprint, combine_fingerprints

PARAM_PREFIX = "param/"
BUFFER_PREFIX = "buffer/"

# Fixed DOS-epoch timestamp for every zip member: saves carry no wall-clock.
_ZIP_EPOCH = (1980, 1, 1, 0, 0, 0)


# -- model state capture / restore ---------------------------------------------------
def capture_model_arrays(model: Module) -> Dict[str, np.ndarray]:
    """Snapshot every parameter and buffer of ``model`` by qualified name."""
    arrays: Dict[str, np.ndarray] = {}
    for name, value in model.state_dict().items():
        arrays[f"{PARAM_PREFIX}{name}"] = value
    for name, value in model.named_buffers():
        arrays[f"{BUFFER_PREFIX}{name}"] = np.asarray(value).copy()
    return arrays


def _submodule(model: Module, dotted: str) -> Module:
    module = model
    for part in dotted.split("."):
        if part not in module._modules:
            raise KeyError(f"model has no sub-module {dotted!r}")
        module = module._modules[part]
    return module


def restore_model_arrays(model: Module, arrays: Dict[str, np.ndarray]) -> None:
    """Load a :func:`capture_model_arrays` snapshot back into ``model``."""
    state = {
        name[len(PARAM_PREFIX) :]: value
        for name, value in arrays.items()
        if name.startswith(PARAM_PREFIX)
    }
    model.load_state_dict(state)
    for name, value in arrays.items():
        if not name.startswith(BUFFER_PREFIX):
            continue
        qualified = name[len(BUFFER_PREFIX) :]
        owner, _, leaf = qualified.rpartition(".")
        module = _submodule(model, owner) if owner else model
        if leaf not in module._buffers:
            raise KeyError(f"model has no buffer {qualified!r}")
        module.register_buffer(
            leaf, np.asarray(value, dtype=module._buffers[leaf].dtype).copy()
        )


def model_content_hash(arrays: Dict[str, np.ndarray]) -> str:
    """Content fingerprint of a weight snapshot (names, shapes, dtypes, bytes)."""
    parts = [
        combine_fingerprints(name, array_fingerprint(arrays[name]))
        for name in sorted(arrays)
    ]
    return combine_fingerprints("model-arrays", *parts)


# -- deterministic npz ---------------------------------------------------------------
def arrays_to_bytes(arrays: Dict[str, np.ndarray]) -> bytes:
    """``arrays`` as byte-deterministic ``.npz`` archive contents.

    Equal inputs always produce equal bytes: member order is the sorted name
    order, members are stored uncompressed and every timestamp is the fixed
    DOS epoch.  This is what makes the archive content-addressable -- the
    zoo stores it under ``sha256(bytes)`` and equal weights dedupe by key.
    """
    out = io.BytesIO()
    with zipfile.ZipFile(out, "w", zipfile.ZIP_STORED) as archive:
        for name in sorted(arrays):
            buffer = io.BytesIO()
            np.lib.format.write_array(
                buffer, np.ascontiguousarray(arrays[name]), allow_pickle=False
            )
            info = zipfile.ZipInfo(f"{name}.npy", date_time=_ZIP_EPOCH)
            info.compress_type = zipfile.ZIP_STORED
            info.external_attr = 0o600 << 16  # fixed mode bits
            archive.writestr(info, buffer.getvalue())
    return out.getvalue()


def save_arrays(path: str, arrays: Dict[str, np.ndarray]) -> str:
    """Write :func:`arrays_to_bytes` to ``path``.

    The write goes through a temp file + ``os.replace`` so a concurrent
    reader of a dedupe blob never sees a torn archive.
    """
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    tmp = f"{path}.tmp"
    with open(tmp, "wb") as handle:
        handle.write(arrays_to_bytes(arrays))
    os.replace(tmp, path)
    return path


def load_arrays(path: str) -> Dict[str, np.ndarray]:
    """Read an archive written by :func:`save_arrays`."""
    with np.load(path, allow_pickle=False) as archive:
        return {name: archive[name] for name in archive.files}


def load_arrays_bytes(data: bytes) -> Dict[str, np.ndarray]:
    """Read :func:`arrays_to_bytes` output without touching the filesystem."""
    with np.load(io.BytesIO(data), allow_pickle=False) as archive:
        return {name: archive[name] for name in archive.files}
