"""Model zoo: promote finished search runs into versioned, deployable entries.

A zoo entry is the deployable form of one discovered child network::

    <zoo_root>/
      _blobs/objects/ab/cdef...       content-addressed weight archives
                                      (a repro.store.LocalStore root)
      <name>/
        latest                        version pointer (plain text)
        <version>/
          MANIFEST.json               identity, lineage and headline numbers
          model.json                  descriptor + build parameters
          run_spec.json               the resolved spec of the source run
          report_card.json            fairness + per-device latency card

Promotion is **deterministic retraining**: the search trains children with
producer-drawn init seeds that are not persisted, so instead of trying to
replay the search, ``promote_run`` rebuilds the winning descriptor with an
init seed derived from the spec and architecture fingerprints and retrains
it at the spec's child fidelity -- the standard NAS deploy step.  Every
artifact is content-derived (no wall-clock anywhere), so promoting the same
finished run twice writes byte-identical files and the weights blob dedupes
by hash.  The version id *is* the content fingerprint of (spec, architecture,
weights), truncated.

Weight archives live in a :class:`repro.store.LocalStore` under ``_blobs/``
(sharded ``objects/ab/...`` layout, hash-verified reads).  Manifests record
both the store key (``weights_object``) and the zoo-root-relative path
(``weights_blob``); entries promoted before the store migration carry only
the legacy flat ``_blobs/<hash>.npz`` path, which :meth:`ZooRegistry.load_model`
still reads.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.api.spec import RunSpec
from repro.engine.serde import (
    descriptor_from_dict,
    descriptor_to_dict,
    history_from_dict,
)
from repro.fairness.report import evaluate_fairness
from repro.hardware.device import get_device, list_devices
from repro.hardware.latency import estimate_latency_ms
from repro.nn.module import Module
from repro.nn.trainer import Trainer, TrainingConfig
from repro.serving.artifacts import (
    arrays_to_bytes,
    capture_model_arrays,
    load_arrays,
    load_arrays_bytes,
    model_content_hash,
    restore_model_arrays,
)
from repro.store import LocalStore
from repro.service import registry as runs_registry
from repro.service.errors import RunNotReady
from repro.service.registry import RunRegistry
from repro.utils.fingerprint import combine_fingerprints
from repro.utils.serialization import load_json, save_json
from repro.zoo.descriptors import ArchitectureDescriptor

DEFAULT_ZOO_ROOT = "zoo"
BLOBS_DIR = "_blobs"
MANIFEST_JSON = "MANIFEST.json"
MODEL_JSON = "model.json"
RUN_SPEC_JSON = "run_spec.json"
REPORT_CARD_JSON = "report_card.json"
LATEST_POINTER = "latest"

# Single-image latency budgets (ms) on the reference device, matching the
# deployment tiers of examples/edge_deployment.py.
LATENCY_CLASSES: Tuple[Tuple[str, float], ...] = (
    ("edge-fast", 700.0),
    ("edge", 1500.0),
    ("mobile", 2500.0),
)
REFERENCE_DEVICE = "raspberry-pi-4"

# Reserved by the daemon's POST /models/promote route.
RESERVED_NAMES = ("promote",)


class ModelNotFound(KeyError):
    """No zoo entry with the given name/version exists."""

    def __init__(self, name: str, version: Optional[str] = None):
        super().__init__(name)
        self.name = name
        self.version = version

    def __str__(self) -> str:
        suffix = f":{self.version}" if self.version else ""
        return f"unknown zoo model {self.name + suffix!r}"


def latency_class(latency_ms: float) -> str:
    """Deployment tier of a single-image latency on the reference device."""
    for name, budget_ms in LATENCY_CLASSES:
        if latency_ms <= budget_ms:
            return name
    return "server"


def _sanitize_name(raw: str) -> str:
    cleaned = "".join(ch if ch.isalnum() or ch in "-_." else "-" for ch in raw)
    cleaned = cleaned.strip("-.").lower()
    return cleaned or "model"


def derive_init_seed(spec_cache_key: str, descriptor_cache_key: str) -> int:
    """Deterministic weight-init seed from the run/architecture lineage."""
    return int(
        combine_fingerprints("zoo-init", spec_cache_key, descriptor_cache_key)[:8],
        16,
    )


@dataclass
class ZooEntry:
    """One promoted model version on disk."""

    name: str
    version: str
    path: str
    manifest: Dict[str, Any] = field(default_factory=dict)

    @property
    def summary_row(self) -> str:
        ref_ms = self.manifest.get("reference_latency_ms")
        accuracy = self.manifest.get("accuracy")
        return (
            f"{self.name}:{self.version:14s} "
            f"run={self.manifest.get('source_run_id', '?'):24s} "
            f"latency={self.manifest.get('latency_class', '?'):9s}"
            f"{'' if ref_ms is None else f' ({ref_ms:.0f}ms)'} "
            f"acc={'-' if accuracy is None else format(accuracy, '.2%')}"
        )


class ZooRegistry:
    """Creates and reads the versioned entries of one zoo root."""

    def __init__(self, root: str = DEFAULT_ZOO_ROOT, store: Optional[LocalStore] = None):
        self.root = os.path.abspath(root)
        os.makedirs(self.root, exist_ok=True)
        # Weight archives are content-addressed: the blobs dir is a store
        # root, so equal weights dedupe by key and reads are hash-verified.
        self.store = store or LocalStore(os.path.join(self.root, BLOBS_DIR))

    # -- paths --------------------------------------------------------------------
    def entry_dir(self, name: str, version: str) -> str:
        return os.path.join(self.root, name, version)

    def blob_path(self, weights_hash: str) -> str:
        """The pre-store flat blob path (still readable, no longer written)."""
        return os.path.join(self.root, BLOBS_DIR, f"{weights_hash}.npz")

    # -- listing / lookup ---------------------------------------------------------
    def list_entries(self) -> List[ZooEntry]:
        """Every promoted (name, version) pair, sorted."""
        entries: List[ZooEntry] = []
        for name in sorted(os.listdir(self.root)):
            model_dir = os.path.join(self.root, name)
            if name == BLOBS_DIR or not os.path.isdir(model_dir):
                continue
            for version in sorted(os.listdir(model_dir)):
                manifest_path = os.path.join(model_dir, version, MANIFEST_JSON)
                if os.path.isfile(manifest_path):
                    entries.append(
                        ZooEntry(
                            name=name,
                            version=version,
                            path=os.path.join(model_dir, version),
                            manifest=load_json(manifest_path),
                        )
                    )
        return entries

    def get(self, name: str, version: Optional[str] = None) -> ZooEntry:
        """Look an entry up; ``version=None`` follows the ``latest`` pointer."""
        model_dir = os.path.join(self.root, name)
        if version is None:
            pointer = os.path.join(model_dir, LATEST_POINTER)
            if not os.path.isfile(pointer):
                raise ModelNotFound(name)
            with open(pointer, "r", encoding="utf-8") as handle:
                version = handle.read().strip()
        path = self.entry_dir(name, version)
        manifest_path = os.path.join(path, MANIFEST_JSON)
        if not os.path.isfile(manifest_path):
            raise ModelNotFound(name, version)
        return ZooEntry(
            name=name, version=version, path=path, manifest=load_json(manifest_path)
        )

    def load_model(
        self, name: str, version: Optional[str] = None
    ) -> Tuple[Module, ArchitectureDescriptor, ZooEntry]:
        """Rebuild a promoted model with its stored weights."""
        entry = self.get(name, version)
        payload = load_json(os.path.join(entry.path, MODEL_JSON))
        descriptor = descriptor_from_dict(payload["descriptor"])
        model = descriptor.build(
            num_classes=int(payload["num_classes"]),
            width_multiplier=float(payload["width_multiplier"]),
            rng=int(payload["init_seed"]),
        )
        arrays = self._load_weights(entry.manifest)
        restore_model_arrays(model, arrays)
        return model, descriptor, entry

    def _load_weights(self, manifest: Dict[str, Any]) -> Dict[str, np.ndarray]:
        """A manifest's weight snapshot, store-first with a legacy fallback.

        Entries promoted since the store migration carry ``weights_object``
        (a content key); reading through the store verifies the archive
        hash.  Older manifests only name the flat ``_blobs/<hash>.npz``
        path, which remains readable in place.
        """
        key = manifest.get("weights_object")
        if key is not None:
            data = self.store.get(str(key))
            if data is not None:
                return load_arrays_bytes(data)
        return load_arrays(os.path.join(self.root, manifest["weights_blob"]))

    # -- promotion ----------------------------------------------------------------
    def promote_run(
        self,
        runs: Union[RunRegistry, str],
        run_id: str,
        name: Optional[str] = None,
        episode: Optional[int] = None,
    ) -> ZooEntry:
        """Promote the best child of a finished run into a zoo entry.

        ``runs`` is a :class:`RunRegistry` (or a runs-root path).  ``episode``
        pins a specific episode record instead of the best-reward one -- how
        a deployment picks a non-default Pareto point.  Raises
        :class:`~repro.service.errors.RunNotFound` for unknown runs and
        :class:`~repro.service.errors.RunNotReady` until the run finished.
        """
        registry = runs if isinstance(runs, RunRegistry) else RunRegistry(runs)
        status = registry.load_status(run_id)
        if status.get("state") != runs_registry.FINISHED:
            raise RunNotReady(run_id, status.get("state", "?"))
        report = registry.load_report(run_id)
        if report is None:
            raise RunNotReady(run_id, status.get("state", "?"))

        spec = RunSpec.from_dict(report["spec"])
        history = history_from_dict(report["history"])
        if episode is None:
            record = history.best_record()
            if record is None:
                raise ValueError(
                    f"run {run_id!r} has no constraint-satisfying episode to "
                    "promote (every child drew the -1 penalty); pass episode= "
                    "to pin one explicitly"
                )
        else:
            matches = [r for r in history.records if r.episode == episode]
            if not matches:
                raise ValueError(
                    f"run {run_id!r} has no episode {episode}; recorded: "
                    f"{sorted(r.episode for r in history.records)}"
                )
            record = matches[0]
        descriptor = record.descriptor

        spec_key = report.get("spec_cache_key") or spec.cache_key()
        arch_key = descriptor.cache_key()
        init_seed = derive_init_seed(spec_key, arch_key)

        splits = spec.dataset.build()
        model, trainer = self._train_promoted(spec, splits, descriptor, init_seed)
        fairness = evaluate_fairness(model, splits.validation, trainer)

        arrays = capture_model_arrays(model)
        weights_hash = model_content_hash(arrays)
        version = "v" + combine_fingerprints(
            "zoo-version", spec_key, arch_key, weights_hash
        )[:12]
        resolved_name = _sanitize_name(name or descriptor.name or descriptor.family)
        if resolved_name in RESERVED_NAMES:
            raise ValueError(
                f"model name {resolved_name!r} is reserved by the serving API; "
                "pass an explicit --name"
            )

        # Content-addressed publication: put() dedupes re-promotions of the
        # same weights (equal bytes -> equal key -> one object on disk).
        weights_payload = arrays_to_bytes(arrays)
        weights_object = self.store.put(weights_payload)

        latencies = {
            device: estimate_latency_ms(descriptor, get_device(device))
            for device in list_devices()
        }
        reference_ms = latencies[REFERENCE_DEVICE]
        tier = latency_class(reference_ms)

        entry_dir = self.entry_dir(resolved_name, version)
        os.makedirs(entry_dir, exist_ok=True)
        manifest = {
            "name": resolved_name,
            "version": version,
            "source_run_id": run_id,
            "episode": record.episode,
            "spec_cache_key": spec_key,
            "descriptor_cache_key": arch_key,
            "weights_hash": weights_hash,
            "weights_object": weights_object,
            "weights_blob": os.path.join(
                BLOBS_DIR, self.store.object_relpath(weights_object)
            ),
            "init_seed": init_seed,
            # The shape served requests must have: the source dataset's
            # resolution, not the descriptor's paper-scale input_resolution.
            "input_shape": [
                descriptor.stem.ch_in,
                spec.dataset.image_size,
                spec.dataset.image_size,
            ],
            "accuracy": fairness.overall_accuracy,
            "unfairness": fairness.unfairness,
            "reference_device": REFERENCE_DEVICE,
            "reference_latency_ms": reference_ms,
            "latency_class": tier,
        }
        save_json(os.path.join(entry_dir, MANIFEST_JSON), manifest)
        save_json(
            os.path.join(entry_dir, MODEL_JSON),
            {
                "descriptor": descriptor_to_dict(descriptor),
                "num_classes": spec.dataset.num_classes,
                "width_multiplier": spec.search.width_multiplier,
                "init_seed": init_seed,
                "precision": trainer.config.precision,
                "inference_batch_size": trainer.config.inference_batch_size,
            },
        )
        save_json(os.path.join(entry_dir, RUN_SPEC_JSON), spec.to_dict())
        save_json(
            os.path.join(entry_dir, REPORT_CARD_JSON),
            {
                "accuracy": fairness.overall_accuracy,
                "group_accuracy": fairness.group_accuracy,
                "unfairness": fairness.unfairness,
                "latency_ms": latencies,
                "latency_class": tier,
                "num_parameters": model.num_parameters(),
                "storage_mb": model.num_parameters() * 4 / 1e6,
                "search_reward": record.reward,
                "search_accuracy": record.accuracy,
                "search_unfairness": record.unfairness,
            },
        )
        pointer = os.path.join(self.root, resolved_name, LATEST_POINTER)
        with open(f"{pointer}.tmp", "w", encoding="utf-8") as handle:
            handle.write(f"{version}\n")
        os.replace(f"{pointer}.tmp", pointer)
        return ZooEntry(
            name=resolved_name, version=version, path=entry_dir, manifest=manifest
        )

    def _train_promoted(
        self, spec: RunSpec, splits, descriptor: ArchitectureDescriptor, init_seed: int
    ) -> Tuple[Module, Trainer]:
        """Deterministically retrain a descriptor at the spec's child fidelity."""
        model = descriptor.build(
            num_classes=spec.dataset.num_classes,
            width_multiplier=spec.search.width_multiplier,
            rng=init_seed,
        )
        compute = spec.compute
        config = TrainingConfig(
            epochs=spec.search.child_epochs,
            batch_size=spec.search.child_batch_size,
            seed=spec.search.seed,
            precision=compute.precision if compute is not None else None,
            inference_batch_size=(
                compute.inference_batch_size if compute is not None else None
            ),
        )
        trainer = Trainer(config)
        trainer.fit(model, splits.train.images, splits.train.labels)
        return model, trainer
