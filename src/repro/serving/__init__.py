"""Inference serving: the model zoo and the batched inference engine.

``repro.serving`` turns a finished search into something that answers
traffic: :class:`~repro.serving.registry.ZooRegistry` promotes the best
child of a ``runs/<run_id>/`` directory into a versioned, content-addressed
``zoo/<name>/<version>/`` entry, and
:class:`~repro.serving.server.ModelServer` serves promoted entries behind
per-model request micro-batchers
(:class:`~repro.serving.batcher.MicroBatcher`).  The daemon exposes the
server as ``POST /models/<name>/predict`` / ``GET /models`` /
``POST /models/promote``; ``benchmarks/bench_serving.py`` tracks the
batching speedup in ``BENCH_serving.json``.
"""

from repro.serving.batcher import MicroBatcher, QueueFull
from repro.serving.registry import ModelNotFound, ZooEntry, ZooRegistry, latency_class
from repro.serving.server import ModelServer

__all__ = [
    "MicroBatcher",
    "ModelNotFound",
    "ModelServer",
    "QueueFull",
    "ZooEntry",
    "ZooRegistry",
    "latency_class",
]
