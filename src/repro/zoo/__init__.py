"""Reference architecture zoo.

These are the competitor networks of the paper's evaluation (Figures 1/2/6,
Tables 1/3/4): MobileNetV2, MobileNetV3 Small/Large, MnasNet 0.5/1.0,
ProxylessNAS Mobile/GPU, ResNet-18/34/50 and SqueezeNet 1.0, all expressed as
:class:`~repro.zoo.descriptors.ArchitectureDescriptor` objects built from the
same block vocabulary as the FaHaNa search space.
"""

from repro.zoo.descriptors import ArchitectureDescriptor, HeadSpec
from repro.zoo.registry import (
    get_architecture,
    list_architectures,
    register_architecture,
    GROUP_SMALL,
    GROUP_LARGE,
)

__all__ = [
    "ArchitectureDescriptor",
    "HeadSpec",
    "get_architecture",
    "list_architectures",
    "register_architecture",
    "GROUP_SMALL",
    "GROUP_LARGE",
]
