"""MnasNet descriptors (Tan et al., 2019), B1 variant."""

from __future__ import annotations

from typing import List

from repro.blocks.spec import BlockSpec, ClassifierSpec, StemSpec
from repro.zoo.descriptors import ArchitectureDescriptor, HeadSpec
from repro.zoo.stages import inverted_residual_stage, make_divisible


def mnasnet(num_classes: int = 5, width: float = 1.0) -> ArchitectureDescriptor:
    """MnasNet-B1 scaled by ``width`` (0.5 and 1.0 are used by the paper)."""

    def ch(value: int) -> int:
        return make_divisible(value * width)

    blocks: List[BlockSpec] = []
    stem_out = ch(32)
    # The separable-conv first stage of MnasNet is modelled as an expansion-1
    # inverted residual (depthwise 3x3 + pointwise), as in torchvision.
    blocks.append(
        BlockSpec(
            block_type="DB",
            ch_in=stem_out,
            ch_mid=stem_out,
            ch_out=ch(16),
            kernel=3,
            stride=1,
        )
    )
    current = ch(16)
    # (expansion, out_channels, repeats, stride, kernel)
    settings = [
        (3, 24, 3, 2, 3),
        (3, 40, 3, 2, 5),
        (6, 80, 3, 2, 5),
        (6, 96, 2, 1, 3),
        (6, 192, 4, 2, 5),
        (6, 320, 1, 1, 3),
    ]
    for expansion, out, repeats, stride, kernel in settings:
        blocks.extend(
            inverted_residual_stage(
                current, ch(out), expansion, repeats, stride, kernel
            )
        )
        current = ch(out)
    return ArchitectureDescriptor(
        name=f"MnasNet {width:g}",
        stem=StemSpec(ch_in=3, ch_out=stem_out, kernel=3, stride=2),
        blocks=tuple(blocks),
        head=HeadSpec(ch_in=current, ch_out=1280),
        classifier=ClassifierSpec(ch_in=1280, num_classes=num_classes),
        input_resolution=224,
        family="MnasNet",
    )


def mnasnet_0_5(num_classes: int = 5) -> ArchitectureDescriptor:
    """MnasNet with a 0.5 width multiplier (the paper's smallest competitor)."""
    return mnasnet(num_classes=num_classes, width=0.5)


def mnasnet_1_0(num_classes: int = 5) -> ArchitectureDescriptor:
    """MnasNet with the full width."""
    return mnasnet(num_classes=num_classes, width=1.0)
