"""Name-based registry of the reference architectures.

Names follow the paper's tables exactly (for example ``"MnasNet 0.5"`` and
``"ProxylessNAS(M)"``) so that experiment harness output lines up with the
published rows.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.zoo.descriptors import ArchitectureDescriptor
from repro.zoo.fahana_nets import fahana_fair, fahana_small
from repro.zoo.mnasnet import mnasnet_0_5, mnasnet_1_0
from repro.zoo.mobilenet import mobilenet_v2, mobilenet_v3_large, mobilenet_v3_small
from repro.zoo.proxylessnas import proxylessnas_gpu, proxylessnas_mobile
from repro.zoo.resnet import resnet18, resnet34, resnet50
from repro.zoo.squeezenet import squeezenet

ArchitectureFactory = Callable[..., ArchitectureDescriptor]

_REGISTRY: Dict[str, ArchitectureFactory] = {
    "MobileNetV2": mobilenet_v2,
    "MobileNetV3(S)": mobilenet_v3_small,
    "MobileNetV3(L)": mobilenet_v3_large,
    "MnasNet 0.5": mnasnet_0_5,
    "MnasNet 1.0": mnasnet_1_0,
    "ProxylessNAS(M)": proxylessnas_mobile,
    "ProxylessNAS(G)": proxylessnas_gpu,
    "ResNet-18": resnet18,
    "ResNet-34": resnet34,
    "ResNet-50": resnet50,
    "SqueezeNet 1.0": squeezenet,
    "FaHaNa-Small": fahana_small,
    "FaHaNa-Fair": fahana_fair,
}

# The paper's evaluation groups: G1 (< 4M parameters), G2 (>= 4M parameters).
GROUP_SMALL: List[str] = [
    "MobileNetV2",
    "ProxylessNAS(M)",
    "MnasNet 0.5",
    "MobileNetV3(S)",
    "MnasNet 1.0",
    "FaHaNa-Small",
]
GROUP_LARGE: List[str] = [
    "ResNet-50",
    "ResNet-18",
    "ResNet-34",
    "ProxylessNAS(G)",
    "MobileNetV3(L)",
    "FaHaNa-Fair",
]


def register_architecture(name: str, factory: ArchitectureFactory) -> None:
    """Register a custom architecture factory under ``name``."""
    if name in _REGISTRY:
        raise ValueError(f"architecture {name!r} is already registered")
    _REGISTRY[name] = factory  # repro-lint: disable=THR001 -- import-time registration on the driving thread, never from workers


def list_architectures() -> List[str]:
    """Names of every registered architecture."""
    return sorted(_REGISTRY)


def get_architecture(name: str, **kwargs) -> ArchitectureDescriptor:
    """Instantiate the descriptor registered under ``name``."""
    if name not in _REGISTRY:
        raise KeyError(
            f"unknown architecture {name!r}; known: {', '.join(sorted(_REGISTRY))}"
        )
    return _REGISTRY[name](**kwargs)
