"""MobileNetV2 and MobileNetV3 descriptors.

The block stacks follow the published architectures; squeeze-and-excitation
modules of MobileNetV3 are omitted (they contribute <3% of the parameters)
and hard-swish activations are approximated by the block defaults.  Parameter
counts land within a few percent of the paper's Table 3 values because the
classification head uses the 5-class dermatology output.
"""

from __future__ import annotations

from typing import List

from repro.blocks.spec import BlockSpec, ClassifierSpec, StemSpec
from repro.zoo.descriptors import ArchitectureDescriptor, HeadSpec
from repro.zoo.stages import inverted_residual_stage, make_divisible


def mobilenet_v2(num_classes: int = 5, width: float = 1.0) -> ArchitectureDescriptor:
    """MobileNetV2 (Sandler et al., 2018)."""

    def ch(value: int) -> int:
        return make_divisible(value * width)

    blocks: List[BlockSpec] = []
    # (expansion, out_channels, repeats, stride)
    settings = [
        (1, 16, 1, 1),
        (6, 24, 2, 2),
        (6, 32, 3, 2),
        (6, 64, 4, 2),
        (6, 96, 3, 1),
        (6, 160, 3, 2),
        (6, 320, 1, 1),
    ]
    current = ch(32)
    for expansion, out, repeats, stride in settings:
        blocks.extend(
            inverted_residual_stage(current, ch(out), expansion, repeats, stride)
        )
        current = ch(out)
    head_ch = max(1280, ch(1280))
    return ArchitectureDescriptor(
        name="MobileNetV2" if width == 1.0 else f"MobileNetV2 x{width}",
        stem=StemSpec(ch_in=3, ch_out=ch(32), kernel=3, stride=2),
        blocks=tuple(blocks),
        head=HeadSpec(ch_in=current, ch_out=head_ch),
        classifier=ClassifierSpec(ch_in=head_ch, num_classes=num_classes),
        input_resolution=224,
        family="MobileNetV2",
    )


def mobilenet_v3_small(num_classes: int = 5) -> ArchitectureDescriptor:
    """MobileNetV3-Small (Howard et al., 2019), with squeeze-excitation."""
    blocks: List[BlockSpec] = []
    # (kernel, expanded, out, stride, se)
    settings = [
        (3, 16, 16, 2, True),
        (3, 72, 24, 2, False),
        (3, 88, 24, 1, False),
        (5, 96, 40, 2, True),
        (5, 240, 40, 1, True),
        (5, 240, 40, 1, True),
        (5, 120, 48, 1, True),
        (5, 144, 48, 1, True),
        (5, 288, 96, 2, True),
        (5, 576, 96, 1, True),
        (5, 576, 96, 1, True),
    ]
    current = 16
    for kernel, expanded, out, stride, se in settings:
        block_type = "MB" if stride == 2 else "DB"
        blocks.append(
            BlockSpec(
                block_type=block_type,
                ch_in=current,
                ch_mid=expanded,
                ch_out=out,
                kernel=kernel,
                stride=stride,
                se_ratio=0.25 if se else 0.0,
            )
        )
        current = out
    return ArchitectureDescriptor(
        name="MobileNetV3(S)",
        stem=StemSpec(ch_in=3, ch_out=16, kernel=3, stride=2),
        blocks=tuple(blocks),
        head=HeadSpec(ch_in=current, ch_out=576),
        classifier=ClassifierSpec(
            ch_in=576, num_classes=num_classes, hidden_features=1024
        ),
        input_resolution=224,
        family="MobileNetV3",
    )


def mobilenet_v3_large(num_classes: int = 5) -> ArchitectureDescriptor:
    """MobileNetV3-Large (Howard et al., 2019), with squeeze-excitation."""
    blocks: List[BlockSpec] = []
    settings = [
        (3, 16, 16, 1, False),
        (3, 64, 24, 2, False),
        (3, 72, 24, 1, False),
        (5, 72, 40, 2, True),
        (5, 120, 40, 1, True),
        (5, 120, 40, 1, True),
        (3, 240, 80, 2, False),
        (3, 200, 80, 1, False),
        (3, 184, 80, 1, False),
        (3, 184, 80, 1, False),
        (3, 480, 112, 1, True),
        (3, 672, 112, 1, True),
        (5, 672, 160, 2, True),
        (5, 960, 160, 1, True),
        (5, 960, 160, 1, True),
    ]
    current = 16
    for kernel, expanded, out, stride, se in settings:
        block_type = "MB" if stride == 2 else "DB"
        blocks.append(
            BlockSpec(
                block_type=block_type,
                ch_in=current,
                ch_mid=expanded,
                ch_out=out,
                kernel=kernel,
                stride=stride,
                se_ratio=0.25 if se else 0.0,
            )
        )
        current = out
    return ArchitectureDescriptor(
        name="MobileNetV3(L)",
        stem=StemSpec(ch_in=3, ch_out=16, kernel=3, stride=2),
        blocks=tuple(blocks),
        head=HeadSpec(ch_in=current, ch_out=960),
        classifier=ClassifierSpec(
            ch_in=960, num_classes=num_classes, hidden_features=1280
        ),
        input_resolution=224,
        family="MobileNetV3",
    )
