"""Reference FaHaNa-Net descriptors.

The paper reports two representative searched architectures: FaHaNa-Small
(422 K parameters, the smallest network meeting the 81% accuracy constraint)
and FaHaNa-Fair (5.5 M parameters, the fairest network overall, visualised in
Figure 7).  Running :class:`repro.core.fahana.FaHaNaSearch` produces fresh
architectures; the two descriptors below encode the paper's reported designs
(MB/DB blocks in the header, larger CB/RB blocks in the tail) so that the
comparison tables can be reproduced without re-running the search.
"""

from __future__ import annotations

from repro.blocks.spec import BlockSpec, ClassifierSpec, StemSpec
from repro.zoo.descriptors import ArchitectureDescriptor, HeadSpec


def fahana_small(num_classes: int = 5) -> ArchitectureDescriptor:
    """FaHaNa-Small: slim MB header (cheap at high resolution) with a denser tail.

    The header keeps the expansion channels small while the spatial
    resolution is still high (depthwise and pointwise layers are the
    expensive operations on the target boards), and the capacity needed for
    accuracy and fairness sits in low-resolution CB/RB tail blocks, which are
    compute-cheap dense convolutions.
    """
    blocks = (
        BlockSpec("MB", 8, 24, 16, kernel=3, stride=2),
        BlockSpec("MB", 16, 48, 24, kernel=3, stride=2),
        BlockSpec("MB", 24, 72, 32, kernel=3, stride=2),
        BlockSpec("DB", 32, 96, 32, kernel=3, stride=1),
        BlockSpec("MB", 32, 96, 48, kernel=3, stride=2),
        BlockSpec("CB", 48, 32, 96, kernel=3, stride=1),
        BlockSpec("RB", 96, 128, 128, kernel=3, stride=1),
        BlockSpec("CB", 128, 48, 160, kernel=3, stride=1),
    )
    return ArchitectureDescriptor(
        name="FaHaNa-Small",
        stem=StemSpec(ch_in=3, ch_out=8, kernel=3, stride=2),
        blocks=blocks,
        head=HeadSpec(ch_in=160, ch_out=320),
        classifier=ClassifierSpec(ch_in=320, num_classes=num_classes),
        input_resolution=224,
        family="FaHaNa",
    )


def fahana_fair(num_classes: int = 5) -> ArchitectureDescriptor:
    """FaHaNa-Fair: the Figure 7 architecture (MB header, CB/RB tail)."""
    blocks = (
        BlockSpec("CB", 32, 32, 32, kernel=5, stride=1),
        BlockSpec("CB", 32, 32, 64, kernel=5, stride=2),
        BlockSpec("MB", 64, 384, 64, kernel=3, stride=2),
        BlockSpec("DB", 64, 384, 64, kernel=3, stride=1),
        BlockSpec("DB", 64, 384, 64, kernel=3, stride=1),
        BlockSpec("MB", 64, 384, 96, kernel=3, stride=2),
        BlockSpec("RB", 96, 224, 256, kernel=5, stride=2),
        BlockSpec("RB", 256, 256, 256, kernel=5, stride=1),
    )
    return ArchitectureDescriptor(
        name="FaHaNa-Fair",
        stem=StemSpec(ch_in=3, ch_out=32, kernel=7, stride=2),
        blocks=blocks,
        head=HeadSpec(ch_in=256, ch_out=256),
        classifier=ClassifierSpec(ch_in=256, num_classes=num_classes),
        input_resolution=224,
        family="FaHaNa",
    )
