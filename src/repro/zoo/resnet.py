"""ResNet-18/34/50 descriptors (He et al., 2016)."""

from __future__ import annotations

from typing import List, Sequence

from repro.blocks.spec import BlockSpec, ClassifierSpec, StemSpec
from repro.zoo.descriptors import ArchitectureDescriptor, HeadSpec
from repro.zoo.stages import residual_stage


def _resnet(
    name: str,
    layers: Sequence[int],
    num_classes: int,
    bottleneck: bool,
) -> ArchitectureDescriptor:
    stage_out = [256, 512, 1024, 2048] if bottleneck else [64, 128, 256, 512]
    stage_mid = [64, 128, 256, 512]
    blocks: List[BlockSpec] = []
    current = 64
    for stage_index, repeats in enumerate(layers):
        stride = 1 if stage_index == 0 else 2
        blocks.extend(
            residual_stage(
                current,
                stage_out[stage_index],
                repeats,
                stride,
                kernel=3,
                bottleneck=bottleneck,
                bottleneck_mid=stage_mid[stage_index],
            )
        )
        current = stage_out[stage_index]
    return ArchitectureDescriptor(
        name=name,
        # The 7x7/stride-2 stem plus the max-pool is modelled as a stride-2
        # stem (the pooling stage carries no parameters).
        stem=StemSpec(ch_in=3, ch_out=64, kernel=7, stride=2),
        blocks=tuple(blocks),
        head=HeadSpec(ch_in=current, ch_out=current),
        classifier=ClassifierSpec(ch_in=current, num_classes=num_classes),
        input_resolution=224,
        family="ResNet",
    )


def resnet18(num_classes: int = 5) -> ArchitectureDescriptor:
    """ResNet-18: four stages of two basic blocks each."""
    return _resnet("ResNet-18", [2, 2, 2, 2], num_classes, bottleneck=False)


def resnet34(num_classes: int = 5) -> ArchitectureDescriptor:
    """ResNet-34: [3, 4, 6, 3] basic blocks."""
    return _resnet("ResNet-34", [3, 4, 6, 3], num_classes, bottleneck=False)


def resnet50(num_classes: int = 5) -> ArchitectureDescriptor:
    """ResNet-50: [3, 4, 6, 3] bottleneck blocks."""
    return _resnet("ResNet-50", [3, 4, 6, 3], num_classes, bottleneck=True)
