"""ProxylessNAS descriptors (Cai et al., 2019), Mobile and GPU variants.

The exact searched cells of ProxylessNAS mix kernel sizes and expansion
ratios per block; the descriptors below follow the published per-stage
configuration closely enough that parameter counts land near the paper's
Table 3 values.
"""

from __future__ import annotations

from typing import List

from repro.blocks.spec import BlockSpec, ClassifierSpec, StemSpec
from repro.zoo.descriptors import ArchitectureDescriptor, HeadSpec


def _stack(settings, start_channels: int) -> List[BlockSpec]:
    blocks: List[BlockSpec] = []
    current = start_channels
    for kernel, expansion, out, stride in settings:
        block_type = "MB" if stride == 2 else "DB"
        blocks.append(
            BlockSpec(
                block_type=block_type,
                ch_in=current,
                ch_mid=max(1, int(round(current * expansion))),
                ch_out=out,
                kernel=kernel,
                stride=stride,
            )
        )
        current = out
    return blocks


def proxylessnas_mobile(num_classes: int = 5) -> ArchitectureDescriptor:
    """ProxylessNAS searched for mobile latency."""
    settings = [
        (3, 1, 16, 1),
        (5, 3, 32, 2),
        (3, 3, 32, 1),
        (7, 3, 40, 2),
        (3, 3, 40, 1),
        (5, 3, 40, 1),
        (5, 3, 40, 1),
        (7, 6, 80, 2),
        (5, 3, 80, 1),
        (5, 3, 80, 1),
        (5, 3, 80, 1),
        (5, 6, 96, 1),
        (5, 3, 96, 1),
        (5, 3, 96, 1),
        (5, 3, 96, 1),
        (7, 6, 192, 2),
        (7, 6, 192, 1),
        (7, 3, 192, 1),
        (7, 3, 192, 1),
        (7, 6, 320, 1),
    ]
    blocks = _stack(settings, 32)
    return ArchitectureDescriptor(
        name="ProxylessNAS(M)",
        stem=StemSpec(ch_in=3, ch_out=32, kernel=3, stride=2),
        blocks=tuple(blocks),
        head=HeadSpec(ch_in=320, ch_out=1280),
        classifier=ClassifierSpec(ch_in=1280, num_classes=num_classes),
        input_resolution=224,
        family="ProxylessNAS",
    )


def proxylessnas_gpu(num_classes: int = 5) -> ArchitectureDescriptor:
    """ProxylessNAS searched for GPU latency (wider, shallower)."""
    settings = [
        (3, 1, 24, 1),
        (5, 3, 32, 2),
        (3, 3, 32, 1),
        (7, 3, 56, 2),
        (3, 3, 56, 1),
        (7, 6, 112, 2),
        (5, 3, 112, 1),
        (5, 3, 112, 1),
        (5, 6, 128, 1),
        (3, 3, 128, 1),
        (7, 6, 256, 2),
        (7, 6, 256, 1),
        (7, 6, 256, 1),
        (7, 6, 256, 1),
        (5, 6, 432, 1),
    ]
    blocks = _stack(settings, 40)
    return ArchitectureDescriptor(
        name="ProxylessNAS(G)",
        stem=StemSpec(ch_in=3, ch_out=40, kernel=3, stride=2),
        blocks=tuple(blocks),
        head=HeadSpec(ch_in=432, ch_out=1728),
        classifier=ClassifierSpec(ch_in=1728, num_classes=num_classes),
        input_resolution=224,
        family="ProxylessNAS",
    )
