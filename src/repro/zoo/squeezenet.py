"""SqueezeNet 1.0 descriptor (Iandola et al., 2016).

Fire modules (1x1 squeeze followed by parallel 1x1/3x3 expands) are modelled
as CB blocks (1x1 squeeze followed by a 3x3 expand), which preserves the
parameter-count scale and the all-convolutional structure.  SqueezeNet
appears only in Table 1, where its roles are "very small, very fast, fair,
but far too inaccurate".
"""

from __future__ import annotations

from typing import List

from repro.blocks.spec import BlockSpec, ClassifierSpec, StemSpec
from repro.zoo.descriptors import ArchitectureDescriptor, HeadSpec


def squeezenet(num_classes: int = 5) -> ArchitectureDescriptor:
    # (squeeze, expand, stride): strides stand in for the max-pool stages.
    settings = [
        (16, 128, 2),
        (16, 128, 1),
        (32, 256, 2),
        (32, 256, 1),
        (48, 384, 2),
        (48, 384, 1),
        (64, 512, 1),
        (64, 512, 1),
    ]
    blocks: List[BlockSpec] = []
    current = 96
    for squeeze, expand, stride in settings:
        blocks.append(
            BlockSpec(
                block_type="CB",
                ch_in=current,
                ch_mid=squeeze,
                ch_out=expand,
                kernel=3,
                stride=stride,
            )
        )
        current = expand
    return ArchitectureDescriptor(
        name="SqueezeNet 1.0",
        stem=StemSpec(ch_in=3, ch_out=96, kernel=7, stride=2),
        blocks=tuple(blocks),
        head=HeadSpec(ch_in=current, ch_out=current),
        classifier=ClassifierSpec(ch_in=current, num_classes=num_classes),
        input_resolution=224,
        family="SqueezeNet",
    )
