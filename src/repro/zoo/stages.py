"""Helpers to assemble block stacks for the zoo descriptors."""

from __future__ import annotations

from typing import List

from repro.blocks.spec import BlockSpec


def make_divisible(value: float, divisor: int = 8) -> int:
    """Round channel counts the way mobile networks do (nearest multiple)."""
    if value <= 0:
        raise ValueError("channel value must be positive")
    rounded = max(divisor, int(value + divisor / 2) // divisor * divisor)
    # Do not shrink by more than 10%.
    if rounded < 0.9 * value:
        rounded += divisor
    return rounded


def inverted_residual_stage(
    ch_in: int,
    ch_out: int,
    expansion: float,
    repeats: int,
    stride: int,
    kernel: int = 3,
) -> List[BlockSpec]:
    """A MobileNetV2/MnasNet-style stage of inverted residual blocks.

    The first block applies ``stride`` (an MB block when stride is 2) and the
    channel change; the remaining blocks are stride-1 DB blocks.
    """
    if repeats <= 0:
        raise ValueError("repeats must be positive")
    blocks: List[BlockSpec] = []
    current = ch_in
    for index in range(repeats):
        block_stride = stride if index == 0 else 1
        block_type = "MB" if block_stride == 2 else "DB"
        ch_mid = max(1, int(round(current * expansion)))
        blocks.append(
            BlockSpec(
                block_type=block_type,
                ch_in=current,
                ch_mid=ch_mid,
                ch_out=ch_out,
                kernel=kernel,
                stride=block_stride,
            )
        )
        current = ch_out
    return blocks


def residual_stage(
    ch_in: int,
    ch_out: int,
    repeats: int,
    stride: int,
    kernel: int = 3,
    bottleneck: bool = False,
    bottleneck_mid: int = 0,
) -> List[BlockSpec]:
    """A ResNet stage of basic (RB) or bottleneck (RBB) blocks."""
    if repeats <= 0:
        raise ValueError("repeats must be positive")
    blocks: List[BlockSpec] = []
    current = ch_in
    for index in range(repeats):
        block_stride = stride if index == 0 else 1
        if bottleneck:
            mid = bottleneck_mid or max(1, ch_out // 4)
            blocks.append(
                BlockSpec(
                    block_type="RBB",
                    ch_in=current,
                    ch_mid=mid,
                    ch_out=ch_out,
                    kernel=kernel,
                    stride=block_stride,
                )
            )
        else:
            blocks.append(
                BlockSpec(
                    block_type="RB",
                    ch_in=current,
                    ch_mid=ch_out,
                    ch_out=ch_out,
                    kernel=kernel,
                    stride=block_stride,
                )
            )
        current = ch_out
    return blocks
