"""Architecture descriptors.

An :class:`ArchitectureDescriptor` is the common currency of the library: the
zoo describes every reference network with one, the FaHaNa producer emits one
for every child network, and the hardware model prices one analytically.  The
descriptor carries the *full-scale* layer specification (so parameter counts
and latency estimates correspond to the paper's deployment scale) and can
instantiate a *reduced-scale* trainable model for CPU-feasible training.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.blocks.factory import build_block
from repro.blocks.spec import BlockSpec, ClassifierSpec, OpCost, StemSpec
from repro.nn.layers import (
    BatchNorm2d,
    Conv2d,
    Flatten,
    GlobalAvgPool2d,
    Linear,
    ReLU,
)
from repro.nn.module import Module, Sequential
from repro.utils.rng import SeedLike, spawn_rngs

BYTES_PER_PARAM = 4  # float32 deployment precision


@dataclass(frozen=True)
class HeadSpec:
    """Optional 1x1 convolution inserted between the last block and pooling.

    MobileNet-style networks expand to a wide embedding (e.g. 1280 channels)
    before global pooling; ResNet-style networks set ``ch_out == ch_in`` and
    skip the convolution entirely.
    """

    ch_in: int
    ch_out: int

    @property
    def is_identity(self) -> bool:
        return self.ch_in == self.ch_out

    def op_costs(self, height: int, width: int) -> List[OpCost]:
        if self.is_identity:
            return []
        hw = height * width
        return [
            OpCost(
                "pwconv",
                macs=self.ch_in * self.ch_out * hw,
                params=self.ch_in * self.ch_out,
                input_elems=self.ch_in * hw,
                output_elems=self.ch_out * hw,
            ),
            OpCost(
                "bn",
                macs=2.0 * self.ch_out * hw,
                params=2 * self.ch_out,
                input_elems=self.ch_out * hw,
                output_elems=self.ch_out * hw,
            ),
        ]

    def param_count(self) -> int:
        return int(sum(op.params for op in self.op_costs(8, 8)))

    def cache_key(self) -> str:
        """Canonical content fingerprint of the head specification."""
        from repro.utils.fingerprint import content_fingerprint

        return content_fingerprint(
            {"kind": "HeadSpec", "ch_in": self.ch_in, "ch_out": self.ch_out}
        )


@dataclass(frozen=True)
class ArchitectureDescriptor:
    """A complete network: stem, block stack, head and classifier."""

    name: str
    stem: StemSpec
    blocks: Tuple[BlockSpec, ...]
    head: HeadSpec
    classifier: ClassifierSpec
    input_resolution: int = 224
    family: str = "custom"

    # Labels, deliberately outside the content fingerprint: two structurally
    # identical children sampled under different names share one cache entry.
    CACHE_KEY_EXEMPT = ("name", "family")

    def __post_init__(self) -> None:
        if not self.blocks:
            raise ValueError("an architecture needs at least one block")
        expected = self.stem.ch_out
        for index, block in enumerate(self.blocks):
            if block.ch_in != expected:
                raise ValueError(
                    f"{self.name}: block {index} expects {block.ch_in} input "
                    f"channels but the previous stage produces {expected}"
                )
            expected = block.ch_in if block.block_type == "SKIP" else block.ch_out
        if self.head.ch_in != expected:
            raise ValueError(
                f"{self.name}: head expects {self.head.ch_in} channels, "
                f"previous stage produces {expected}"
            )
        if self.classifier.ch_in != self.head.ch_out:
            raise ValueError(
                f"{self.name}: classifier expects {self.classifier.ch_in} channels, "
                f"head produces {self.head.ch_out}"
            )

    # -- analytic accounting ----------------------------------------------------
    def walk_op_costs(
        self, resolution: Optional[int] = None
    ) -> List[Tuple[str, OpCost]]:
        """All primitive ops of the network with their owning stage name."""
        res = resolution or self.input_resolution
        height = width = res
        ops: List[Tuple[str, OpCost]] = []
        for op in self.stem.op_costs(height, width):
            ops.append(("stem", op))
        height, width = self.stem.output_spatial(height, width)
        for index, block in enumerate(self.blocks):
            for op in block.op_costs(height, width):
                ops.append((f"block{index}", op))
            height, width = block.output_spatial(height, width)
        for op in self.head.op_costs(height, width):
            ops.append(("head", op))
        for op in self.classifier.op_costs(height, width):
            ops.append(("classifier", op))
        return ops

    def param_count(self) -> int:
        """Total number of scalar weights at full scale."""
        total = self.stem.param_count() + self.head.param_count()
        total += self.classifier.param_count()
        total += sum(block.param_count() for block in self.blocks)
        return int(total)

    def storage_mb(self) -> float:
        """Model storage in megabytes assuming float32 weights."""
        return self.param_count() * BYTES_PER_PARAM / 1e6

    def macs(self, resolution: Optional[int] = None) -> float:
        """Total multiply-accumulate operations for one inference."""
        return float(sum(op.macs for _, op in self.walk_op_costs(resolution)))

    def depth(self) -> int:
        """Number of non-skipped blocks."""
        return sum(1 for block in self.blocks if block.block_type != "SKIP")

    def cache_key(self) -> str:
        """Canonical content fingerprint of the architecture.

        The key covers everything that determines the network's computation --
        stem, block stack, head, classifier and input resolution -- and
        deliberately excludes ``name`` and ``family``, which are labels: two
        structurally identical children sampled under different names must map
        to the same cached evaluation.
        """
        from repro.utils.fingerprint import combine_fingerprints, content_fingerprint

        return combine_fingerprints(
            content_fingerprint(
                {"kind": "ArchitectureDescriptor", "input_resolution": self.input_resolution}
            ),
            self.stem.cache_key(),
            *[block.cache_key() for block in self.blocks],
            self.head.cache_key(),
            self.classifier.cache_key(),
        )

    # -- model construction -------------------------------------------------------
    def build(
        self,
        num_classes: Optional[int] = None,
        width_multiplier: float = 1.0,
        rng: SeedLike = None,
        dense_classifier_features: Optional[int] = None,
    ) -> Sequential:
        """Instantiate a trainable numpy model.

        ``width_multiplier`` scales every channel count, which is how the
        scale presets keep CPU training tractable while preserving the block
        structure.  The returned model is a :class:`Sequential` whose stages
        are: stem, one module per block, head, pooling, classifier.
        """
        classes = num_classes or self.classifier.num_classes
        rngs = spawn_rngs(rng, len(self.blocks) + 3)

        def scale(channels: int) -> int:
            return max(1, int(round(channels * width_multiplier)))

        stages: List[Module] = []
        stem = Sequential(
            Conv2d(
                self.stem.ch_in,
                scale(self.stem.ch_out),
                self.stem.kernel,
                stride=self.stem.stride,
                bias=False,
                rng=rngs[0],
            ),
            BatchNorm2d(scale(self.stem.ch_out)),
            ReLU(),
        )
        stages.append(stem)

        for index, block in enumerate(self.blocks):
            scaled_spec = block.scaled(width_multiplier)
            stages.append(build_block(scaled_spec, rng=rngs[index + 1]))

        head_in = scale(self.head.ch_in)
        head_out = scale(self.head.ch_out)
        if self.head.is_identity:
            head_out = head_in
            head = Sequential()
        else:
            head = Sequential(
                Conv2d(head_in, head_out, 1, bias=False, rng=rngs[-2]),
                BatchNorm2d(head_out),
                ReLU(),
            )
        if len(head) > 0:
            stages.append(head)
        stages.append(GlobalAvgPool2d())
        features = dense_classifier_features or head_out
        if self.classifier.hidden_features > 0:
            hidden = scale(self.classifier.hidden_features)
            stages.append(
                Sequential(Linear(features, hidden, rng=rngs[-3]), ReLU())
            )
            features = hidden
        stages.append(Linear(features, classes, rng=rngs[-1]))
        return Sequential(*stages)

    # -- manipulation --------------------------------------------------------------
    def with_blocks(
        self, blocks: Sequence[BlockSpec], name: Optional[str] = None
    ) -> "ArchitectureDescriptor":
        """Return a copy with a different block stack (used by the producer)."""
        new_blocks = tuple(blocks)
        head = self.head
        if new_blocks:
            last_out = None
            for block in reversed(new_blocks):
                if block.block_type != "SKIP":
                    last_out = block.ch_out
                    break
            if last_out is None:
                last_out = new_blocks[-1].ch_in
            if head.ch_in != last_out:
                head = HeadSpec(ch_in=last_out, ch_out=max(head.ch_out, last_out))
        classifier = replace(self.classifier, ch_in=head.ch_out)
        return replace(
            self,
            name=name or self.name,
            blocks=new_blocks,
            head=head,
            classifier=classifier,
        )

    def describe(self) -> str:
        """Multi-line, human-readable architecture summary (Figure 7 style)."""
        lines = [
            f"{self.name} (input {self.input_resolution}x{self.input_resolution}, "
            f"{self.param_count():,} parameters, {self.storage_mb():.2f} MB)",
            f"  Conv {self.stem.kernel}x{self.stem.kernel} "
            f"{self.stem.ch_in}->{self.stem.ch_out} /s{self.stem.stride}",
        ]
        for block in self.blocks:
            lines.append(f"  {block.describe()}")
        if not self.head.is_identity:
            lines.append(f"  Conv 1x1 {self.head.ch_in}->{self.head.ch_out}")
        lines.append(
            f"  GlobalAvgPool + LINEAR {self.classifier.ch_in}->"
            f"{self.classifier.num_classes}"
        )
        return "\n".join(lines)
