"""MONAS baseline: multi-objective NAS without FaHaNa's accelerations.

The paper compares FaHaNa against MONAS [32] with fairness added as an extra
objective.  The relevant differences, reproduced here, are:

* no freezing -- every backbone position is searchable, so the search space
  is the full product space and every child is trained end to end,
* no hardware-reject shortcut -- children are always trained, and the
  specification check only affects the reward afterwards.

Everything else (controller, policy gradient, reward shape) is shared, which
isolates the effect of the two FaHaNa accelerations exactly as Table 2 does.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.core.evaluator import ChildEvaluator, EvaluationConfig
from repro.core.fahana import FaHaNaConfig, FaHaNaResult, FaHaNaSearch
from repro.core.producer import ProducerConfig
from repro.data.dataset import GroupedDataset
from repro.hardware.constraints import DesignSpec


@dataclass
class MonasConfig(FaHaNaConfig):
    """MONAS shares FaHaNa's knobs; freezing is forced off."""


class MonasSearch(FaHaNaSearch):
    """Multi-objective NAS baseline (fairness-aware, but no accelerations)."""

    def __init__(
        self,
        train_dataset: GroupedDataset,
        validation_dataset: GroupedDataset,
        design_spec: Optional[DesignSpec] = None,
        config: Optional[MonasConfig] = None,
    ):
        config = config or MonasConfig()
        producer_config = replace(config.producer, freeze=False, pretrain_epochs=0)
        config = replace(config, producer=producer_config)
        super().__init__(train_dataset, validation_dataset, design_spec, config)
        # MONAS trains every child before the specification check.  A fresh
        # evaluator (rather than a mutated config) keeps the evaluation
        # pipeline consistent with the configuration it exposes.
        self.evaluator = ChildEvaluator(
            train_dataset=self.evaluator.train_dataset,
            validation_dataset=self.evaluator.validation_dataset,
            latency_estimator=self.evaluator.latency_estimator,
            config=EvaluationConfig(
                reward=self.evaluator.config.reward,
                training=self.evaluator.config.training,
                bypass_invalid=False,
                pipeline=self.evaluator.config.pipeline,
            ),
        )
