"""Block-based search space.

For every searchable position the controller makes four decisions:

1. block type -- MB/RB/CB at stride-2 positions, DB/RB/CB/SKIP at stride-1
   positions (MB and DB are the stride-2 / stride-1 inverted residuals, so
   the stride schedule of the backbone is preserved),
2. kernel size K,
3. intermediate channel count CH2,
4. output channel count CH3.

CH1 of a block is always the CH3 of its predecessor, exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.blocks.spec import BlockSpec


@dataclass(frozen=True)
class SearchPosition:
    """One searchable slot in the backbone.

    ``stride`` is inherited from the backbone block being replaced and
    ``input_resolution`` is the feature-map size entering the slot (needed by
    the latency table).
    """

    index: int
    stride: int
    input_resolution: int

    def __post_init__(self) -> None:
        if self.stride not in (1, 2):
            raise ValueError("stride must be 1 or 2")
        if self.input_resolution <= 0:
            raise ValueError("input_resolution must be positive")


@dataclass(frozen=True)
class BlockDecision:
    """The controller's four decisions for one position."""

    block_type: str
    kernel: int
    ch_mid: int
    ch_out: int


@dataclass(frozen=True)
class SearchSpace:
    """Enumerates the per-decision choice lists."""

    stride2_types: Tuple[str, ...] = ("MB", "RB", "CB")
    stride1_types: Tuple[str, ...] = ("DB", "RB", "CB", "SKIP")
    kernel_choices: Tuple[int, ...] = (3, 5)
    ch_mid_choices: Tuple[int, ...] = (32, 64, 128, 256, 384)
    ch_out_choices: Tuple[int, ...] = (32, 64, 96, 128, 192, 256)

    DECISIONS_PER_BLOCK = 4

    def __post_init__(self) -> None:
        if not self.stride2_types or not self.stride1_types:
            raise ValueError("type choice lists must not be empty")
        if "SKIP" in self.stride2_types:
            raise ValueError("stride-2 positions cannot be skipped (spatial size must shrink)")
        if not self.kernel_choices or not self.ch_mid_choices or not self.ch_out_choices:
            raise ValueError("choice lists must not be empty")

    # -- vocabularies -----------------------------------------------------------
    def type_choices(self, stride: int) -> Tuple[str, ...]:
        """Block-type vocabulary for a position of the given stride."""
        return self.stride2_types if stride == 2 else self.stride1_types

    def decision_sizes(self, stride: int) -> Tuple[int, int, int, int]:
        """Vocabulary sizes of the four decisions at a position."""
        return (
            len(self.type_choices(stride)),
            len(self.kernel_choices),
            len(self.ch_mid_choices),
            len(self.ch_out_choices),
        )

    def max_decision_size(self) -> int:
        """Largest vocabulary across all decisions (controller embedding size)."""
        return max(
            len(self.stride2_types),
            len(self.stride1_types),
            len(self.kernel_choices),
            len(self.ch_mid_choices),
            len(self.ch_out_choices),
        )

    def position_cardinality(self, stride: int) -> int:
        """Number of distinct blocks expressible at one position."""
        sizes = self.decision_sizes(stride)
        return sizes[0] * sizes[1] * sizes[2] * sizes[3]

    def space_size(self, positions: Sequence[SearchPosition]) -> float:
        """Total number of candidate networks for the given positions."""
        total = 1.0
        for position in positions:
            total *= self.position_cardinality(position.stride)
        return total

    # -- decision decoding --------------------------------------------------------
    def decode(self, stride: int, indices: Sequence[int]) -> BlockDecision:
        """Turn the controller's four index choices into a :class:`BlockDecision`."""
        if len(indices) != self.DECISIONS_PER_BLOCK:
            raise ValueError(
                f"expected {self.DECISIONS_PER_BLOCK} decision indices, got {len(indices)}"
            )
        types = self.type_choices(stride)
        type_idx, kernel_idx, mid_idx, out_idx = indices
        if not 0 <= type_idx < len(types):
            raise ValueError(f"type index {type_idx} out of range")
        if not 0 <= kernel_idx < len(self.kernel_choices):
            raise ValueError(f"kernel index {kernel_idx} out of range")
        if not 0 <= mid_idx < len(self.ch_mid_choices):
            raise ValueError(f"ch_mid index {mid_idx} out of range")
        if not 0 <= out_idx < len(self.ch_out_choices):
            raise ValueError(f"ch_out index {out_idx} out of range")
        return BlockDecision(
            block_type=types[type_idx],
            kernel=self.kernel_choices[kernel_idx],
            ch_mid=self.ch_mid_choices[mid_idx],
            ch_out=self.ch_out_choices[out_idx],
        )

    def to_block_spec(
        self, decision: BlockDecision, ch_in: int, stride: int
    ) -> BlockSpec:
        """Materialise a :class:`BlockSpec` given the incoming channel count."""
        if decision.block_type == "SKIP":
            return BlockSpec("SKIP", ch_in, ch_in, ch_in)
        block_type = decision.block_type
        # MB/DB selection is implied by the position's stride.
        if block_type in ("MB", "DB"):
            block_type = "MB" if stride == 2 else "DB"
        return BlockSpec(
            block_type=block_type,
            ch_in=ch_in,
            ch_mid=decision.ch_mid,
            ch_out=decision.ch_out,
            kernel=decision.kernel,
            stride=stride,
        )

    def decisions_to_specs(
        self,
        positions: Sequence[SearchPosition],
        decisions: Sequence[BlockDecision],
        ch_in: int,
    ) -> List[BlockSpec]:
        """Chain decisions into block specs, threading CH3 -> CH1."""
        if len(positions) != len(decisions):
            raise ValueError("positions and decisions must have the same length")
        specs: List[BlockSpec] = []
        current = ch_in
        for position, decision in zip(positions, decisions):
            spec = self.to_block_spec(decision, current, position.stride)
            specs.append(spec)
            current = spec.ch_in if spec.block_type == "SKIP" else spec.ch_out
        return specs
