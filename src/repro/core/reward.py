"""The FaHaNa reward function (Equation 1).

    R = alpha * A(f, D) - beta * U(f, D)   if L(H, N) <= TC and A(f, D) >= AC
    R = -1                                 otherwise

``alpha`` and ``beta`` trade accuracy against fairness; the paper sets both
to 1.  Children that violate the hardware (latency) specification are never
trained -- the evaluator assigns the -1 reward directly, which is the first
half of FaHaNa's search acceleration.
"""

from __future__ import annotations

from dataclasses import dataclass

INVALID_REWARD = -1.0


@dataclass(frozen=True)
class RewardConfig:
    """Weights and constraints of the reward."""

    alpha: float = 1.0
    beta: float = 1.0
    accuracy_constraint: float = 0.0
    timing_constraint_ms: float = float("inf")

    def __post_init__(self) -> None:
        if self.alpha < 0 or self.beta < 0:
            raise ValueError("alpha and beta must be non-negative")
        if not 0.0 <= self.accuracy_constraint <= 1.0:
            raise ValueError("accuracy_constraint must be in [0, 1]")
        if self.timing_constraint_ms <= 0:
            raise ValueError("timing_constraint_ms must be positive")


def compute_reward(
    accuracy: float,
    unfairness: float,
    latency_ms: float,
    config: RewardConfig,
) -> float:
    """Evaluate Equation 1 for one child network."""
    if not 0.0 <= accuracy <= 1.0:
        raise ValueError(f"accuracy must be in [0, 1], got {accuracy}")
    if unfairness < 0:
        raise ValueError(f"unfairness must be non-negative, got {unfairness}")
    if latency_ms < 0:
        raise ValueError(f"latency must be non-negative, got {latency_ms}")
    if latency_ms > config.timing_constraint_ms:
        return INVALID_REWARD
    if accuracy < config.accuracy_constraint:
        return INVALID_REWARD
    return config.alpha * accuracy - config.beta * unfairness


def reward_is_valid(reward: float) -> bool:
    """Whether a reward corresponds to a specification-satisfying child."""
    return reward > INVALID_REWARD
