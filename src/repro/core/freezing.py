"""Model freezing: find the frozen/searchable split point (Observation 3).

The paper observes that the front layers of a network extract common features
whose intermediate maps barely differ between demographic groups, while the
tail layers differentiate them (Figure 3).  FaHaNa therefore freezes the
header of a pre-trained backbone and searches only the tail:

1. stream a batch of majority and a batch of minority images through the
   pre-trained backbone and keep every stage's feature maps,
2. compute the per-stage feature variation between groups with an L2 norm,
3. set the threshold ``T = gamma * max(variation)`` and pick the foremost
   stage whose variation exceeds ``T``; that stage and everything after it is
   searchable, everything before it is frozen.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.data.dataset import GroupedDataset
from repro.nn.module import Sequential
from repro.utils.rng import SeedLike, new_rng


@dataclass(frozen=True)
class FreezingAnalysis:
    """Result of the split-point analysis."""

    variations: List[float]
    threshold: float
    split_index: int
    gamma: float

    @property
    def num_frozen_stages(self) -> int:
        return self.split_index

    def describe(self) -> str:
        lines = [
            f"freezing analysis (gamma={self.gamma}, threshold={self.threshold:.4f}, "
            f"split at stage {self.split_index})"
        ]
        for index, variation in enumerate(self.variations):
            marker = "frozen" if index < self.split_index else "searchable"
            lines.append(f"  stage {index:2d}: variation={variation:.4f} [{marker}]")
        return "\n".join(lines)


def feature_variation(
    features_a: Sequence[np.ndarray], features_b: Sequence[np.ndarray]
) -> List[float]:
    """Per-stage L2 variation between the mean feature maps of two groups.

    Each element of ``features_a`` / ``features_b`` is the stage output for a
    batch of group-A / group-B images.  The variation of a stage is the L2
    distance between the two group-mean feature maps after each has been
    normalised to unit norm.  The normalisation makes the metric measure
    *pattern* dissimilarity (the paper's "similar pattern" vs "different
    pattern" in Figure 3) rather than amplitude differences: early layers see
    large brightness offsets between skin tones but encode the same common
    features, while trained tail layers respond to the groups with genuinely
    different activation patterns.
    """
    if len(features_a) != len(features_b):
        raise ValueError("both groups must have the same number of stages")
    variations: List[float] = []
    for stage_a, stage_b in zip(features_a, features_b):
        mean_a = np.asarray(stage_a).mean(axis=0).ravel()
        mean_b = np.asarray(stage_b).mean(axis=0).ravel()
        if mean_a.shape != mean_b.shape:
            raise ValueError("stage outputs of the two groups have different shapes")
        norm_a = np.linalg.norm(mean_a)
        norm_b = np.linalg.norm(mean_b)
        if norm_a < 1e-12 or norm_b < 1e-12:
            variations.append(0.0)
            continue
        diff = mean_a / norm_a - mean_b / norm_b
        variations.append(float(np.linalg.norm(diff)))
    return variations


def find_split_point(variations: Sequence[float], gamma: float = 0.5) -> int:
    """Index of the foremost stage whose variation exceeds ``gamma * max``."""
    if not variations:
        raise ValueError("variations must not be empty")
    if not 0.0 < gamma <= 1.0:
        raise ValueError("gamma must be in (0, 1]")
    threshold = gamma * max(variations)
    for index, variation in enumerate(variations):
        if variation >= threshold and variation > 0:
            return index
    return len(variations) - 1


def analyse_model_freezing(
    model: Sequential,
    dataset: GroupedDataset,
    gamma: float = 0.5,
    num_stages: Optional[int] = None,
    batch_size: int = 32,
    rng: SeedLike = 0,
) -> FreezingAnalysis:
    """Run the full split-point analysis on a (pre-trained) staged model.

    ``num_stages`` limits the analysis to the first stages of the model
    (typically stem + blocks, excluding pooling / classifier).  One batch per
    group is drawn from ``dataset``.
    """
    generator = new_rng(rng)
    majority = dataset.majority_group()
    minority = dataset.minority_group()
    batches = {}
    for group in (majority, minority):
        indices = dataset.group_indices(group)
        if indices.size == 0:
            raise ValueError(f"group {group!r} has no samples")
        chosen = generator.choice(indices, size=min(batch_size, indices.size), replace=False)
        batches[group] = dataset.images[chosen]

    model.eval()
    features_major = model.forward_collect(batches[majority])
    features_minor = model.forward_collect(batches[minority])
    model.train()
    if num_stages is not None:
        features_major = features_major[:num_stages]
        features_minor = features_minor[:num_stages]
    # Only spatial stages (4-D outputs) participate: pooling and the classifier
    # produce 2-D outputs and are never frozen.
    spatial = [
        index
        for index, feat in enumerate(features_major)
        if np.asarray(feat).ndim == 4
    ]
    features_major = [features_major[i] for i in spatial]
    features_minor = [features_minor[i] for i in spatial]

    variations = feature_variation(features_major, features_minor)
    split = find_split_point(variations, gamma)
    threshold = gamma * max(variations)
    return FreezingAnalysis(
        variations=variations, threshold=threshold, split_index=split, gamma=gamma
    )
