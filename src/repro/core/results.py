"""Search history: per-episode records, statistics and Pareto extraction."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.reward import INVALID_REWARD
from repro.utils.pareto import pareto_frontier
from repro.zoo.descriptors import ArchitectureDescriptor


@dataclass
class EpisodeRecord:
    """One search episode: the sampled child and its evaluation."""

    episode: int
    descriptor: ArchitectureDescriptor
    decisions: List[str]
    reward: float
    accuracy: float
    unfairness: float
    latency_ms: float
    storage_mb: float
    num_parameters: int
    trained: bool
    group_accuracy: Dict[str, float] = field(default_factory=dict)
    elapsed_seconds: float = 0.0
    # Provenance (filled in by the engine): whether the evaluation came from
    # the content-addressed cache, and which worker produced it.
    cache_hit: bool = False
    worker: str = ""
    # Pipeline provenance: the fidelity stage that produced the recorded
    # result, and the ordered stage names the child passed through
    # (e.g. ["gate:latency"] for a rejection, ["proxy", "full"] after
    # promotion).  Empty for pre-pipeline records.
    fidelity: str = "full"
    stages: List[str] = field(default_factory=list)

    @property
    def is_valid(self) -> bool:
        return self.reward > INVALID_REWARD


@dataclass
class SearchHistory:
    """All episodes of one search run plus run-level metadata."""

    records: List[EpisodeRecord] = field(default_factory=list)
    space_size: float = 0.0
    full_space_size: float = 0.0
    total_seconds: float = 0.0
    frozen_blocks: int = 0
    searchable_blocks: int = 0

    def append(self, record: EpisodeRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    # -- statistics ------------------------------------------------------------------
    def valid_records(self) -> List[EpisodeRecord]:
        """Episodes whose reward is not the -1 penalty."""
        return [r for r in self.records if r.is_valid]

    def valid_ratio(self) -> float:
        """Fraction of episodes that produced a specification-satisfying child."""
        if not self.records:
            return 0.0
        return len(self.valid_records()) / len(self.records)

    def best_record(self) -> Optional[EpisodeRecord]:
        """Episode with the highest reward (None when nothing was valid)."""
        valid = self.valid_records()
        if not valid:
            return None
        return max(valid, key=lambda r: r.reward)

    def fairest_record(self) -> Optional[EpisodeRecord]:
        """Valid episode with the lowest unfairness score."""
        valid = [r for r in self.valid_records() if r.trained]
        if not valid:
            return None
        return min(valid, key=lambda r: r.unfairness)

    def smallest_record(self) -> Optional[EpisodeRecord]:
        """Valid episode with the fewest parameters."""
        valid = [r for r in self.valid_records() if r.trained]
        if not valid:
            return None
        return min(valid, key=lambda r: r.num_parameters)

    def top_k(self, k: int = 5) -> List[EpisodeRecord]:
        """The k highest-reward valid episodes (best first)."""
        if k <= 0:
            raise ValueError("k must be positive")
        return sorted(self.valid_records(), key=lambda r: r.reward, reverse=True)[:k]

    def reward_trajectory(self) -> List[float]:
        """Per-episode rewards in order (for convergence plots)."""
        return [r.reward for r in self.records]

    def best_reward_so_far(self) -> List[float]:
        """Running maximum of the reward trajectory."""
        best = float("-inf")
        trajectory = []
        for record in self.records:
            best = max(best, record.reward)
            trajectory.append(best)
        return trajectory

    # -- Pareto fronts ------------------------------------------------------------------
    def pareto_accuracy_fairness(self) -> List[EpisodeRecord]:
        """Non-dominated episodes in (accuracy up, unfairness down)."""
        valid = [r for r in self.valid_records() if r.trained]
        return pareto_frontier(
            valid,
            objectives=lambda r: (r.accuracy, r.unfairness),
            maximise=(True, False),
        )

    def pareto_reward_size(self) -> List[EpisodeRecord]:
        """Non-dominated episodes in (reward up, model size down) -- Figure 5(a)."""
        valid = [r for r in self.valid_records() if r.trained]
        return pareto_frontier(
            valid,
            objectives=lambda r: (r.reward, r.num_parameters),
            maximise=(True, False),
        )

    def summary(self) -> Dict[str, float]:
        """Run-level summary used by the Table 2 harness."""
        best = self.best_record()
        return {
            "episodes": float(len(self.records)),
            "valid_ratio": self.valid_ratio(),
            "space_size": self.space_size,
            "full_space_size": self.full_space_size,
            "total_seconds": self.total_seconds,
            "best_reward": best.reward if best else INVALID_REWARD,
            "frozen_blocks": float(self.frozen_blocks),
            "searchable_blocks": float(self.searchable_blocks),
        }
