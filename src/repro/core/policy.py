"""Monte-Carlo policy gradient (REINFORCE) for the controller (Equation 2).

    grad J(theta) = (1/m) * sum_k sum_t gamma^(T-t)
                    * grad_theta log pi(a_t | a_(t-1):1) * (R_k - b)

where ``m`` is the episode batch size, ``gamma`` the discount applied to the
per-step credit and ``b`` an exponential moving average of past rewards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.core.controller import ControllerSample, LSTMController
from repro.nn.optim import Adam


@dataclass
class PolicyGradientConfig:
    """Hyper-parameters of the controller update."""

    learning_rate: float = 5e-3
    discount: float = 0.97
    baseline_decay: float = 0.8
    entropy_weight: float = 0.0
    batch_episodes: int = 1
    max_grad_norm: float = 10.0

    def __post_init__(self) -> None:
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if not 0.0 < self.discount <= 1.0:
            raise ValueError("discount must be in (0, 1]")
        if not 0.0 <= self.baseline_decay < 1.0:
            raise ValueError("baseline_decay must be in [0, 1)")
        if self.batch_episodes <= 0:
            raise ValueError("batch_episodes must be positive")


class PolicyGradientTrainer:
    """Updates an :class:`LSTMController` from (sample, reward) pairs."""

    def __init__(self, controller: LSTMController, config: Optional[PolicyGradientConfig] = None):
        self.controller = controller
        self.config = config or PolicyGradientConfig()
        self._optimizer = Adam(
            controller.parameters(),
            lr=self.config.learning_rate,
            max_grad_norm=self.config.max_grad_norm,
        )
        self._baseline: Optional[float] = None
        self._pending: List[tuple] = []

    @property
    def baseline(self) -> float:
        """Current exponential-moving-average reward baseline."""
        return 0.0 if self._baseline is None else self._baseline

    @property
    def pending_episodes(self) -> int:
        """Episodes observed but not yet folded into a gradient update."""
        return len(self._pending)

    # -- checkpointing -----------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """Baseline and optimiser state (valid only between batch updates)."""
        if self._pending:
            raise ValueError(
                "cannot checkpoint a policy trainer with pending episodes; "
                "call apply_update() first or checkpoint at a batch boundary"
            )
        return {"baseline": self._baseline, "optimizer": self._optimizer.state_dict()}

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore the state previously captured by :meth:`state_dict`."""
        baseline = state["baseline"]
        self._baseline = None if baseline is None else float(baseline)
        self._optimizer.load_state_dict(state["optimizer"])
        self._pending = []

    def update_baseline(self, reward: float) -> float:
        """Fold one observed reward into the EMA baseline and return it."""
        if self._baseline is None:
            self._baseline = reward
        else:
            decay = self.config.baseline_decay
            self._baseline = decay * self._baseline + (1.0 - decay) * reward
        return self._baseline

    def observe(self, sample: ControllerSample, reward: float) -> None:
        """Record one episode; applies an update every ``batch_episodes``."""
        advantage = reward - self.baseline
        self.update_baseline(reward)
        self._pending.append((sample, advantage))
        if len(self._pending) >= self.config.batch_episodes:
            self.apply_update()

    def apply_update(self) -> None:
        """Apply one gradient-ascent step from the pending episodes."""
        if not self._pending:
            return
        self.controller.zero_grad()
        batch = self._pending
        self._pending = []
        for sample, advantage in batch:
            coefficients = self._step_coefficients(sample, advantage)
            # Gradient *ascent* on expected reward: accumulate the negative so
            # that the (descending) optimiser moves parameters uphill.
            self.controller.accumulate_log_prob_gradient(
                sample, [-c / len(batch) for c in coefficients]
            )
            if self.config.entropy_weight > 0:
                # Encourage exploration by also ascending the entropy: reuse the
                # log-prob gradient direction scaled by the entropy weight.
                self.controller.accumulate_log_prob_gradient(
                    sample,
                    [self.config.entropy_weight / len(batch)] * sample.num_steps,
                )
        self._optimizer.step()

    def _step_coefficients(self, sample: ControllerSample, advantage: float) -> List[float]:
        total_steps = sample.num_steps
        gamma = self.config.discount
        return [
            (gamma ** (total_steps - 1 - t)) * advantage for t in range(total_steps)
        ]
