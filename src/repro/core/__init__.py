"""FaHaNa: fairness- and hardware-aware neural architecture search.

This package implements the paper's primary contribution:

* :mod:`repro.core.search_space` -- the block-based search space (Figure 4-2),
* :mod:`repro.core.controller` -- the RNN (LSTM) controller (Figure 4-1),
* :mod:`repro.core.policy` -- Monte-Carlo policy-gradient updates (Eq. 2),
* :mod:`repro.core.reward` -- the fairness/accuracy/latency reward (Eq. 1),
* :mod:`repro.core.freezing` -- per-layer group feature variation and the
  frozen/searchable split point (Observation 3 / Figure 3),
* :mod:`repro.core.producer` -- the backbone architecture producer
  (Figure 4-3),
* :mod:`repro.core.evaluator` -- the evaluator & trainer (Figure 4-4),
* :mod:`repro.core.pipeline` -- the composable evaluation pipeline
  (gates -> fidelities -> scoring) behind the evaluator,
* :mod:`repro.core.fahana` -- the full FaHaNa search loop,
* :mod:`repro.core.monas` -- the MONAS baseline used in Table 2.
"""

from repro.core.search_space import SearchSpace, BlockDecision, SearchPosition
from repro.core.reward import RewardConfig, compute_reward
from repro.core.controller import LSTMController, ControllerSample
from repro.core.policy import PolicyGradientTrainer, PolicyGradientConfig
from repro.core.freezing import FreezingAnalysis, feature_variation, find_split_point
from repro.core.producer import BackboneProducer, ProducerConfig
from repro.core.evaluator import ChildEvaluator, EvaluationConfig, EvaluationResult
from repro.core.pipeline import (
    EvaluationPipeline,
    FidelityConfig,
    PipelineSettings,
    PricingReport,
)
from repro.core.results import EpisodeRecord, SearchHistory
from repro.core.fahana import FaHaNaSearch, FaHaNaConfig
from repro.core.monas import MonasSearch, MonasConfig
from repro.core.api import run_engine_search, run_fahana_search, run_monas_search

__all__ = [
    "SearchSpace",
    "BlockDecision",
    "SearchPosition",
    "RewardConfig",
    "compute_reward",
    "LSTMController",
    "ControllerSample",
    "PolicyGradientTrainer",
    "PolicyGradientConfig",
    "FreezingAnalysis",
    "feature_variation",
    "find_split_point",
    "BackboneProducer",
    "ProducerConfig",
    "ChildEvaluator",
    "EvaluationConfig",
    "EvaluationResult",
    "EvaluationPipeline",
    "FidelityConfig",
    "PipelineSettings",
    "PricingReport",
    "EpisodeRecord",
    "SearchHistory",
    "FaHaNaSearch",
    "FaHaNaConfig",
    "MonasSearch",
    "MonasConfig",
    "run_engine_search",
    "run_fahana_search",
    "run_monas_search",
]
