"""Evaluator & trainer (Figure 4, component 4).

For every child the evaluator:

1. prices the child with the offline per-block latency table; children that
   violate the timing constraint receive reward -1 *without being trained*
   (the paper's first acceleration),
2. otherwise trains the child's trainable parameters (the searchable tail
   when freezing is active) on the training split,
3. measures overall and per-group accuracy on the validation split, computes
   the unfairness score and evaluates the reward (Eq. 1).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.producer import ChildArchitecture
from repro.core.reward import INVALID_REWARD, RewardConfig, compute_reward
from repro.data.dataset import GroupedDataset
from repro.fairness.report import FairnessReport, evaluate_fairness
from repro.hardware.latency import LatencyEstimator
from repro.nn.trainer import Trainer, TrainingConfig
from repro.utils.rng import SeedLike


@dataclass
class EvaluationConfig:
    """Knobs of the child evaluation."""

    reward: RewardConfig = field(default_factory=RewardConfig)
    training: TrainingConfig = field(default_factory=lambda: TrainingConfig(epochs=5))
    bypass_invalid: bool = True

    def __post_init__(self) -> None:
        if self.training.epochs < 0:
            raise ValueError("training epochs must be non-negative")


@dataclass
class EvaluationResult:
    """Everything measured about one child network."""

    latency_ms: float
    storage_mb: float
    num_parameters: int
    trained: bool
    accuracy: float
    unfairness: float
    group_accuracy: Dict[str, float]
    reward: float
    meets_timing: bool
    meets_accuracy: bool
    train_seconds: float

    @property
    def is_valid(self) -> bool:
        """True when the child satisfied both specifications."""
        return self.reward > INVALID_REWARD


class ChildEvaluator:
    """Latency check, training and fairness scoring of child networks."""

    def __init__(
        self,
        train_dataset: GroupedDataset,
        validation_dataset: GroupedDataset,
        latency_estimator: LatencyEstimator,
        config: Optional[EvaluationConfig] = None,
    ):
        if len(train_dataset) == 0 or len(validation_dataset) == 0:
            raise ValueError("train and validation datasets must be non-empty")
        self.train_dataset = train_dataset
        self.validation_dataset = validation_dataset
        self.latency_estimator = latency_estimator
        self.config = config or EvaluationConfig()
        self._trainer = Trainer(self.config.training)

    def evaluate(self, child: ChildArchitecture) -> EvaluationResult:
        """Price, (conditionally) train and score one child network."""
        reward_config = self.config.reward
        latency = self.latency_estimator.network_latency_ms(child.descriptor)
        storage = child.descriptor.storage_mb()
        num_parameters = child.descriptor.param_count()
        meets_timing = latency <= reward_config.timing_constraint_ms

        if not meets_timing and self.config.bypass_invalid:
            return EvaluationResult(
                latency_ms=latency,
                storage_mb=storage,
                num_parameters=num_parameters,
                trained=False,
                accuracy=0.0,
                unfairness=0.0,
                group_accuracy={},
                reward=INVALID_REWARD,
                meets_timing=False,
                meets_accuracy=False,
                train_seconds=0.0,
            )

        start = time.perf_counter()
        self._trainer.fit(
            child.model, self.train_dataset.images, self.train_dataset.labels
        )
        train_seconds = time.perf_counter() - start

        report: FairnessReport = evaluate_fairness(
            child.model, self.validation_dataset, self._trainer
        )
        reward = compute_reward(
            accuracy=report.overall_accuracy,
            unfairness=report.unfairness,
            latency_ms=latency,
            config=reward_config,
        )
        return EvaluationResult(
            latency_ms=latency,
            storage_mb=storage,
            num_parameters=num_parameters,
            trained=True,
            accuracy=report.overall_accuracy,
            unfairness=report.unfairness,
            group_accuracy=dict(report.group_accuracy),
            reward=reward,
            meets_timing=meets_timing,
            meets_accuracy=report.overall_accuracy >= reward_config.accuracy_constraint,
            train_seconds=train_seconds,
        )
