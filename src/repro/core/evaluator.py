"""Evaluator & trainer (Figure 4, component 4).

For every child the evaluator:

1. prices the child with the offline per-block latency table; children that
   violate the timing constraint receive reward -1 *without being trained*
   (the paper's first acceleration),
2. otherwise trains the child's trainable parameters (the searchable tail
   when freezing is active) on the training split,
3. measures overall and per-group accuracy on the validation split, computes
   the unfairness score and evaluates the reward (Eq. 1).

The mechanics live in :class:`~repro.core.pipeline.EvaluationPipeline`
(gate stages -> fidelity stages -> scoring); :class:`ChildEvaluator` is the
stable facade around the default pipeline, and its configuration's
``pipeline`` settings add parameter/storage gates or proxy fidelity stages
for the engine's successive-halving promotion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.pipeline import EvaluationPipeline, PipelineSettings
from repro.core.producer import ChildArchitecture
from repro.core.reward import INVALID_REWARD, RewardConfig
from repro.data.dataset import GroupedDataset
from repro.hardware.latency import LatencyEstimator
from repro.nn.trainer import TrainingConfig


@dataclass
class EvaluationConfig:
    """Knobs of the child evaluation."""

    reward: RewardConfig = field(default_factory=RewardConfig)
    training: TrainingConfig = field(default_factory=lambda: TrainingConfig(epochs=5))
    bypass_invalid: bool = True
    # Shape of the evaluation pipeline: optional parameter/storage gates and
    # the fidelity ladder (default: a single full-fidelity stage, which
    # reproduces the seed evaluator exactly).
    pipeline: PipelineSettings = field(default_factory=PipelineSettings)

    def __post_init__(self) -> None:
        if self.training.epochs < 0:
            raise ValueError("training epochs must be non-negative")


@dataclass
class EvaluationResult:
    """Everything measured about one child network."""

    latency_ms: float
    storage_mb: float
    num_parameters: int
    trained: bool
    accuracy: float
    unfairness: float
    group_accuracy: Dict[str, float]
    reward: float
    meets_timing: bool
    meets_accuracy: bool
    train_seconds: float
    # Which fidelity stage produced the result ("full" unless a staged
    # pipeline stopped the child at a proxy stage).
    fidelity: str = "full"

    @property
    def is_valid(self) -> bool:
        """True when the child satisfied both specifications."""
        return self.reward > INVALID_REWARD


class ChildEvaluator:
    """Latency check, training and fairness scoring of child networks."""

    def __init__(
        self,
        train_dataset: GroupedDataset,
        validation_dataset: GroupedDataset,
        latency_estimator: LatencyEstimator,
        config: Optional[EvaluationConfig] = None,
    ):
        if len(train_dataset) == 0 or len(validation_dataset) == 0:
            raise ValueError("train and validation datasets must be non-empty")
        self.train_dataset = train_dataset
        self.validation_dataset = validation_dataset
        self.latency_estimator = latency_estimator
        self.config = config or EvaluationConfig()
        self._pipeline: Optional[EvaluationPipeline] = None
        self._pipeline_config: Optional[EvaluationConfig] = None
        self.pipeline  # build (and validate) the pipeline eagerly

    @property
    def pipeline(self) -> EvaluationPipeline:
        """The evaluation pipeline for the current configuration.

        Rebuilt transparently whenever ``config`` (or one of its fields) has
        been replaced since the last use, so post-construction configuration
        tweaks keep affecting evaluation exactly as they did when the
        evaluator was a monolith.
        """
        snapshot = EvaluationConfig(
            reward=self.config.reward,
            training=self.config.training,
            bypass_invalid=self.config.bypass_invalid,
            pipeline=self.config.pipeline,
        )
        if self._pipeline is None or snapshot != self._pipeline_config:
            self._pipeline = EvaluationPipeline(
                train_dataset=self.train_dataset,
                validation_dataset=self.validation_dataset,
                latency_estimator=self.latency_estimator,
                reward=snapshot.reward,
                training=snapshot.training,
                settings=snapshot.pipeline,
                bypass_invalid=snapshot.bypass_invalid,
            )
            self._pipeline_config = snapshot
        return self._pipeline

    @property
    def _trainer(self):
        """The full-fidelity trainer (kept for callers of the old attribute)."""
        pipeline = self.pipeline
        return pipeline.trainer(pipeline.final_fidelity)

    def evaluate(self, child: ChildArchitecture) -> EvaluationResult:
        """Price, (conditionally) train and score one child network."""
        return self.pipeline.evaluate(child)
