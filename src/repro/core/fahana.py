"""The FaHaNa search loop.

Ties together the four components of Figure 4: the RNN controller samples a
child architecture from the block-based search space, the producer
materialises it around the frozen backbone header, the evaluator prices /
trains / scores it, and the resulting reward (Eq. 1) updates the controller
with the Monte-Carlo policy gradient (Eq. 2).

Execution is delegated to :mod:`repro.engine`: the default engine
configuration (serial backend, no cache) reproduces the original sequential
loop bit for bit, while an explicit :class:`~repro.engine.EngineConfig`
unlocks parallel episode batches, evaluation memoization and
checkpoint/resume.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Optional

from repro.core.controller import LSTMController
from repro.core.evaluator import ChildEvaluator, EvaluationConfig
from repro.core.freezing import FreezingAnalysis
from repro.core.pipeline import PipelineSettings
from repro.core.policy import PolicyGradientConfig, PolicyGradientTrainer
from repro.core.producer import BackboneProducer, ProducerConfig
from repro.core.results import EpisodeRecord, SearchHistory
from repro.core.reward import RewardConfig
from repro.core.search_space import SearchSpace
from repro.data.dataset import GroupedDataset
from repro.hardware.constraints import DesignSpec
from repro.hardware.latency import LatencyEstimator
from repro.nn.trainer import TrainingConfig
from repro.utils.rng import SeedLike, spawn_rngs

if TYPE_CHECKING:
    from repro.engine.engine import EngineConfig


@dataclass
class FaHaNaConfig:
    """All knobs of one FaHaNa run."""

    episodes: int = 50
    alpha: float = 1.0
    beta: float = 1.0
    controller_hidden: int = 64
    seed: int = 0
    search_space: SearchSpace = field(default_factory=SearchSpace)
    producer: ProducerConfig = field(default_factory=ProducerConfig)
    policy: PolicyGradientConfig = field(default_factory=PolicyGradientConfig)
    child_training: TrainingConfig = field(
        default_factory=lambda: TrainingConfig(epochs=5)
    )
    # Shape of the evaluation pipeline (extra gates, proxy fidelity stages);
    # the default single full-fidelity stage reproduces the seed evaluator.
    pipeline: PipelineSettings = field(default_factory=PipelineSettings)
    # Engine-level early stopping: stop the search once the best reward has
    # not improved by more than plateau_delta for plateau_patience episodes
    # (None disables plateau detection).
    plateau_patience: Optional[int] = None
    plateau_delta: float = 0.0
    # Engine-level adaptive wave sizing: grow waves while episodes are cheap
    # (gate rejections, cache hits), shrink back once every episode trains.
    adaptive_wave: bool = False
    # Execution knobs (backend, cache, checkpointing); None falls back to the
    # process-wide default and ultimately to the plain serial engine, which
    # matches the original sequential loop exactly.
    engine: Optional["EngineConfig"] = None

    def __post_init__(self) -> None:
        if self.episodes <= 0:
            raise ValueError("episodes must be positive")
        if self.alpha < 0 or self.beta < 0:
            raise ValueError("alpha and beta must be non-negative")
        if self.plateau_patience is not None and self.plateau_patience <= 0:
            raise ValueError("plateau_patience must be positive when given")
        if self.plateau_delta < 0:
            raise ValueError("plateau_delta must be non-negative")


@dataclass
class FaHaNaResult:
    """Outcome of a search run."""

    history: SearchHistory
    best: Optional[EpisodeRecord]
    fairest: Optional[EpisodeRecord]
    smallest: Optional[EpisodeRecord]
    freezing_analysis: Optional[FreezingAnalysis]

    def summary(self) -> str:
        lines = [
            f"episodes={len(self.history)}  valid={self.history.valid_ratio():.1%}  "
            f"space={self.history.space_size:.2e}  time={self.history.total_seconds:.1f}s"
        ]
        if self.best is not None:
            lines.append(
                f"best reward={self.best.reward:.4f} "
                f"(accuracy={self.best.accuracy:.2%}, unfairness={self.best.unfairness:.4f}, "
                f"params={self.best.num_parameters:,})"
            )
        if self.fairest is not None:
            lines.append(
                f"fairest unfairness={self.fairest.unfairness:.4f} "
                f"(accuracy={self.fairest.accuracy:.2%})"
            )
        if self.smallest is not None:
            lines.append(
                f"smallest valid {self.smallest.num_parameters:,} parameters "
                f"(accuracy={self.smallest.accuracy:.2%})"
            )
        return "\n".join(lines)


class FaHaNaSearch:
    """Fairness- and hardware-aware NAS (the paper's framework)."""

    def __init__(
        self,
        train_dataset: GroupedDataset,
        validation_dataset: GroupedDataset,
        design_spec: Optional[DesignSpec] = None,
        config: Optional[FaHaNaConfig] = None,
    ):
        self.train_dataset = train_dataset
        self.validation_dataset = validation_dataset
        self.design_spec = design_spec or DesignSpec()
        self.config = config or FaHaNaConfig()

        rngs = spawn_rngs(self.config.seed, 4)
        self.producer = BackboneProducer(
            dataset=train_dataset,
            search_space=self.config.search_space,
            config=self.config.producer,
            trainer_config=TrainingConfig(
                epochs=self.config.producer.pretrain_epochs,
                batch_size=self.config.child_training.batch_size,
                learning_rate=self.config.child_training.learning_rate,
                optimizer=self.config.child_training.optimizer,
                seed=self.config.seed,
            ),
            num_classes=train_dataset.num_classes,
            rng=rngs[0],
        )
        self.producer.prepare()

        self.controller = LSTMController(
            search_space=self.config.search_space,
            positions=self.producer.positions,
            hidden_size=self.config.controller_hidden,
            rng=rngs[1],
        )
        self.policy_trainer = PolicyGradientTrainer(self.controller, self.config.policy)

        reward_config = RewardConfig(
            alpha=self.config.alpha,
            beta=self.config.beta,
            accuracy_constraint=self.design_spec.accuracy_constraint,
            timing_constraint_ms=self.design_spec.timing_constraint_ms,
        )
        # The design spec's storage budget is enforced by the pipeline's
        # storage gate; an explicit pipeline limit takes precedence.
        pipeline_settings = self.config.pipeline
        design_storage = self.design_spec.hardware.max_storage_mb
        if pipeline_settings.max_storage_mb is None and design_storage is not None:
            pipeline_settings = replace(
                pipeline_settings, max_storage_mb=design_storage
            )
        estimator = LatencyEstimator(
            device=self.design_spec.hardware.device,
            resolution=self.producer.backbone.input_resolution,
        )
        self.evaluator = ChildEvaluator(
            train_dataset=train_dataset,
            validation_dataset=validation_dataset,
            latency_estimator=estimator,
            config=EvaluationConfig(
                reward=reward_config,
                training=self.config.child_training,
                bypass_invalid=True,
                pipeline=pipeline_settings,
            ),
        )
        self._sample_rng = rngs[2]
        self._child_rng = rngs[3]

    # -- search loop ------------------------------------------------------------------
    def run(self, episodes: Optional[int] = None) -> FaHaNaResult:
        """Run the search and return the history plus the headline networks.

        Delegates to :class:`repro.engine.SearchEngine`; with the default
        engine configuration this is the original sample -> produce ->
        evaluate -> observe loop, bit for bit.
        """
        # Imported lazily: the engine builds on core, not the other way round.
        from repro.engine.engine import SearchEngine, resolve_engine_config

        engine = SearchEngine(self, config=resolve_engine_config(self.config.engine))
        return engine.run(episodes)
