"""Backbone architecture producer (Figure 4, component 3).

The producer owns the backbone architecture (MobileNetV2 by default), decides
which of its blocks are frozen versus searchable (via the freezing analysis),
and materialises child networks from controller decisions:

* the *frozen header* keeps the backbone's pre-trained weights and is never
  trained again (its parameters are marked non-trainable),
* the *searchable tail* is rebuilt from the controller's block decisions and
  trained from scratch for every child.

With ``freeze=False`` the producer degenerates into the MONAS baseline: every
backbone position is searchable and no pre-trained weights are reused.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.blocks.spec import BlockSpec
from repro.core.freezing import FreezingAnalysis, analyse_model_freezing
from repro.core.search_space import BlockDecision, SearchPosition, SearchSpace
from repro.data.dataset import GroupedDataset
from repro.nn.layers import BatchNorm2d
from repro.nn.module import Module, Sequential
from repro.nn.trainer import Trainer, TrainingConfig
from repro.utils.rng import SeedLike, new_rng, spawn_rngs
from repro.zoo.descriptors import ArchitectureDescriptor
from repro.zoo.registry import get_architecture


@dataclass
class ProducerConfig:
    """Configuration of the backbone producer."""

    backbone: Union[str, ArchitectureDescriptor] = "MobileNetV2"
    freeze: bool = True
    gamma: float = 0.5
    pretrain_epochs: int = 5
    width_multiplier: float = 0.35
    analysis_batch_size: int = 32
    max_searchable: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0.0 < self.gamma <= 1.0:
            raise ValueError("gamma must be in (0, 1]")
        if self.pretrain_epochs < 0:
            raise ValueError("pretrain_epochs must be non-negative")
        if self.width_multiplier <= 0:
            raise ValueError("width_multiplier must be positive")
        if self.max_searchable is not None and self.max_searchable <= 0:
            raise ValueError("max_searchable must be positive when given")


@dataclass
class ChildArchitecture:
    """A materialised child network ready for evaluation."""

    descriptor: ArchitectureDescriptor
    model: Sequential
    decisions: List[BlockDecision]
    num_trainable_parameters: int
    num_frozen_parameters: int


class BackboneProducer:
    """Builds child networks around a (partially frozen) backbone."""

    def __init__(
        self,
        dataset: GroupedDataset,
        search_space: Optional[SearchSpace] = None,
        config: Optional[ProducerConfig] = None,
        trainer_config: Optional[TrainingConfig] = None,
        num_classes: Optional[int] = None,
        rng: SeedLike = 0,
    ):
        self.dataset = dataset
        self.search_space = search_space or SearchSpace()
        self.config = config or ProducerConfig()
        self.trainer_config = trainer_config or TrainingConfig(epochs=self.config.pretrain_epochs)
        self.num_classes = num_classes or dataset.num_classes
        self._rng = new_rng(rng)

        backbone = self.config.backbone
        if isinstance(backbone, str):
            backbone = get_architecture(backbone, num_classes=self.num_classes)
        self.backbone: ArchitectureDescriptor = backbone

        self._prepared = False
        self._analysis: Optional[FreezingAnalysis] = None
        self._backbone_model: Optional[Sequential] = None
        self._split_block: int = 0
        self._positions: List[SearchPosition] = []

    # -- preparation ---------------------------------------------------------------
    def prepare(self) -> Optional[FreezingAnalysis]:
        """Pre-train the backbone (if freezing) and fix the split point."""
        if self._prepared:
            return self._analysis
        if self.config.freeze:
            seed = int(self._rng.integers(0, 2**31 - 1))
            self._backbone_model = self.backbone.build(
                num_classes=self.num_classes,
                width_multiplier=self.config.width_multiplier,
                rng=seed,
            )
            if self.config.pretrain_epochs > 0:
                trainer = Trainer(self.trainer_config)
                trainer.fit(
                    self._backbone_model, self.dataset.images, self.dataset.labels
                )
            self._analysis = analyse_model_freezing(
                self._backbone_model,
                self.dataset,
                gamma=self.config.gamma,
                num_stages=1 + len(self.backbone.blocks),
                batch_size=self.config.analysis_batch_size,
                rng=self._rng,
            )
            # Stage 0 is the stem; stage i corresponds to backbone block i-1.
            self._split_block = max(0, self._analysis.split_index - 1)
        else:
            self._analysis = None
            self._split_block = 0

        if self.config.max_searchable is not None:
            min_split = len(self.backbone.blocks) - self.config.max_searchable
            self._split_block = max(self._split_block, min_split)
        # Never freeze everything: keep at least one searchable position.
        self._split_block = min(self._split_block, len(self.backbone.blocks) - 1)
        self._positions = self._compute_positions()
        self._prepared = True
        return self._analysis

    def _compute_positions(self) -> List[SearchPosition]:
        resolution = self.backbone.input_resolution
        height, width = self.backbone.stem.output_spatial(resolution, resolution)
        positions: List[SearchPosition] = []
        for index, block in enumerate(self.backbone.blocks):
            if index >= self._split_block:
                positions.append(
                    SearchPosition(
                        index=index, stride=block.stride, input_resolution=height
                    )
                )
            height, width = block.output_spatial(height, width)
        return positions

    # -- introspection ---------------------------------------------------------------
    @property
    def analysis(self) -> Optional[FreezingAnalysis]:
        return self._analysis

    @property
    def backbone_model(self) -> Optional[Sequential]:
        """The pre-trained backbone model (None when freezing is off)."""
        self._ensure_prepared()
        return self._backbone_model

    @property
    def split_block(self) -> int:
        """Index of the first searchable backbone block."""
        self._ensure_prepared()
        return self._split_block

    @property
    def positions(self) -> List[SearchPosition]:
        """The searchable positions handed to the controller."""
        self._ensure_prepared()
        return list(self._positions)

    def frozen_block_specs(self) -> Tuple[BlockSpec, ...]:
        """Backbone blocks that stay fixed in every child."""
        self._ensure_prepared()
        return self.backbone.blocks[: self._split_block]

    def space_size(self) -> float:
        """Number of candidate networks in the (possibly reduced) search space."""
        self._ensure_prepared()
        return self.search_space.space_size(self._positions)

    def full_space_size(self) -> float:
        """Search-space size without freezing (every backbone position searchable)."""
        resolution = self.backbone.input_resolution
        height, width = self.backbone.stem.output_spatial(resolution, resolution)
        positions = []
        for index, block in enumerate(self.backbone.blocks):
            positions.append(
                SearchPosition(index=index, stride=block.stride, input_resolution=height)
            )
            height, width = block.output_spatial(height, width)
        return self.search_space.space_size(positions)

    # -- child construction -------------------------------------------------------------
    def describe_child(self, decisions: Sequence[BlockDecision]) -> ArchitectureDescriptor:
        """Build only the child's descriptor, without instantiating a model.

        The engine's evaluation cache uses this to fingerprint a sampled child
        before deciding whether the (expensive) model build and training are
        needed at all.
        """
        self._ensure_prepared()
        if len(decisions) != len(self._positions):
            raise ValueError(
                f"expected {len(self._positions)} decisions, got {len(decisions)}"
            )
        frozen_specs = list(self.frozen_block_specs())
        if frozen_specs:
            tail_ch_in = frozen_specs[-1].ch_out
        else:
            tail_ch_in = self.backbone.stem.ch_out
        searched_specs = self.search_space.decisions_to_specs(
            self._positions, list(decisions), tail_ch_in
        )
        return self.backbone.with_blocks(
            frozen_specs + searched_specs, name="FaHaNa-child"
        )

    def produce(
        self, decisions: Sequence[BlockDecision], rng: SeedLike = None
    ) -> ChildArchitecture:
        """Materialise the child network described by the controller decisions."""
        descriptor = self.describe_child(decisions)

        seed = (
            int(new_rng(rng).integers(0, 2**31 - 1))
            if rng is not None
            else int(self._rng.integers(0, 2**31 - 1))
        )
        model = descriptor.build(
            num_classes=self.num_classes,
            width_multiplier=self.config.width_multiplier,
            rng=seed,
        )
        num_frozen = 0
        if self.config.freeze and self._backbone_model is not None:
            num_frozen = self._transfer_frozen_weights(model)

        return ChildArchitecture(
            descriptor=descriptor,
            model=model,
            decisions=list(decisions),
            num_trainable_parameters=model.num_parameters(trainable_only=True),
            num_frozen_parameters=num_frozen,
        )

    def _transfer_frozen_weights(self, child_model: Sequential) -> int:
        """Copy pre-trained weights into the child's frozen prefix and freeze it.

        Stage 0 is the stem and stages 1..split_block are the frozen backbone
        blocks; their layer structure in the child is identical to the
        backbone model's, so a state-dict copy is exact.
        """
        assert self._backbone_model is not None
        frozen_params = 0
        num_frozen_stages = 1 + self._split_block
        for stage_index in range(num_frozen_stages):
            source = self._backbone_model[stage_index]
            target = child_model[stage_index]
            target.load_state_dict(source.state_dict())
            _copy_batchnorm_statistics(source, target)
            target.freeze()
            frozen_params += target.num_parameters()
        return frozen_params

    def _ensure_prepared(self) -> None:
        if not self._prepared:
            self.prepare()


def _copy_batchnorm_statistics(source: Module, target: Module) -> None:
    """Copy batch-norm running statistics between structurally identical modules."""
    source_bns = [m for m in source.modules() if isinstance(m, BatchNorm2d)]
    target_bns = [m for m in target.modules() if isinstance(m, BatchNorm2d)]
    if len(source_bns) != len(target_bns):
        raise ValueError("modules have different batch-norm structure")
    for src, dst in zip(source_bns, target_bns):
        dst.running_mean = src.running_mean.copy()
        dst.running_var = src.running_var.copy()
