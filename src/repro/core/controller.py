"""LSTM controller.

The controller autoregressively emits the four decisions of every searchable
position.  At each step the embedding of the previous decision is fed into an
LSTM cell; a per-decision-kind output head turns the hidden state into logits
over that decision's vocabulary.  Sampling records everything needed to
compute ``grad log pi(a_t)`` by backpropagation through time, which the
policy-gradient trainer (Eq. 2) consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.search_space import BlockDecision, SearchPosition, SearchSpace
from repro.nn.functional import softmax
from repro.nn.tensor import Parameter
from repro.utils.rng import SeedLike, new_rng

# Decision kinds, in controller emission order for every position.
_KIND_TYPE = "type"
_KIND_KERNEL = "kernel"
_KIND_MID = "ch_mid"
_KIND_OUT = "ch_out"
_KINDS = (_KIND_TYPE, _KIND_KERNEL, _KIND_MID, _KIND_OUT)


@dataclass
class _StepCache:
    """Everything the BPTT backward pass needs for one emission step."""

    head_key: str
    prev_token: int
    x: np.ndarray
    h_prev: np.ndarray
    c_prev: np.ndarray
    gates: Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]
    c: np.ndarray
    h: np.ndarray
    probs: np.ndarray
    action: int


@dataclass
class ControllerSample:
    """One sampled architecture plus the log-probability bookkeeping."""

    decision_indices: List[List[int]]
    decisions: List[BlockDecision]
    log_prob: float
    entropy: float
    steps: List[_StepCache] = field(repr=False, default_factory=list)

    @property
    def num_steps(self) -> int:
        return len(self.steps)


class LSTMController:
    """Recurrent policy over block hyper-parameters."""

    def __init__(
        self,
        search_space: SearchSpace,
        positions: Sequence[SearchPosition],
        hidden_size: int = 64,
        rng: SeedLike = 0,
    ):
        if hidden_size <= 0:
            raise ValueError("hidden_size must be positive")
        if not positions:
            raise ValueError("the controller needs at least one searchable position")
        self.search_space = search_space
        self.positions = list(positions)
        self.hidden_size = hidden_size
        generator = new_rng(rng)

        vocab = search_space.max_decision_size() + 1  # +1 for the start token
        self._start_token = 0
        scale = 0.1
        self.embedding = Parameter(
            generator.normal(0.0, scale, size=(vocab, hidden_size)), name="embedding"
        )
        self.lstm_weight = Parameter(
            generator.normal(0.0, scale, size=(4 * hidden_size, 2 * hidden_size)),
            name="lstm_weight",
        )
        self.lstm_bias = Parameter(np.zeros(4 * hidden_size), name="lstm_bias")

        # One output head per (decision kind, stride variant where relevant).
        self._heads: Dict[str, Tuple[Parameter, Parameter]] = {}
        for key, size in self._head_sizes().items():
            weight = Parameter(
                generator.normal(0.0, scale, size=(size, hidden_size)),
                name=f"head_{key}_w",
            )
            bias = Parameter(np.zeros(size), name=f"head_{key}_b")
            self._heads[key] = (weight, bias)

    # -- parameter plumbing -------------------------------------------------------
    def _head_sizes(self) -> Dict[str, int]:
        space = self.search_space
        return {
            "type_s1": len(space.stride1_types),
            "type_s2": len(space.stride2_types),
            "kernel": len(space.kernel_choices),
            "ch_mid": len(space.ch_mid_choices),
            "ch_out": len(space.ch_out_choices),
        }

    def parameters(self) -> List[Parameter]:
        """All trainable parameters of the controller."""
        params = [self.embedding, self.lstm_weight, self.lstm_bias]
        for weight, bias in self._heads.values():
            params.extend([weight, bias])
        return params

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def _head_key(self, kind: str, stride: int) -> str:
        if kind == _KIND_TYPE:
            return "type_s2" if stride == 2 else "type_s1"
        return kind

    # -- forward (sampling) ---------------------------------------------------------
    def sample(
        self,
        rng: SeedLike = None,
        temperature: float = 1.0,
        greedy: bool = False,
    ) -> ControllerSample:
        """Sample one architecture from the current policy."""
        if temperature <= 0:
            raise ValueError("temperature must be positive")
        generator = new_rng(rng)
        h = np.zeros(self.hidden_size)
        c = np.zeros(self.hidden_size)
        prev_token = self._start_token
        steps: List[_StepCache] = []
        decision_indices: List[List[int]] = []
        log_prob = 0.0
        entropy = 0.0

        for position in self.positions:
            per_position: List[int] = []
            for kind in _KINDS:
                head_key = self._head_key(kind, position.stride)
                cache, h, c = self._step(prev_token, h, c, head_key, temperature)
                probs = cache.probs
                if greedy:
                    action = int(np.argmax(probs))
                else:
                    action = int(generator.choice(len(probs), p=probs))
                cache.action = action
                steps.append(cache)
                per_position.append(action)
                log_prob += float(np.log(probs[action] + 1e-12))
                entropy += float(-(probs * np.log(probs + 1e-12)).sum())
                prev_token = action + 1  # shift to leave 0 as the start token
            decision_indices.append(per_position)

        decisions = [
            self.search_space.decode(position.stride, indices)
            for position, indices in zip(self.positions, decision_indices)
        ]
        return ControllerSample(
            decision_indices=decision_indices,
            decisions=decisions,
            log_prob=log_prob,
            entropy=entropy,
            steps=steps,
        )

    def _step(
        self,
        prev_token: int,
        h_prev: np.ndarray,
        c_prev: np.ndarray,
        head_key: str,
        temperature: float,
    ) -> Tuple[_StepCache, np.ndarray, np.ndarray]:
        hidden = self.hidden_size
        x = self.embedding.data[prev_token]
        concat = np.concatenate([x, h_prev])
        z = self.lstm_weight.data @ concat + self.lstm_bias.data
        i = _sigmoid(z[:hidden])
        f = _sigmoid(z[hidden : 2 * hidden])
        g = np.tanh(z[2 * hidden : 3 * hidden])
        o = _sigmoid(z[3 * hidden :])
        c = f * c_prev + i * g
        h = o * np.tanh(c)
        weight, bias = self._heads[head_key]
        logits = (weight.data @ h + bias.data) / temperature
        probs = softmax(logits)
        cache = _StepCache(
            head_key=head_key,
            prev_token=prev_token,
            x=x,
            h_prev=h_prev,
            c_prev=c_prev,
            gates=(i, f, g, o),
            c=c,
            h=h,
            probs=probs,
            action=-1,
        )
        return cache, h, c

    # -- backward (policy gradient) ---------------------------------------------------
    def accumulate_log_prob_gradient(
        self, sample: ControllerSample, step_coefficients: Sequence[float]
    ) -> None:
        """Accumulate ``sum_t coeff_t * grad log pi(a_t)`` into the parameter grads.

        ``step_coefficients`` holds one coefficient per emission step (the
        policy-gradient trainer passes ``gamma^(T-t) * (R - b)``); the caller
        is responsible for the outer 1/m averaging and for flipping signs if
        it wants gradient *descent* on a loss rather than ascent on reward.
        """
        if len(step_coefficients) != len(sample.steps):
            raise ValueError(
                f"expected {len(sample.steps)} coefficients, got {len(step_coefficients)}"
            )
        hidden = self.hidden_size
        dh_next = np.zeros(hidden)
        dc_next = np.zeros(hidden)
        for t in reversed(range(len(sample.steps))):
            cache = sample.steps[t]
            coeff = float(step_coefficients[t])
            # d log pi(a_t) / d logits = onehot(a_t) - probs
            dlogits = -cache.probs * coeff
            dlogits[cache.action] += coeff

            weight, bias = self._heads[cache.head_key]
            weight.accumulate_grad(np.outer(dlogits, cache.h))
            bias.accumulate_grad(dlogits)
            dh = weight.data.T @ dlogits + dh_next

            i, f, g, o = cache.gates
            tanh_c = np.tanh(cache.c)
            do = dh * tanh_c
            dc = dh * o * (1 - tanh_c**2) + dc_next
            di = dc * g
            dg = dc * i
            df = dc * cache.c_prev
            dc_next = dc * f

            dz = np.concatenate(
                [
                    di * i * (1 - i),
                    df * f * (1 - f),
                    dg * (1 - g**2),
                    do * o * (1 - o),
                ]
            )
            concat = np.concatenate([cache.x, cache.h_prev])
            self.lstm_weight.accumulate_grad(np.outer(dz, concat))
            self.lstm_bias.accumulate_grad(dz)
            dconcat = self.lstm_weight.data.T @ dz
            dx = dconcat[:hidden]
            dh_next = dconcat[hidden:]

            embedding_grad = np.zeros_like(self.embedding.data)
            embedding_grad[cache.prev_token] = dx
            self.embedding.accumulate_grad(embedding_grad)

    def log_prob_of(self, sample: ControllerSample) -> float:
        """Log-probability of a previously drawn sample under the current policy.

        Re-runs the forward pass with the sample's actions; useful for tests
        and for diagnosing policy drift.
        """
        h = np.zeros(self.hidden_size)
        c = np.zeros(self.hidden_size)
        prev_token = self._start_token
        total = 0.0
        step_index = 0
        for position in self.positions:
            for kind in _KINDS:
                head_key = self._head_key(kind, position.stride)
                cache, h, c = self._step(prev_token, h, c, head_key, 1.0)
                action = sample.steps[step_index].action
                total += float(np.log(cache.probs[action] + 1e-12))
                prev_token = action + 1
                step_index += 1
        return total


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))
