"""Composable child-evaluation pipeline: gates -> fidelities -> scoring.

The paper's central acceleration is *refusing to pay full training cost for
children that cannot win*: latency-violating children receive reward -1
without being trained.  The seed code hard-wired that idea as one ``if``
inside ``ChildEvaluator``; this module decomposes the evaluation into an
ordered pipeline so the same refusal generalises:

* **Gate stages** price a child from its descriptor alone (per-block latency
  table, parameter count, storage) and can short-circuit the evaluation to
  ``INVALID_REWARD`` before any model is built or trained.
* **Fidelity stages** train the survivors at increasing cost -- a proxy stage
  uses fewer epochs and/or a fraction of the training data -- and the engine
  promotes only the top quantile of each wave to the next stage
  (successive-halving style, as in the MnasNet/ProxylessNAS lineage).
* The **scoring stage** measures accuracy and per-group unfairness on the
  full validation split and evaluates the Eq. 1 reward.

The default configuration -- one latency gate followed by a single
full-fidelity stage -- reproduces the seed evaluator bit for bit, so every
existing entry point keeps its exact results unless a spec opts into more
stages.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.producer import ChildArchitecture
from repro.core.reward import INVALID_REWARD, RewardConfig, compute_reward
from repro.data.dataset import GroupedDataset
from repro.fairness.report import FairnessReport, evaluate_fairness
from repro.hardware.latency import LatencyEstimator
from repro.nn.layers.norm import BatchNorm2d
from repro.nn.module import Module
from repro.nn.trainer import Trainer, TrainingConfig
from repro.utils.fingerprint import content_fingerprint
from repro.utils.rng import new_rng
from repro.zoo.descriptors import ArchitectureDescriptor

FULL_FIDELITY_NAME = "full"


@dataclass(frozen=True)
class FidelityConfig:
    """One training fidelity: an (epochs, data fraction) budget.

    ``epochs=None`` means the full child-training budget of the evaluation's
    :class:`~repro.nn.trainer.TrainingConfig`; ``data_fraction`` selects a
    deterministic subset of the training split (drawn once per fidelity with
    ``subset_seed``).  ``promote_fraction`` is read by the engine: after a
    wave finishes this stage, only the top ``promote_fraction`` of the wave's
    valid children (by reward) advance to the next stage.
    """

    name: str = FULL_FIDELITY_NAME
    epochs: Optional[int] = None
    data_fraction: float = 1.0
    promote_fraction: float = 0.5
    subset_seed: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("fidelity name must be non-empty")
        if self.epochs is not None and self.epochs < 0:
            raise ValueError("fidelity epochs must be non-negative when given")
        if not 0.0 < self.data_fraction <= 1.0:
            raise ValueError("data_fraction must be in (0, 1]")
        if not 0.0 < self.promote_fraction <= 1.0:
            raise ValueError("promote_fraction must be in (0, 1]")

    @property
    def is_full(self) -> bool:
        """True when this stage trains at the full (un-reduced) budget."""
        return self.epochs is None and self.data_fraction >= 1.0

    def fingerprint(self) -> str:
        """Content fingerprint of the *training budget* this stage buys.

        The name and the promotion quantile are excluded: neither changes
        what a training run computes, so two schedules whose stages share a
        budget share cached results.
        """
        return content_fingerprint(
            {
                "epochs": self.epochs,
                "data_fraction": self.data_fraction,
                "subset_seed": self.subset_seed,
            }
        )


@dataclass(frozen=True)
class PipelineSettings:
    """Declarative shape of an evaluation pipeline (gates + fidelity ladder).

    The latency gate is always present (its limit lives in
    :class:`~repro.core.reward.RewardConfig`); ``max_parameters`` and
    ``max_storage_mb`` enable the optional parameter-count and memory gates.
    ``fidelities`` must end with a full-budget stage -- the final reward of a
    fully-promoted child is always measured at full fidelity.
    """

    max_parameters: Optional[int] = None
    max_storage_mb: Optional[float] = None
    fidelities: Tuple[FidelityConfig, ...] = (FidelityConfig(),)

    def __post_init__(self) -> None:
        if self.max_parameters is not None and self.max_parameters <= 0:
            raise ValueError("max_parameters must be positive when given")
        if self.max_storage_mb is not None and self.max_storage_mb <= 0:
            raise ValueError("max_storage_mb must be positive when given")
        if not self.fidelities:
            raise ValueError("the pipeline needs at least one fidelity stage")
        names = [fidelity.name for fidelity in self.fidelities]
        if len(set(names)) != len(names):
            raise ValueError(f"fidelity names must be unique, got {names}")
        if not self.fidelities[-1].is_full:
            raise ValueError(
                "the final fidelity stage must train at the full budget "
                "(epochs=None, data_fraction=1.0)"
            )
        for fidelity in self.fidelities[:-1]:
            if fidelity.is_full:
                raise ValueError(
                    f"fidelity {fidelity.name!r} trains at the full budget but "
                    "is not the final stage; proxy stages must reduce epochs "
                    "and/or data_fraction"
                )

    @property
    def staged(self) -> bool:
        """True when the pipeline has proxy stages (promotion applies)."""
        return len(self.fidelities) > 1


@dataclass(frozen=True)
class GateOutcome:
    """One gate's verdict on one child."""

    gate: str
    passed: bool
    measured: float
    limit: float


@dataclass(frozen=True)
class PricingReport:
    """Everything measured about a child before any training.

    All quantities derive from the descriptor alone (offline latency table,
    analytic parameter/storage counts), so pricing a child is cheap enough to
    run in the engine's sampling loop.
    """

    latency_ms: float
    storage_mb: float
    num_parameters: int
    gates: Tuple[GateOutcome, ...]

    @property
    def passed(self) -> bool:
        return all(outcome.passed for outcome in self.gates)

    @property
    def meets_timing(self) -> bool:
        for outcome in self.gates:
            if outcome.gate == "latency":
                return outcome.passed
        return True

    def failures(self) -> List[GateOutcome]:
        return [outcome for outcome in self.gates if not outcome.passed]


class LatencyGate:
    """Rejects children whose estimated latency violates the timing constraint."""

    name = "latency"

    def __init__(self, timing_constraint_ms: float):
        self.limit = timing_constraint_ms

    def check(self, pricing: "PricingReport") -> GateOutcome:
        return GateOutcome(
            gate=self.name,
            passed=pricing.latency_ms <= self.limit,
            measured=pricing.latency_ms,
            limit=self.limit,
        )


class ParameterCountGate:
    """Rejects children with more parameters than the configured budget."""

    name = "parameters"

    def __init__(self, max_parameters: int):
        self.limit = float(max_parameters)

    def check(self, pricing: "PricingReport") -> GateOutcome:
        return GateOutcome(
            gate=self.name,
            passed=pricing.num_parameters <= self.limit,
            measured=float(pricing.num_parameters),
            limit=self.limit,
        )


class MemoryGate:
    """Rejects children whose weight storage exceeds the configured budget."""

    name = "storage"

    def __init__(self, max_storage_mb: float):
        self.limit = max_storage_mb

    def check(self, pricing: "PricingReport") -> GateOutcome:
        return GateOutcome(
            gate=self.name,
            passed=pricing.storage_mb <= self.limit,
            measured=pricing.storage_mb,
            limit=self.limit,
        )


# -- weight snapshots (promotion re-trains from the child's initial weights) --------
def snapshot_weights(model: Module) -> Dict[str, np.ndarray]:
    """Copy every parameter and batch-norm running statistic of ``model``.

    Proxy training mutates the child model in place; a promoted child must
    re-train its *full* stage from the same initial weights the sequential
    loop would have used, so the engine snapshots them before the first stage
    runs.
    """
    state = {name: data.copy() for name, data in model.state_dict().items()}
    for index, module in enumerate(m for m in model.modules() if isinstance(m, BatchNorm2d)):
        state[f"__bn_mean__{index}"] = module.running_mean.copy()
        state[f"__bn_var__{index}"] = module.running_var.copy()
    return state


def restore_weights(model: Module, snapshot: Dict[str, np.ndarray]) -> None:
    """Restore a :func:`snapshot_weights` capture into ``model`` (in place)."""
    parameters = {
        name: value for name, value in snapshot.items() if not name.startswith("__bn_")
    }
    model.load_state_dict(parameters)
    for index, module in enumerate(m for m in model.modules() if isinstance(m, BatchNorm2d)):
        module.running_mean = snapshot[f"__bn_mean__{index}"].copy()
        module.running_var = snapshot[f"__bn_var__{index}"].copy()


class EvaluationPipeline:
    """Prices, trains and scores child networks through configurable stages.

    The pipeline owns one trainer per fidelity (the full stage reuses the
    evaluation's training configuration verbatim) and one deterministic data
    subset per reduced-data fidelity.  :meth:`evaluate` is the single-child
    path (gates, then the final full-fidelity stage) and reproduces the seed
    evaluator exactly; the engine drives the staged path itself because
    promotion is a wave-relative decision.
    """

    def __init__(
        self,
        train_dataset: GroupedDataset,
        validation_dataset: GroupedDataset,
        latency_estimator: LatencyEstimator,
        reward: RewardConfig,
        training: TrainingConfig,
        settings: Optional[PipelineSettings] = None,
        bypass_invalid: bool = True,
    ):
        if len(train_dataset) == 0 or len(validation_dataset) == 0:
            raise ValueError("train and validation datasets must be non-empty")
        self.train_dataset = train_dataset
        self.validation_dataset = validation_dataset
        self.latency_estimator = latency_estimator
        self.reward = reward
        self.training = training
        self.settings = settings or PipelineSettings()
        self.bypass_invalid = bypass_invalid

        self.gates: List[object] = [LatencyGate(reward.timing_constraint_ms)]
        if self.settings.max_parameters is not None:
            self.gates.append(ParameterCountGate(self.settings.max_parameters))
        if self.settings.max_storage_mb is not None:
            self.gates.append(MemoryGate(self.settings.max_storage_mb))

        self._trainers: Dict[str, Trainer] = {}
        for fidelity in self.settings.fidelities:
            config = (
                training
                if fidelity.epochs is None
                else replace(training, epochs=fidelity.epochs)
            )
            self._trainers[fidelity.name] = Trainer(config)
        self._subsets: Dict[str, np.ndarray] = {}

    # -- stage lookup ------------------------------------------------------------
    @property
    def fidelities(self) -> Tuple[FidelityConfig, ...]:
        return self.settings.fidelities

    @property
    def final_fidelity(self) -> FidelityConfig:
        return self.settings.fidelities[-1]

    def fidelity(self, name: str) -> FidelityConfig:
        for candidate in self.settings.fidelities:
            if candidate.name == name:
                return candidate
        raise KeyError(
            f"unknown fidelity {name!r}; configured: "
            f"{[f.name for f in self.settings.fidelities]}"
        )

    def trainer(self, fidelity: FidelityConfig) -> Trainer:
        return self._trainers[fidelity.name]

    # -- gate stage --------------------------------------------------------------
    def price(self, descriptor: ArchitectureDescriptor) -> PricingReport:
        """Run every gate against a child's descriptor (no model, no training)."""
        latency = self.latency_estimator.network_latency_ms(descriptor)
        pricing = PricingReport(
            latency_ms=latency,
            storage_mb=descriptor.storage_mb(),
            num_parameters=descriptor.param_count(),
            gates=(),
        )
        outcomes = tuple(gate.check(pricing) for gate in self.gates)
        return replace(pricing, gates=outcomes)

    def rejection_result(self, pricing: PricingReport) -> "EvaluationResult":
        """The untrained ``INVALID_REWARD`` result of a gate-rejected child."""
        from repro.core.evaluator import EvaluationResult

        return EvaluationResult(
            latency_ms=pricing.latency_ms,
            storage_mb=pricing.storage_mb,
            num_parameters=pricing.num_parameters,
            trained=False,
            accuracy=0.0,
            unfairness=0.0,
            group_accuracy={},
            reward=INVALID_REWARD,
            meets_timing=pricing.meets_timing,
            meets_accuracy=False,
            train_seconds=0.0,
            fidelity=self.final_fidelity.name,
        )

    # -- fidelity + scoring stages -------------------------------------------------
    def _training_data(self, fidelity: FidelityConfig) -> Tuple[np.ndarray, np.ndarray]:
        """The (images, labels) arrays this fidelity trains on."""
        if fidelity.data_fraction >= 1.0:
            return self.train_dataset.images, self.train_dataset.labels
        if fidelity.name not in self._subsets:
            total = len(self.train_dataset)
            count = max(1, int(round(fidelity.data_fraction * total)))
            order = new_rng(fidelity.subset_seed).permutation(total)[:count]
            # Sorted so the subset preserves the split's sample order: the
            # trainer's own shuffling then behaves like on a smaller split.
            self._subsets[fidelity.name] = np.sort(order)
        indices = self._subsets[fidelity.name]
        return self.train_dataset.images[indices], self.train_dataset.labels[indices]

    def train_and_score(
        self,
        child: ChildArchitecture,
        fidelity: Optional[FidelityConfig] = None,
        pricing: Optional[PricingReport] = None,
        restore_from: Optional[Dict[str, np.ndarray]] = None,
    ) -> "EvaluationResult":
        """Train one child at ``fidelity`` and score it (accuracy, unfairness, Eq. 1).

        ``restore_from`` resets the child's weights first, so a promoted child
        trains its next stage from the same initial weights a single-stage
        evaluation would have used instead of fine-tuning the proxy result.
        """
        from repro.core.evaluator import EvaluationResult

        fidelity = fidelity or self.final_fidelity
        pricing = pricing or self.price(child.descriptor)
        if restore_from is not None:
            restore_weights(child.model, restore_from)

        trainer = self._trainers[fidelity.name]
        images, labels = self._training_data(fidelity)
        start = time.perf_counter()
        trainer.fit(child.model, images, labels)
        train_seconds = time.perf_counter() - start

        report: FairnessReport = evaluate_fairness(
            child.model, self.validation_dataset, trainer
        )
        reward = compute_reward(
            accuracy=report.overall_accuracy,
            unfairness=report.unfairness,
            latency_ms=pricing.latency_ms,
            config=self.reward,
        )
        if not pricing.passed:
            # A failed gate always invalidates the child; with bypass off the
            # child still trains (matching the seed evaluator's behaviour for
            # the latency constraint) but cannot out-score the penalty.
            reward = INVALID_REWARD
        return EvaluationResult(
            latency_ms=pricing.latency_ms,
            storage_mb=pricing.storage_mb,
            num_parameters=pricing.num_parameters,
            trained=True,
            accuracy=report.overall_accuracy,
            unfairness=report.unfairness,
            group_accuracy=dict(report.group_accuracy),
            reward=reward,
            meets_timing=pricing.meets_timing,
            meets_accuracy=report.overall_accuracy >= self.reward.accuracy_constraint,
            train_seconds=train_seconds,
            fidelity=fidelity.name,
        )

    # -- the single-child path (gates, then full fidelity) -------------------------
    def evaluate(self, child: ChildArchitecture) -> "EvaluationResult":
        """Price and (conditionally) train one child at full fidelity.

        This is the seed evaluator's exact contract: promotion through proxy
        stages is wave-relative and therefore driven by the engine, not here.
        """
        pricing = self.price(child.descriptor)
        if not pricing.passed and self.bypass_invalid:
            return self.rejection_result(pricing)
        return self.train_and_score(child, self.final_fidelity, pricing)
