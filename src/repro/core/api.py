"""Legacy convenience entry points (deprecated shims over the run API).

The recommended interface is the declarative one in :mod:`repro.api`::

    import repro

    spec = repro.RunSpec(search=repro.SearchParams(episodes=20))
    report = repro.run(spec)

The three ``run_*_search`` functions below predate it; they now construct a
:class:`~repro.api.spec.RunSpec` and delegate to :func:`repro.api.run.run`,
emitting a :class:`DeprecationWarning`.  They keep their exact historical
behaviour (same knobs, same defaults, same results) so existing callers
migrate on their own schedule.  ``default_design_spec`` and
``prepare_dataset`` are not deprecated -- they remain the one-line helpers
for building the paper's default design spec and dataset splits.
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING, Optional, Tuple

from repro.core.fahana import FaHaNaResult
from repro.data.dataset import DatasetSplits, GroupedDataset, stratified_split
from repro.data.dermatology import DermatologyConfig, DermatologyGenerator
from repro.hardware.constraints import DesignSpec, HardwareSpec, SoftwareSpec
from repro.hardware.device import RASPBERRY_PI_4, DeviceProfile

if TYPE_CHECKING:
    from repro.engine.engine import EngineConfig, SearchEngine

# Sentinel distinguishing "not passed" from an explicit default value, so a
# conflicting EngineConfig + shortcut kwarg combination can be rejected.
_UNSET = object()


def default_design_spec(
    device: DeviceProfile = RASPBERRY_PI_4,
    timing_constraint_ms: float = 1500.0,
    accuracy_constraint: float = 0.0,
) -> DesignSpec:
    """The paper's default specification: Raspberry Pi with TC = 1500 ms."""
    return DesignSpec(
        hardware=HardwareSpec(device=device, timing_constraint_ms=timing_constraint_ms),
        software=SoftwareSpec(accuracy_constraint=accuracy_constraint),
    )


def prepare_dataset(
    config: Optional[DermatologyConfig] = None, seed: int = 0
) -> DatasetSplits:
    """Generate the synthetic dermatology dataset and split it 60/20/20."""
    dataset = DermatologyGenerator(config).generate()
    return stratified_split(dataset, rng=seed)


def _warn_deprecated(name: str) -> None:
    warnings.warn(
        f"{name}() is deprecated; build a repro.api.RunSpec and call "
        "repro.run(spec) instead (see the README's 'Declarative runs' section)",
        DeprecationWarning,
        stacklevel=3,
    )


def run_fahana_search(
    train_dataset: GroupedDataset,
    validation_dataset: GroupedDataset,
    design_spec: Optional[DesignSpec] = None,
    episodes: int = 20,
    backbone: str = "MobileNetV2",
    gamma: float = 0.5,
    width_multiplier: float = 0.35,
    child_epochs: int = 5,
    pretrain_epochs: int = 5,
    max_searchable: Optional[int] = None,
    alpha: float = 1.0,
    beta: float = 1.0,
    seed: int = 0,
    engine: Optional["EngineConfig"] = None,
) -> FaHaNaResult:
    """Deprecated: run a FaHaNa search with sensible defaults.

    Equivalent to ``repro.run(RunSpec(strategy="fahana", search=...))`` with
    the datasets injected; returns the bare :class:`FaHaNaResult`.
    """
    _warn_deprecated("run_fahana_search")
    from repro.api.run import run as api_run
    from repro.api.spec import RunSpec, SearchParams

    spec = RunSpec(
        strategy="fahana",
        search=SearchParams(
            episodes=episodes,
            backbone=backbone,
            gamma=gamma,
            width_multiplier=width_multiplier,
            child_epochs=child_epochs,
            pretrain_epochs=pretrain_epochs,
            max_searchable=max_searchable,
            alpha=alpha,
            beta=beta,
            seed=seed,
        ),
    )
    report = api_run(
        spec,
        engine=engine,
        train_dataset=train_dataset,
        validation_dataset=validation_dataset,
        design_spec=design_spec or default_design_spec(),
    )
    return report.result


def run_engine_search(
    train_dataset: GroupedDataset,
    validation_dataset: GroupedDataset,
    design_spec: Optional[DesignSpec] = None,
    episodes: int = 20,
    backend: str = _UNSET,
    num_workers: int = _UNSET,
    batch_episodes: Optional[int] = _UNSET,
    use_cache: bool = _UNSET,
    run_dir: Optional[str] = _UNSET,
    resume: bool = False,
    checkpoint_every: int = _UNSET,
    engine: Optional["EngineConfig"] = None,
    **search_kwargs,
) -> Tuple[FaHaNaResult, "SearchEngine"]:
    """Deprecated: run a FaHaNa search on an explicitly configured engine.

    Returns ``(result, engine)`` so callers can inspect execution statistics.
    Pass *either* a full :class:`EngineConfig` as ``engine`` *or* the
    individual ``backend``/``num_workers``/... shortcuts -- combining the two
    raises a :class:`ValueError` (shortcut kwargs used to be silently
    ignored in that case).  Extra keyword arguments map onto
    :class:`~repro.api.spec.SearchParams` -- the same knobs and defaults as
    :func:`run_fahana_search`.  ``resume=True`` continues from the
    checkpoint in the run directory.
    """
    _warn_deprecated("run_engine_search")
    from repro.api.run import run as api_run
    from repro.api.spec import RunSpec, SearchParams
    from repro.engine.engine import EngineConfig

    shortcuts = {
        "backend": backend,
        "num_workers": num_workers,
        "batch_episodes": batch_episodes,
        "use_cache": use_cache,
        "run_dir": run_dir,
        "checkpoint_every": checkpoint_every,
    }
    explicit = sorted(name for name, value in shortcuts.items() if value is not _UNSET)
    if engine is not None and explicit:
        raise ValueError(
            "conflicting engine configuration: a full EngineConfig was passed "
            f"as 'engine' together with the shortcut kwarg(s) {explicit}; "
            "set those fields on the EngineConfig (or drop it) instead"
        )
    engine_config = engine or EngineConfig(
        backend=backend if backend is not _UNSET else "serial",
        num_workers=num_workers if num_workers is not _UNSET else 2,
        batch_episodes=batch_episodes if batch_episodes is not _UNSET else None,
        use_cache=use_cache if use_cache is not _UNSET else True,
        run_dir=run_dir if run_dir is not _UNSET else None,
        checkpoint_every=checkpoint_every if checkpoint_every is not _UNSET else 0,
    )
    search_kwargs.setdefault("policy_batch", engine_config.batch_episodes or 1)
    spec = RunSpec(
        strategy="fahana",
        search=SearchParams(episodes=episodes, **search_kwargs),
    )
    report = api_run(
        spec,
        engine=engine_config,
        resume=resume,
        train_dataset=train_dataset,
        validation_dataset=validation_dataset,
        design_spec=design_spec or default_design_spec(),
    )
    return report.result, report.engine


def run_monas_search(
    train_dataset: GroupedDataset,
    validation_dataset: GroupedDataset,
    design_spec: Optional[DesignSpec] = None,
    episodes: int = 20,
    backbone: str = "MobileNetV2",
    width_multiplier: float = 0.35,
    child_epochs: int = 5,
    alpha: float = 1.0,
    beta: float = 1.0,
    seed: int = 0,
) -> FaHaNaResult:
    """Deprecated: run the MONAS baseline (no freezing, no latency bypass)."""
    _warn_deprecated("run_monas_search")
    from repro.api.run import run as api_run
    from repro.api.spec import RunSpec, SearchParams

    spec = RunSpec(
        strategy="monas",
        search=SearchParams(
            episodes=episodes,
            backbone=backbone,
            width_multiplier=width_multiplier,
            child_epochs=child_epochs,
            alpha=alpha,
            beta=beta,
            seed=seed,
        ),
    )
    report = api_run(
        spec,
        train_dataset=train_dataset,
        validation_dataset=validation_dataset,
        design_spec=design_spec or default_design_spec(),
    )
    return report.result
