"""High-level convenience entry points.

These wrap the full pipeline (dataset -> splits -> search -> result) behind
single function calls; the example scripts and the benchmark harness use
them, and they are the recommended starting point for library users.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, Optional, Tuple

from repro.core.fahana import FaHaNaConfig, FaHaNaResult, FaHaNaSearch
from repro.core.monas import MonasConfig, MonasSearch
from repro.core.producer import ProducerConfig
from repro.data.dataset import DatasetSplits, GroupedDataset, stratified_split
from repro.data.dermatology import DermatologyConfig, DermatologyGenerator
from repro.hardware.constraints import DesignSpec, HardwareSpec, SoftwareSpec
from repro.hardware.device import RASPBERRY_PI_4, DeviceProfile
from repro.nn.trainer import TrainingConfig

if TYPE_CHECKING:
    from repro.engine.engine import EngineConfig, SearchEngine


def default_design_spec(
    device: DeviceProfile = RASPBERRY_PI_4,
    timing_constraint_ms: float = 1500.0,
    accuracy_constraint: float = 0.0,
) -> DesignSpec:
    """The paper's default specification: Raspberry Pi with TC = 1500 ms."""
    return DesignSpec(
        hardware=HardwareSpec(device=device, timing_constraint_ms=timing_constraint_ms),
        software=SoftwareSpec(accuracy_constraint=accuracy_constraint),
    )


def prepare_dataset(
    config: Optional[DermatologyConfig] = None, seed: int = 0
) -> DatasetSplits:
    """Generate the synthetic dermatology dataset and split it 60/20/20."""
    dataset = DermatologyGenerator(config).generate()
    return stratified_split(dataset, rng=seed)


def _fahana_config(
    episodes: int = 20,
    backbone: str = "MobileNetV2",
    gamma: float = 0.5,
    width_multiplier: float = 0.35,
    child_epochs: int = 5,
    pretrain_epochs: int = 5,
    max_searchable: Optional[int] = None,
    alpha: float = 1.0,
    beta: float = 1.0,
    seed: int = 0,
    policy_batch: int = 1,
    engine: Optional["EngineConfig"] = None,
) -> FaHaNaConfig:
    """The one place the high-level search defaults are defined."""
    from repro.core.policy import PolicyGradientConfig

    return FaHaNaConfig(
        episodes=episodes,
        alpha=alpha,
        beta=beta,
        seed=seed,
        producer=ProducerConfig(
            backbone=backbone,
            freeze=True,
            gamma=gamma,
            pretrain_epochs=pretrain_epochs,
            width_multiplier=width_multiplier,
            max_searchable=max_searchable,
        ),
        policy=PolicyGradientConfig(batch_episodes=policy_batch),
        child_training=TrainingConfig(epochs=child_epochs, seed=seed),
        engine=engine,
    )


def run_fahana_search(
    train_dataset: GroupedDataset,
    validation_dataset: GroupedDataset,
    design_spec: Optional[DesignSpec] = None,
    episodes: int = 20,
    backbone: str = "MobileNetV2",
    gamma: float = 0.5,
    width_multiplier: float = 0.35,
    child_epochs: int = 5,
    pretrain_epochs: int = 5,
    max_searchable: Optional[int] = None,
    alpha: float = 1.0,
    beta: float = 1.0,
    seed: int = 0,
    engine: Optional["EngineConfig"] = None,
) -> FaHaNaResult:
    """Run a FaHaNa search with sensible defaults and return its result.

    ``engine`` selects the execution layer (backend, evaluation cache,
    checkpointing); None uses the process-wide default and ultimately the
    plain serial engine, which matches the original sequential loop.
    """
    config = _fahana_config(
        episodes=episodes,
        backbone=backbone,
        gamma=gamma,
        width_multiplier=width_multiplier,
        child_epochs=child_epochs,
        pretrain_epochs=pretrain_epochs,
        max_searchable=max_searchable,
        alpha=alpha,
        beta=beta,
        seed=seed,
        engine=engine,
    )
    search = FaHaNaSearch(
        train_dataset, validation_dataset, design_spec or default_design_spec(), config
    )
    return search.run()


def run_engine_search(
    train_dataset: GroupedDataset,
    validation_dataset: GroupedDataset,
    design_spec: Optional[DesignSpec] = None,
    episodes: int = 20,
    backend: str = "serial",
    num_workers: int = 2,
    batch_episodes: Optional[int] = None,
    use_cache: bool = True,
    run_dir: Optional[str] = None,
    resume: bool = False,
    checkpoint_every: int = 0,
    engine: Optional["EngineConfig"] = None,
    **search_kwargs,
) -> Tuple[FaHaNaResult, "SearchEngine"]:
    """Run a FaHaNa search on an explicitly configured engine.

    Returns ``(result, engine)`` so callers can inspect execution statistics
    (cache hit rate, evaluations actually run, checkpoints written).  A full
    :class:`EngineConfig` passed as ``engine`` takes precedence over the
    individual ``backend``/``use_cache``/... shortcuts.  Extra keyword
    arguments are forwarded to :func:`_fahana_config` -- the same knobs and
    defaults as :func:`run_fahana_search` (``backbone``, ``child_epochs``,
    ``seed``, ...).  ``resume=True`` continues from the checkpoint in the
    run directory.
    """
    from repro.engine.engine import EngineConfig, SearchEngine

    engine_config = engine or EngineConfig(
        backend=backend,
        num_workers=num_workers,
        batch_episodes=batch_episodes,
        use_cache=use_cache,
        run_dir=run_dir,
        checkpoint_every=checkpoint_every,
    )
    search_kwargs.setdefault(
        "policy_batch", engine_config.batch_episodes or 1
    )
    config = _fahana_config(episodes=episodes, **search_kwargs)
    search = FaHaNaSearch(
        train_dataset, validation_dataset, design_spec or default_design_spec(), config
    )
    search_engine = SearchEngine(search, engine_config)
    if resume:
        search_engine.restore()
    return search_engine.run(), search_engine


def run_monas_search(
    train_dataset: GroupedDataset,
    validation_dataset: GroupedDataset,
    design_spec: Optional[DesignSpec] = None,
    episodes: int = 20,
    backbone: str = "MobileNetV2",
    width_multiplier: float = 0.35,
    child_epochs: int = 5,
    alpha: float = 1.0,
    beta: float = 1.0,
    seed: int = 0,
) -> FaHaNaResult:
    """Run the MONAS baseline (no freezing, no latency bypass)."""
    config = MonasConfig(
        episodes=episodes,
        alpha=alpha,
        beta=beta,
        seed=seed,
        producer=ProducerConfig(
            backbone=backbone,
            freeze=False,
            pretrain_epochs=0,
            width_multiplier=width_multiplier,
        ),
        child_training=TrainingConfig(epochs=child_epochs, seed=seed),
    )
    search = MonasSearch(
        train_dataset, validation_dataset, design_spec or default_design_spec(), config
    )
    return search.run()
