"""Nested span tracing over the engine's typed event stream.

A :class:`Tracer` turns lexically scoped ``with tracer.span(...)`` blocks
into ``span`` :class:`~repro.engine.events.EngineEvent` objects: one event
per *completed* span, carrying the wall-clock start (``ts``), the measured
duration (``dur``, from a monotonic clock), a ``span_id``/``parent_id`` pair
(nesting is tracked per thread) and a ``tid`` naming the timeline the span
ran on.  Emitting only at span end keeps the event volume at one line per
span and makes every event self-contained -- a tail can render a span
without pairing begin/end lines.

Workers measure their own training time (possibly in another process), so
spans can also be recorded *post hoc* with :meth:`Tracer.record`: the engine
feeds it the start/duration a worker shipped back, labelled with the
worker's identity, which is what makes a trace show the wave's actual
parallelism.

Spans ride the existing telemetry schema, so they are persisted per run in
``telemetry.jsonl`` and served by every event transport unchanged;
:mod:`repro.obs.trace_export` converts them to Chrome ``trace_event`` JSON.
"""

from __future__ import annotations

import itertools
import threading
import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, Optional

from repro.obs import metrics as _metrics

# A sink receives (payload, episode) for each completed span.
SpanSink = Callable[[Dict[str, Any], Optional[int]], None]


class Tracer:
    """Emits completed spans to a sink (the engine wires it to its event bus)."""

    def __init__(self, sink: SpanSink, tid: str = "engine"):
        self._sink = sink
        self.tid = tid
        self._ids = itertools.count(1)
        self._local = threading.local()

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @property
    def current_span_id(self) -> int:
        """The innermost open span's id on this thread (0 outside any span)."""
        stack = self._stack()
        return stack[-1] if stack else 0

    @contextmanager
    def span(
        self,
        name: str,
        cat: str = "engine",
        episode: Optional[int] = None,
        **attrs: Any,
    ) -> Iterator[int]:
        """Measure the enclosed block as one span; yields the span id."""
        if not _metrics.enabled():
            yield 0
            return
        span_id = next(self._ids)
        stack = self._stack()
        parent_id = stack[-1] if stack else 0
        stack.append(span_id)
        wall_start = time.time()
        start = time.perf_counter()
        try:
            yield span_id
        finally:
            duration = time.perf_counter() - start
            stack.pop()
            self._emit(
                name, cat, wall_start, duration, self.tid,
                span_id, parent_id, episode, attrs,
            )

    def record(
        self,
        name: str,
        *,
        start: float,
        duration: float,
        cat: str = "worker",
        tid: Optional[str] = None,
        episode: Optional[int] = None,
        parent_id: Optional[int] = None,
        **attrs: Any,
    ) -> int:
        """Record a span measured elsewhere (e.g. by a worker process).

        ``start`` is a wall-clock (``time.time``) timestamp; ``parent_id``
        defaults to the caller's innermost open span, which is how worker
        training spans nest under the engine's stage span.
        """
        if not _metrics.enabled():
            return 0
        span_id = next(self._ids)
        if parent_id is None:
            parent_id = self.current_span_id
        self._emit(
            name, cat, start, duration, tid or self.tid,
            span_id, parent_id, episode, attrs,
        )
        return span_id

    def _emit(
        self,
        name: str,
        cat: str,
        wall_start: float,
        duration: float,
        tid: str,
        span_id: int,
        parent_id: int,
        episode: Optional[int],
        attrs: Dict[str, Any],
    ) -> None:
        payload = {
            "name": name,
            "cat": cat,
            "ts": wall_start,
            "dur": duration,
            "tid": tid,
            "span_id": span_id,
            "parent_id": parent_id,
        }
        if attrs:
            payload.update(attrs)
        self._sink(payload, episode)


class NullTracer(Tracer):
    """A tracer that drops everything (engines constructed without a bus)."""

    def __init__(self) -> None:
        super().__init__(lambda payload, episode: None)
