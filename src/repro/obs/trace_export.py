"""Export a run's span events as Chrome ``trace_event`` JSON.

``repro-search trace <run_dir>`` reads the run's ``telemetry.jsonl``, keeps
the ``span`` events the tracer emitted and writes the Chrome trace-event
format (the JSON array flavour wrapped in ``{"traceEvents": [...]}``), so a
finished run opens directly in ``chrome://tracing`` or
https://ui.perfetto.dev.  Every span becomes one complete ("X") event;
worker timelines get stable integer ``tid``s with ``thread_name`` metadata
so the engine thread and each pool worker render as separate tracks.

Timestamps are microseconds relative to the earliest span, which keeps the
numbers small and the trace viewer's origin at the run start.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterable, List, Optional

from repro.engine.events import SPAN, EngineEvent
from repro.service.events import tail_telemetry

TRACE_JSON = "trace.json"

# Keys of a span payload that map to dedicated trace-event fields; everything
# else a span carries becomes a viewer-visible "args" entry.
_SPAN_FIELDS = ("name", "cat", "ts", "dur", "tid", "span_id", "parent_id")


def load_span_events(telemetry_path: str) -> List[EngineEvent]:
    """The ``span`` events of one telemetry stream, oldest first."""
    return [
        event
        for event in tail_telemetry(telemetry_path, follow=False)
        if event.kind == SPAN
    ]


def chrome_trace(events: Iterable[EngineEvent], pid: int = 1) -> Dict[str, Any]:
    """Convert span events into a Chrome trace-event JSON document."""
    spans = [event for event in events if event.kind == SPAN]
    origin = min(
        (float(event.payload.get("ts", 0.0)) for event in spans), default=0.0
    )
    tids: Dict[str, int] = {}
    trace_events: List[Dict[str, Any]] = []
    for event in spans:
        payload = event.payload
        tid_name = str(payload.get("tid", "engine"))
        tid = tids.setdefault(tid_name, len(tids) + 1)
        args: Dict[str, Any] = {
            key: value
            for key, value in payload.items()
            if key not in _SPAN_FIELDS and value is not None
        }
        if event.episode is not None:
            args["episode"] = event.episode
        if payload.get("parent_id"):
            args["parent_span"] = payload["parent_id"]
        trace_events.append(
            {
                "name": str(payload.get("name", "span")),
                "cat": str(payload.get("cat", "engine")),
                "ph": "X",
                "pid": pid,
                "tid": tid,
                "ts": round((float(payload.get("ts", origin)) - origin) * 1e6, 3),
                "dur": round(float(payload.get("dur", 0.0)) * 1e6, 3),
                "args": args,
            }
        )
    metadata = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": pid,
            "tid": tid,
            "args": {"name": tid_name},
        }
        for tid_name, tid in sorted(tids.items(), key=lambda item: item[1])
    ]
    return {"traceEvents": metadata + trace_events, "displayTimeUnit": "ms"}


def export_chrome_trace(
    run_dir: str, out_path: Optional[str] = None
) -> Dict[str, Any]:
    """Write ``<run_dir>/trace.json`` (or ``out_path``); returns a summary.

    Raises ``FileNotFoundError`` when the run directory has no telemetry
    stream and ``ValueError`` when the stream holds no spans (a run produced
    by a pre-observability engine).
    """
    telemetry = os.path.join(run_dir, "telemetry.jsonl")
    if not os.path.exists(telemetry):
        raise FileNotFoundError(f"no telemetry stream at {telemetry!r}")
    spans = load_span_events(telemetry)
    if not spans:
        raise ValueError(
            f"{telemetry!r} holds no span events (run predates the tracer?)"
        )
    document = chrome_trace(spans)
    path = out_path or os.path.join(run_dir, TRACE_JSON)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, sort_keys=True)
    return {
        "path": path,
        "spans": len(spans),
        "threads": sum(
            1 for entry in document["traceEvents"] if entry.get("ph") == "M"
        ),
    }
