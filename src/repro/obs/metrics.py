"""Process-local metrics: counters, gauges, histograms, Prometheus exposition.

The observability layer's one rule is that it *observes* -- instrumentation
never joins a cache key, never draws from an RNG stream and never changes a
result.  Everything here is therefore plain bookkeeping: a
:class:`MetricsRegistry` owns named metric families, each family owns one
child per label combination, and children mutate a float (or a bucket-count
list) under a small lock.  Two read paths serve every consumer:

* :meth:`MetricsRegistry.render_prometheus` -- the text exposition format
  served at the daemon's ``GET /metrics`` endpoint (scrapeable by
  Prometheus, ``repro-search top`` and plain ``curl``),
* :meth:`MetricsRegistry.snapshot` -- a JSON-encodable dict, which is what
  ``RunReport.metrics`` archives per run.

Registries chain: a registry constructed with a ``parent`` mirrors every
write into the same-named metric of the parent, so a per-run registry gives
the run its own snapshot while the process-global registry (see
:func:`get_registry`) accumulates the fleet view the daemon exposes.

:func:`set_enabled` is the kill switch the overhead benchmark compares
against: with instrumentation disabled every write is a single flag check.
"""

from __future__ import annotations

import bisect
import math
import re
import threading
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

# Latency-shaped default bucket boundaries (seconds); +Inf is implicit.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

_enabled = True


def set_enabled(value: bool) -> bool:
    """Globally enable/disable instrumentation writes; returns the old flag."""
    global _enabled
    previous = _enabled
    _enabled = bool(value)  # repro-lint: disable=THR001 -- kill-switch bool flip, atomic under the GIL; readers tolerate either value
    return previous


def enabled() -> bool:
    """True while instrumentation writes are recorded."""
    return _enabled


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _label_suffix(labels: Dict[str, str], extra: str = "") -> str:
    parts = [f'{key}="{_escape_label(value)}"' for key, value in labels.items()]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


class _Child:
    """Shared plumbing of one (metric, label-values) time series."""

    __slots__ = ("_lock", "_mirror")

    def __init__(self, mirror: Optional["_Child"]):
        self._lock = threading.Lock()
        self._mirror = mirror


class CounterValue(_Child):
    """A monotonically increasing float."""

    __slots__ = ("_value",)

    def __init__(self, mirror: Optional["CounterValue"] = None):
        super().__init__(mirror)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if not _enabled:
            return
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        with self._lock:
            self._value += amount
        if self._mirror is not None:
            self._mirror.inc(amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class GaugeValue(_Child):
    """A float that can go up and down."""

    __slots__ = ("_value",)

    def __init__(self, mirror: Optional["GaugeValue"] = None):
        super().__init__(mirror)
        self._value = 0.0

    def set(self, value: float) -> None:
        if not _enabled:
            return
        with self._lock:
            self._value = float(value)
        if self._mirror is not None:
            self._mirror.set(value)

    def inc(self, amount: float = 1.0) -> None:
        if not _enabled:
            return
        with self._lock:
            self._value += amount
        if self._mirror is not None:
            self._mirror.inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class HistogramValue(_Child):
    """Cumulative-bucket histogram over fixed boundaries."""

    __slots__ = ("bounds", "_counts", "_sum", "_count")

    def __init__(
        self,
        bounds: Sequence[float],
        mirror: Optional["HistogramValue"] = None,
    ):
        super().__init__(mirror)
        self.bounds = tuple(bounds)
        self._counts = [0] * (len(self.bounds) + 1)  # last slot is +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        if not _enabled:
            return
        index = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1
        if self._mirror is not None:
            self._mirror.observe(value)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def buckets(self) -> Dict[str, int]:
        """Cumulative counts keyed by upper bound (``le``), +Inf last."""
        with self._lock:
            counts = list(self._counts)
        cumulative: Dict[str, int] = {}
        running = 0
        for bound, count in zip(self.bounds, counts):
            running += count
            cumulative[_format_value(bound)] = running
        cumulative["+Inf"] = running + counts[-1]
        return cumulative

    def quantile(self, q: float) -> float:
        """Approximate the ``q``-quantile from the bucket boundaries.

        Returns the upper bound of the bucket the quantile falls in (the
        usual Prometheus ``histogram_quantile`` coarsening); NaN when empty.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        with self._lock:
            counts = list(self._counts)
            total = self._count
        if total == 0:
            return float("nan")
        target = q * total
        running = 0
        for bound, count in zip(self.bounds, counts):
            running += count
            if running >= target:
                return bound
        return math.inf


class Metric:
    """One named metric family: children addressed by label values."""

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help_text: str = "",
        labelnames: Sequence[str] = (),
        mirror: Optional["Metric"] = None,
    ):
        self.name = name
        self.help = help_text
        self.labelnames = tuple(labelnames)
        self._mirror = mirror
        self._children: Dict[Tuple[str, ...], Any] = {}
        self._lock = threading.Lock()

    def _make_child(self, mirror_child: Optional[Any]) -> Any:
        raise NotImplementedError

    def labels(self, **labelvalues: Any) -> Any:
        key = tuple(str(labelvalues[name]) for name in self.labelnames)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    mirror_child = (
                        self._mirror.labels(**labelvalues)
                        if self._mirror is not None
                        else None
                    )
                    child = self._make_child(mirror_child)
                    self._children[key] = child
        return child

    def samples(self) -> List[Tuple[Dict[str, str], Any]]:
        """(labels dict, child) pairs, insertion-ordered."""
        with self._lock:
            items = list(self._children.items())
        return [(dict(zip(self.labelnames, key)), child) for key, child in items]

    # Convenience pass-throughs for label-free metrics.
    def _default(self) -> Any:
        return self.labels()


class Counter(Metric):
    kind = "counter"

    def _make_child(self, mirror_child):
        return CounterValue(mirror_child)

    def inc(self, amount: float = 1.0) -> None:
        self._default().inc(amount)

    @property
    def value(self) -> float:
        return self._default().value


class Gauge(Metric):
    kind = "gauge"

    def _make_child(self, mirror_child):
        return GaugeValue(mirror_child)

    def set(self, value: float) -> None:
        self._default().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._default().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default().dec(amount)

    @property
    def value(self) -> float:
        return self._default().value


class Histogram(Metric):
    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        mirror: Optional["Histogram"] = None,
    ):
        super().__init__(name, help_text, labelnames, mirror)
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("histogram buckets must be a sorted non-empty sequence")
        self.bucket_bounds = tuple(float(bound) for bound in buckets)

    def _make_child(self, mirror_child):
        return HistogramValue(self.bucket_bounds, mirror_child)

    def observe(self, value: float) -> None:
        self._default().observe(value)


# A callback returns either one float or labelled samples.
CallbackResult = Any  # float | Iterable[Tuple[Dict[str, str], float]]


class MetricsRegistry:
    """Owns metric families; see the module docstring for the read paths."""

    def __init__(self, parent: Optional["MetricsRegistry"] = None):
        self.parent = parent
        self._metrics: Dict[str, Metric] = {}
        self._callbacks: Dict[str, Tuple[str, Callable[[], CallbackResult]]] = {}
        self._lock = threading.Lock()

    # -- creation -----------------------------------------------------------------
    def _get_or_create(self, cls, name: str, help_text: str, **kwargs) -> Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind}"
                    )
                return existing
        # The parent mirror is created outside our lock (the parent has its
        # own); a race re-checks under the lock before inserting.
        mirror = None
        if self.parent is not None:
            mirror = self.parent._get_or_create(cls, name, help_text, **kwargs)
        metric = cls(name, help_text, mirror=mirror, **kwargs)
        with self._lock:
            return self._metrics.setdefault(name, metric)

    def counter(
        self, name: str, help_text: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._get_or_create(Counter, name, help_text, labelnames=labelnames)

    def gauge(
        self, name: str, help_text: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help_text, labelnames=labelnames)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help_text, labelnames=labelnames, buckets=buckets
        )

    def register_callback(
        self, name: str, help_text: str, callback: Callable[[], CallbackResult]
    ) -> None:
        """Register a gauge evaluated at scrape time (replaces a same-named one).

        Replacement (rather than erroring) keeps re-created components --
        e.g. one executor per test -- from poisoning the process registry.
        """
        with self._lock:
            self._callbacks[name] = (help_text, callback)

    def unregister_callback(self, name: str) -> None:
        with self._lock:
            self._callbacks.pop(name, None)

    # -- reading ------------------------------------------------------------------
    def _callback_samples(self) -> List[Tuple[str, str, Dict[str, str], float]]:
        """(name, help, labels, value) rows; a failing callback contributes none."""
        with self._lock:
            callbacks = list(self._callbacks.items())
        rows: List[Tuple[str, str, Dict[str, str], float]] = []
        for name, (help_text, callback) in callbacks:
            try:
                result = callback()
            except Exception:
                continue  # observability never raises into the scrape path
            if isinstance(result, (int, float)):
                rows.append((name, help_text, {}, float(result)))
            else:
                for labels, value in result:
                    rows.append((name, help_text, dict(labels), float(value)))
        return rows

    def snapshot(self) -> Dict[str, Any]:
        """JSON-encodable view of every metric (callbacks included)."""
        with self._lock:
            metrics = list(self._metrics.values())
        payload: Dict[str, Any] = {}
        for metric in metrics:
            samples = []
            for labels, child in metric.samples():
                if isinstance(child, HistogramValue):
                    samples.append(
                        {
                            "labels": labels,
                            "buckets": child.buckets(),
                            "sum": child.sum,
                            "count": child.count,
                        }
                    )
                else:
                    samples.append({"labels": labels, "value": child.value})
            payload[metric.name] = {
                "type": metric.kind,
                "help": metric.help,
                "samples": samples,
            }
        for name, help_text, labels, value in self._callback_samples():
            entry = payload.setdefault(
                name, {"type": "gauge", "help": help_text, "samples": []}
            )
            entry["samples"].append({"labels": labels, "value": value})
        return payload

    def render_prometheus(self) -> str:
        """The Prometheus text exposition format (version 0.0.4)."""
        with self._lock:
            metrics = list(self._metrics.values())
        lines: List[str] = []
        for metric in metrics:
            lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            for labels, child in metric.samples():
                if isinstance(child, HistogramValue):
                    for bound, count in child.buckets().items():
                        suffix = _label_suffix(labels, extra=f'le="{bound}"')
                        lines.append(f"{metric.name}_bucket{suffix} {count}")
                    base = _label_suffix(labels)
                    lines.append(
                        f"{metric.name}_sum{base} {_format_value(child.sum)}"
                    )
                    lines.append(f"{metric.name}_count{base} {child.count}")
                else:
                    lines.append(
                        f"{metric.name}{_label_suffix(labels)} "
                        f"{_format_value(child.value)}"
                    )
        for name, help_text, labels, value in self._callback_samples():
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name}{_label_suffix(labels)} {_format_value(value)}")
        return "\n".join(lines) + "\n"


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?\s+(?P<value>\S+)$"
)
_LABEL_RE = re.compile(r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:\\.|[^"\\])*)"')


def parse_prometheus_text(text: str) -> Dict[str, List[Dict[str, Any]]]:
    """Parse exposition text back into ``{name: [{"labels", "value"}]}``.

    Used by ``repro-search top`` (scraping a live daemon) and by the
    round-trip tests; histogram series keep their ``_bucket``/``_sum``/
    ``_count`` suffixed names.
    """
    samples: Dict[str, List[Dict[str, Any]]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            continue
        labels = {
            m.group("key"): m.group("value")
            .replace("\\n", "\n")
            .replace('\\"', '"')
            .replace("\\\\", "\\")
            for m in _LABEL_RE.finditer(match.group("labels") or "")
        }
        raw = match.group("value")
        try:
            value = float(raw.replace("+Inf", "inf").replace("-Inf", "-inf"))
        except ValueError:
            continue
        samples.setdefault(match.group("name"), []).append(
            {"labels": labels, "value": value}
        )
    return samples


# -- the process-global registry ------------------------------------------------------
_default_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global registry (the daemon's ``/metrics`` view)."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-global registry (tests); returns the previous one."""
    global _default_registry
    previous = _default_registry
    _default_registry = registry  # repro-lint: disable=THR001 -- test-only swap on the driving thread; single-name rebind is GIL-atomic
    return previous
