"""``repro.obs`` -- the observability layer: metrics, spans and profiling.

Three pieces, one rule (observability observes, it never steers):

* :mod:`repro.obs.metrics` -- process-local counters/gauges/histograms with
  Prometheus text exposition (the daemon's ``GET /metrics``) and
  JSON-encodable snapshots (``RunReport.metrics``).  Per-run registries
  mirror into the process-global one, so one instrumentation write serves
  both the per-run report and the fleet view.
* :mod:`repro.obs.tracing` -- nested spans over the episode lifecycle,
  emitted as ``span`` events on the existing typed event stream and
  persisted in ``telemetry.jsonl``.
* :mod:`repro.obs.trace_export` / :mod:`repro.obs.top` -- the consumers:
  Chrome ``trace_event`` export (``repro-search trace``) and the live
  terminal dashboard (``repro-search top``).

Instrumentation is default-on and cheap; :func:`set_enabled` is the global
kill switch the overhead benchmark (``benchmarks/bench_obs.py``) measures
against.  None of it touches ``cache_key()``, the context fingerprint or any
RNG stream -- an instrumented float64 run is bit-for-bit the seed run.
"""

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    enabled,
    get_registry,
    parse_prometheus_text,
    set_enabled,
    set_registry,
)
from repro.obs.tracing import NullTracer, Tracer

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullTracer",
    "Tracer",
    "enabled",
    "get_registry",
    "parse_prometheus_text",
    "set_enabled",
    "set_registry",
]
