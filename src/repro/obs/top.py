"""``repro-search top``: a live terminal view over a daemon's fleet.

One scrape cycle reads two endpoints of a ``repro-search serve`` daemon --
``GET /metrics`` (Prometheus text, parsed back into samples) and
``GET /runs`` (the registry's status rows) -- and renders them as a compact
dashboard: runs by state, worker-slot occupancy and queue depth, engine
throughput, cache hit rate, pool utilisation and per-run progress rows.
Pure functions do the formatting, so tests can drive :func:`render` on a
canned scrape without a terminal or a daemon.
"""

from __future__ import annotations

import sys
import time
import urllib.request
from typing import Any, Dict, List, Optional

from repro.obs.metrics import parse_prometheus_text

Samples = Dict[str, List[Dict[str, Any]]]

_CLEAR = "\x1b[2J\x1b[H"


def fetch_metrics(url: str, timeout: float = 10.0) -> Samples:
    """Scrape and parse ``<url>/metrics``."""
    with urllib.request.urlopen(
        f"{url.rstrip('/')}/metrics", timeout=timeout
    ) as response:
        return parse_prometheus_text(response.read().decode("utf-8"))


def sample_value(
    samples: Samples, name: str, labels: Optional[Dict[str, str]] = None
) -> Optional[float]:
    """The first sample of ``name`` whose labels include ``labels``."""
    wanted = labels or {}
    for sample in samples.get(name, ()):  # insertion order = exposition order
        if all(sample["labels"].get(k) == v for k, v in wanted.items()):
            return sample["value"]
    return None


def histogram_quantile(
    samples: Samples, name: str, q: float, labels: Optional[Dict[str, str]] = None
) -> Optional[float]:
    """Approximate quantile of an exposed histogram (bucket upper bound)."""
    wanted = labels or {}
    buckets = [
        (float(s["labels"]["le"].replace("+Inf", "inf")), s["value"])
        for s in samples.get(f"{name}_bucket", ())
        if all(s["labels"].get(k) == v for k, v in wanted.items())
    ]
    if not buckets:
        return None
    buckets.sort()
    total = buckets[-1][1]
    if total == 0:
        return None
    target = q * total
    for bound, cumulative in buckets:
        if cumulative >= target:
            return bound
    return buckets[-1][0]


def _fmt_seconds(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value == float("inf"):
        return ">60s"
    if value < 1.0:
        return f"{value * 1000:.0f}ms"
    return f"{value:.1f}s"


def _fmt_count(value: Optional[float]) -> str:
    return "-" if value is None else str(int(value))


def _state_counts(runs: List[Dict[str, Any]]) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for status in runs:
        counts[status.get("state", "?")] = counts.get(status.get("state", "?"), 0) + 1
    return counts


def _run_row(status: Dict[str, Any]) -> str:
    best = status.get("best_reward")
    done = status.get("episodes_done")
    return (
        f"  {status.get('run_id', '?'):32s} {status.get('state', '?'):9s} "
        f"{status.get('strategy') or '?':10s} "
        f"episodes={'-' if done is None else done}/{status.get('episodes', '-')} "
        f"best={'-' if best is None else format(best, '+.4f')}"
    )


def render(metrics: Samples, runs: List[Dict[str, Any]], url: str) -> str:
    """One dashboard frame as a multi-line string."""
    now = time.strftime("%Y-%m-%d %H:%M:%S")
    lines = [f"repro-search top -- {url}  ({now})"]

    states = _state_counts(runs)
    state_text = ", ".join(
        f"{states[state]} {state}"
        for state in ("running", "queued", "finished", "failed", "cancelled")
        if states.get(state)
    )
    busy = sample_value(metrics, "repro_service_slots_busy")
    slots = sample_value(metrics, "repro_service_worker_slots")
    depth = sample_value(metrics, "repro_service_queue_depth")
    lines.append(
        f"fleet: {len(runs)} runs ({state_text or 'none'}) | "
        f"slots {_fmt_count(busy)}/{_fmt_count(slots)} busy | "
        f"queue depth {_fmt_count(depth)}"
    )

    eps = sample_value(metrics, "repro_engine_episodes_per_second")
    trained = sample_value(
        metrics, "repro_engine_episodes_total", {"result": "trained"}
    )
    cached = sample_value(metrics, "repro_engine_episodes_total", {"result": "cached"})
    rejected = sample_value(
        metrics, "repro_engine_episodes_total", {"result": "rejected"}
    )
    episodes = sum(value or 0 for value in (trained, cached, rejected))
    lines.append(
        f"engine: {'-' if eps is None else format(eps, '.2f')} episodes/s | "
        f"wave p50 {_fmt_seconds(histogram_quantile(metrics, 'repro_engine_wave_seconds', 0.5))} "
        f"p90 {_fmt_seconds(histogram_quantile(metrics, 'repro_engine_wave_seconds', 0.9))} | "
        f"episodes {int(episodes)} "
        f"(trained {_fmt_count(trained)}, cached {_fmt_count(cached)}, "
        f"rejected {_fmt_count(rejected)})"
    )

    hits = sample_value(metrics, "repro_cache_lookups_total", {"result": "hit"}) or 0
    misses = (
        sample_value(metrics, "repro_cache_lookups_total", {"result": "miss"}) or 0
    )
    total = hits + misses
    rate = f"{hits / total:.1%}" if total else "-"
    lines.append(
        f"cache: hit rate {rate} ({int(hits)} hits / {int(misses)} misses) | "
        f"lookup p50 {_fmt_seconds(histogram_quantile(metrics, 'repro_cache_lookup_seconds', 0.5))}"
    )

    in_flight = sample_value(metrics, "repro_pool_in_flight")
    tasks = sample_value(metrics, "repro_pool_tasks_total")
    lines.append(
        f"pool: in-flight {_fmt_count(in_flight)} | tasks {_fmt_count(tasks)} | "
        f"task p50 {_fmt_seconds(histogram_quantile(metrics, 'repro_pool_task_seconds', 0.5))} | "
        f"queue wait p50 {_fmt_seconds(histogram_quantile(metrics, 'repro_pool_queue_wait_seconds', 0.5))}"
    )

    epochs = sample_value(metrics, "repro_trainer_epochs_total")
    samples_per_second = sample_value(metrics, "repro_trainer_samples_per_second")
    lines.append(
        f"trainer: epochs {_fmt_count(epochs)} | epoch p50 "
        f"{_fmt_seconds(histogram_quantile(metrics, 'repro_trainer_epoch_seconds', 0.5))} | "
        f"last {'-' if samples_per_second is None else format(samples_per_second, '.0f')} samples/s"
    )

    # The serving row only appears once a model has answered a predict.
    served = sum(
        sample["value"] for sample in metrics.get("repro_serving_requests_total", ())
    )
    if served:
        batches = sum(
            s["value"] for s in metrics.get("repro_serving_batches_total", ())
        )
        rejected = sum(
            s["value"] for s in metrics.get("repro_serving_rejected_total", ())
        )
        lines.append(
            f"serving: requests {int(served)} | batches {int(batches)} "
            f"({served / max(batches, 1):.1f} req/batch) | rejected {int(rejected)} | "
            f"request p50 {_fmt_seconds(histogram_quantile(metrics, 'repro_serving_request_seconds', 0.5))} "
            f"p99 {_fmt_seconds(histogram_quantile(metrics, 'repro_serving_request_seconds', 0.99))}"
        )

    lines.append("-" * 78)
    if runs:
        lines.extend(_run_row(status) for status in runs[-20:])
    else:
        lines.append("  (no runs)")
    return "\n".join(lines)


def run_top(
    url: str,
    interval: float = 2.0,
    iterations: Optional[int] = None,
    stream=None,
    clear: bool = True,
) -> int:
    """Scrape-and-render loop; ``iterations=None`` runs until interrupted."""
    from repro.service.remote import ServiceExecutor

    stream = stream or sys.stdout
    executor = ServiceExecutor(url)
    count = 0
    while True:
        metrics = fetch_metrics(url)
        runs = executor.list_runs()
        frame = render(metrics, runs, url)
        prefix = _CLEAR if (clear and iterations != 1) else ""
        print(f"{prefix}{frame}", file=stream, flush=True)
        count += 1
        if iterations is not None and count >= iterations:
            return 0
        try:
            time.sleep(interval)
        except KeyboardInterrupt:
            return 0
