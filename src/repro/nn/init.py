"""Weight initialisation schemes.

Every initialiser returns arrays in the dtype of the global precision policy
(:mod:`repro.nn.dtype`): the random draws themselves are always made in
float64 -- so a float32 model is the rounded image of the exact float64
initialisation, and RNG streams stay identical across precisions -- and then
cast once.
"""

from __future__ import annotations

import numpy as np

from repro.nn.dtype import get_default_dtype
from repro.utils.rng import SeedLike, new_rng


def he_normal(shape: tuple, fan_in: int, rng: SeedLike = None) -> np.ndarray:
    """Kaiming/He normal initialisation, appropriate for ReLU networks."""
    if fan_in <= 0:
        raise ValueError(f"fan_in must be positive, got {fan_in}")
    std = np.sqrt(2.0 / fan_in)
    values = new_rng(rng).normal(0.0, std, size=shape)
    return values.astype(get_default_dtype(), copy=False)


def xavier_uniform(shape: tuple, fan_in: int, fan_out: int, rng: SeedLike = None) -> np.ndarray:
    """Glorot/Xavier uniform initialisation."""
    if fan_in <= 0 or fan_out <= 0:
        raise ValueError("fan_in and fan_out must be positive")
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    values = new_rng(rng).uniform(-limit, limit, size=shape)
    return values.astype(get_default_dtype(), copy=False)


def zeros(shape: tuple) -> np.ndarray:
    """All-zeros initialisation (biases, batch-norm shift)."""
    return np.zeros(shape, dtype=get_default_dtype())


def ones(shape: tuple) -> np.ndarray:
    """All-ones initialisation (batch-norm scale)."""
    return np.ones(shape, dtype=get_default_dtype())
