"""Weight initialisation schemes."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import SeedLike, new_rng


def he_normal(shape: tuple, fan_in: int, rng: SeedLike = None) -> np.ndarray:
    """Kaiming/He normal initialisation, appropriate for ReLU networks."""
    if fan_in <= 0:
        raise ValueError(f"fan_in must be positive, got {fan_in}")
    std = np.sqrt(2.0 / fan_in)
    return new_rng(rng).normal(0.0, std, size=shape)


def xavier_uniform(shape: tuple, fan_in: int, fan_out: int, rng: SeedLike = None) -> np.ndarray:
    """Glorot/Xavier uniform initialisation."""
    if fan_in <= 0 or fan_out <= 0:
        raise ValueError("fan_in and fan_out must be positive")
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return new_rng(rng).uniform(-limit, limit, size=shape)


def zeros(shape: tuple) -> np.ndarray:
    """All-zeros initialisation (biases, batch-norm shift)."""
    return np.zeros(shape, dtype=np.float64)


def ones(shape: tuple) -> np.ndarray:
    """All-ones initialisation (batch-norm scale)."""
    return np.ones(shape, dtype=np.float64)
