"""Optimisers."""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

import numpy as np

from repro.nn.tensor import Parameter


class SGD:
    """Stochastic gradient descent with momentum and weight decay.

    Frozen parameters (``trainable=False``) are skipped entirely, which is
    how the freezing method reduces the number of trained parameters.
    """

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr: float = 0.1,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
        max_grad_norm: float = 0.0,
    ):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        if weight_decay < 0:
            raise ValueError("weight decay must be non-negative")
        self.parameters = list(parameters)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.max_grad_norm = max_grad_norm
        self._velocity: Dict[int, np.ndarray] = {}

    def zero_grad(self) -> None:
        """Reset gradients on every managed parameter."""
        for param in self.parameters:
            param.zero_grad()

    def _clip_gradients(self) -> None:
        if self.max_grad_norm <= 0:
            return
        total = 0.0
        for param in self.parameters:
            if param.trainable:
                total += float(np.sum(param.grad**2))
        norm = float(np.sqrt(total))
        if norm > self.max_grad_norm and norm > 0:
            scale = self.max_grad_norm / norm
            for param in self.parameters:
                if param.trainable:
                    param.grad *= scale

    def step(self) -> None:
        """Apply one update to every trainable parameter."""
        self._clip_gradients()
        for param in self.parameters:
            if not param.trainable:
                continue
            grad = param.grad
            if self.weight_decay > 0:
                grad = grad + self.weight_decay * param.data
            key = id(param)
            velocity = self._velocity.get(key)
            if velocity is None:
                velocity = np.zeros_like(param.data)
            velocity = self.momentum * velocity - self.lr * grad
            self._velocity[key] = velocity
            param.data = param.data + velocity

    def set_lr(self, lr: float) -> None:
        """Set the learning rate (used by schedulers)."""
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr

    # -- checkpointing -----------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """Momentum buffers in parameter order (zeros before the first step)."""
        return {
            "velocity": [
                self._velocity.get(id(p), np.zeros_like(p.data)).copy()
                for p in self.parameters
            ],
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore momentum buffers previously captured by :meth:`state_dict`."""
        velocity = state["velocity"]
        if len(velocity) != len(self.parameters):
            raise ValueError(
                f"optimizer state holds {len(velocity)} buffers for "
                f"{len(self.parameters)} parameters"
            )
        for param, buffer in zip(self.parameters, velocity):
            self._velocity[id(param)] = np.asarray(buffer, dtype=np.float64).copy()


class Adam:
    """Adam optimiser.

    The paper trains every network with SGD for 500 epochs; at the reduced
    numpy scale of this reproduction that budget is unaffordable, so the
    training presets default to Adam, which reaches comparable accuracy in an
    order of magnitude fewer epochs.  SGD remains available for paper-exact
    protocols.
    """

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr: float = 3e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
        max_grad_norm: float = 0.0,
    ):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("betas must be in [0, 1)")
        if weight_decay < 0:
            raise ValueError("weight decay must be non-negative")
        self.parameters = list(parameters)
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self.max_grad_norm = max_grad_norm
        self._step = 0
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}

    def zero_grad(self) -> None:
        """Reset gradients on every managed parameter."""
        for param in self.parameters:
            param.zero_grad()

    def _clip_gradients(self) -> None:
        if self.max_grad_norm <= 0:
            return
        total = sum(
            float(np.sum(p.grad**2)) for p in self.parameters if p.trainable
        )
        norm = float(np.sqrt(total))
        if norm > self.max_grad_norm and norm > 0:
            scale = self.max_grad_norm / norm
            for param in self.parameters:
                if param.trainable:
                    param.grad *= scale

    def step(self) -> None:
        """Apply one Adam update to every trainable parameter."""
        self._clip_gradients()
        self._step += 1
        bias1 = 1.0 - self.beta1**self._step
        bias2 = 1.0 - self.beta2**self._step
        for param in self.parameters:
            if not param.trainable:
                continue
            grad = param.grad
            if self.weight_decay > 0:
                grad = grad + self.weight_decay * param.data
            key = id(param)
            m = self._m.get(key)
            v = self._v.get(key)
            if m is None:
                m = np.zeros_like(param.data)
                v = np.zeros_like(param.data)
            m = self.beta1 * m + (1 - self.beta1) * grad
            v = self.beta2 * v + (1 - self.beta2) * grad**2
            self._m[key] = m
            self._v[key] = v
            m_hat = m / bias1
            v_hat = v / bias2
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def set_lr(self, lr: float) -> None:
        """Set the learning rate (used by schedulers)."""
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr

    # -- checkpointing -----------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """Step count and moment estimates in parameter order.

        Parameters that have never been stepped get zero buffers, which is
        exactly the state Adam would lazily initialise for them, so the
        round-trip is loss-free.
        """
        return {
            "step": self._step,
            "m": [
                self._m.get(id(p), np.zeros_like(p.data)).copy()
                for p in self.parameters
            ],
            "v": [
                self._v.get(id(p), np.zeros_like(p.data)).copy()
                for p in self.parameters
            ],
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore the state previously captured by :meth:`state_dict`."""
        if len(state["m"]) != len(self.parameters) or len(state["v"]) != len(
            self.parameters
        ):
            raise ValueError(
                f"optimizer state holds {len(state['m'])} buffers for "
                f"{len(self.parameters)} parameters"
            )
        self._step = int(state["step"])
        for param, m, v in zip(self.parameters, state["m"], state["v"]):
            self._m[id(param)] = np.asarray(m, dtype=np.float64).copy()
            self._v[id(param)] = np.asarray(v, dtype=np.float64).copy()
