"""Optimisers.

Both optimisers update their state and the parameters *in place* via ``out=``
ufuncs: one scratch buffer per parameter (allocated lazily, reused every
step) replaces the per-step temporaries the seed allocated for the effective
gradient, the momentum/moment updates and the final delta.  The arithmetic
is kept operation-for-operation identical to the seed's expressions (same
associativity, commutative reorderings only), so float64 runs remain
bit-for-bit reproducible across the rewrite -- the property suite pins the
in-place steps against a re-implementation of the seed's allocating math.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

import numpy as np

from repro.nn.tensor import Parameter


def _ensure_buffer(store: Dict[int, np.ndarray], param: Parameter) -> np.ndarray:
    """Lazily allocated per-parameter state buffer (reset on shape/dtype change)."""
    key = id(param)
    buffer = store.get(key)
    if buffer is None or buffer.shape != param.data.shape or buffer.dtype != param.data.dtype:
        buffer = np.zeros_like(param.data)
        store[key] = buffer
    return buffer


class SGD:
    """Stochastic gradient descent with momentum and weight decay.

    Frozen parameters (``trainable=False``) are skipped entirely, which is
    how the freezing method reduces the number of trained parameters.
    """

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr: float = 0.1,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
        max_grad_norm: float = 0.0,
    ):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        if weight_decay < 0:
            raise ValueError("weight decay must be non-negative")
        self.parameters = list(parameters)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.max_grad_norm = max_grad_norm
        self._velocity: Dict[int, np.ndarray] = {}
        self._scratch: Dict[int, np.ndarray] = {}

    def zero_grad(self) -> None:
        """Reset gradients on every managed parameter."""
        for param in self.parameters:
            param.zero_grad()

    def _clip_gradients(self) -> None:
        if self.max_grad_norm <= 0:
            return
        total = 0.0
        for param in self.parameters:
            if param.trainable:
                total += float(np.sum(param.grad**2))
        norm = float(np.sqrt(total))
        if norm > self.max_grad_norm and norm > 0:
            scale = self.max_grad_norm / norm
            for param in self.parameters:
                if param.trainable:
                    param.grad *= scale

    def step(self) -> None:
        """Apply one update to every trainable parameter (all in place)."""
        self._clip_gradients()
        for param in self.parameters:
            if not param.trainable:
                continue
            scratch = _ensure_buffer(self._scratch, param)
            if self.weight_decay > 0:
                # grad + weight_decay * data, without a fresh temporary.
                np.multiply(param.data, self.weight_decay, out=scratch)
                np.add(scratch, param.grad, out=scratch)
                grad = scratch
            else:
                grad = param.grad
            velocity = _ensure_buffer(self._velocity, param)
            np.multiply(velocity, self.momentum, out=velocity)
            np.multiply(grad, self.lr, out=scratch)
            np.subtract(velocity, scratch, out=velocity)
            np.add(param.data, velocity, out=param.data)

    def set_lr(self, lr: float) -> None:
        """Set the learning rate (used by schedulers)."""
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr

    # -- checkpointing -----------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """Momentum buffers in parameter order (zeros before the first step)."""
        return {
            "velocity": [
                self._velocity.get(id(p), np.zeros_like(p.data)).copy()
                for p in self.parameters
            ],
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore momentum buffers previously captured by :meth:`state_dict`."""
        velocity = state["velocity"]
        if len(velocity) != len(self.parameters):
            raise ValueError(
                f"optimizer state holds {len(velocity)} buffers for "
                f"{len(self.parameters)} parameters"
            )
        for param, buffer in zip(self.parameters, velocity):
            self._velocity[id(param)] = np.asarray(
                buffer, dtype=param.data.dtype
            ).copy()


class Adam:
    """Adam optimiser.

    The paper trains every network with SGD for 500 epochs; at the reduced
    numpy scale of this reproduction that budget is unaffordable, so the
    training presets default to Adam, which reaches comparable accuracy in an
    order of magnitude fewer epochs.  SGD remains available for paper-exact
    protocols.
    """

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr: float = 3e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
        max_grad_norm: float = 0.0,
    ):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("betas must be in [0, 1)")
        if weight_decay < 0:
            raise ValueError("weight decay must be non-negative")
        self.parameters = list(parameters)
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self.max_grad_norm = max_grad_norm
        self._step = 0
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        self._scratch: Dict[int, np.ndarray] = {}
        self._scratch2: Dict[int, np.ndarray] = {}

    def zero_grad(self) -> None:
        """Reset gradients on every managed parameter."""
        for param in self.parameters:
            param.zero_grad()

    def _clip_gradients(self) -> None:
        if self.max_grad_norm <= 0:
            return
        total = sum(
            float(np.sum(p.grad**2)) for p in self.parameters if p.trainable
        )
        norm = float(np.sqrt(total))
        if norm > self.max_grad_norm and norm > 0:
            scale = self.max_grad_norm / norm
            for param in self.parameters:
                if param.trainable:
                    param.grad *= scale

    def step(self) -> None:
        """Apply one Adam update to every trainable parameter (all in place)."""
        self._clip_gradients()
        self._step += 1
        bias1 = 1.0 - self.beta1**self._step
        bias2 = 1.0 - self.beta2**self._step
        for param in self.parameters:
            if not param.trainable:
                continue
            scratch = _ensure_buffer(self._scratch, param)
            scratch2 = _ensure_buffer(self._scratch2, param)
            if self.weight_decay > 0:
                np.multiply(param.data, self.weight_decay, out=scratch2)
                np.add(scratch2, param.grad, out=scratch2)
                grad = scratch2
            else:
                grad = param.grad
            m = _ensure_buffer(self._m, param)
            v = _ensure_buffer(self._v, param)
            # m = beta1 * m + (1 - beta1) * grad
            np.multiply(m, self.beta1, out=m)
            np.multiply(grad, 1 - self.beta1, out=scratch)
            np.add(m, scratch, out=m)
            # v = beta2 * v + (1 - beta2) * grad**2
            np.multiply(v, self.beta2, out=v)
            np.multiply(grad, grad, out=scratch)
            np.multiply(scratch, 1 - self.beta2, out=scratch)
            np.add(v, scratch, out=v)
            # data -= lr * (m / bias1) / (sqrt(v / bias2) + eps)
            np.divide(m, bias1, out=scratch)
            np.multiply(scratch, self.lr, out=scratch)
            np.divide(v, bias2, out=scratch2)
            np.sqrt(scratch2, out=scratch2)
            np.add(scratch2, self.eps, out=scratch2)
            np.divide(scratch, scratch2, out=scratch)
            np.subtract(param.data, scratch, out=param.data)

    def set_lr(self, lr: float) -> None:
        """Set the learning rate (used by schedulers)."""
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr

    # -- checkpointing -----------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """Step count and moment estimates in parameter order.

        Parameters that have never been stepped get zero buffers, which is
        exactly the state Adam would lazily initialise for them, so the
        round-trip is loss-free.
        """
        return {
            "step": self._step,
            "m": [
                self._m.get(id(p), np.zeros_like(p.data)).copy()
                for p in self.parameters
            ],
            "v": [
                self._v.get(id(p), np.zeros_like(p.data)).copy()
                for p in self.parameters
            ],
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore the state previously captured by :meth:`state_dict`."""
        if len(state["m"]) != len(self.parameters) or len(state["v"]) != len(
            self.parameters
        ):
            raise ValueError(
                f"optimizer state holds {len(state['m'])} buffers for "
                f"{len(self.parameters)} parameters"
            )
        self._step = int(state["step"])
        for param, m, v in zip(self.parameters, state["m"], state["v"]):
            self._m[id(param)] = np.asarray(m, dtype=param.data.dtype).copy()
            self._v[id(param)] = np.asarray(v, dtype=param.data.dtype).copy()
