"""Learning-rate schedules.

The paper trains every network with "learning rate starts from 0.1 with a
decay of 0.9 in 20 steps"; :class:`StepDecay` implements exactly that.
"""

from __future__ import annotations

import math

from repro.nn.optim import SGD


class StepDecay:
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: SGD, step_size: int = 20, gamma: float = 0.9):
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        if not 0.0 < gamma <= 1.0:
            raise ValueError("gamma must be in (0, 1]")
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> float:
        """Advance one epoch and return the new learning rate."""
        self.epoch += 1
        lr = self.base_lr * (self.gamma ** (self.epoch // self.step_size))
        self.optimizer.set_lr(lr)
        return lr

    def current_lr(self) -> float:
        return self.optimizer.lr


class CosineDecay:
    """Cosine-annealed learning rate over a fixed number of epochs."""

    def __init__(self, optimizer: SGD, total_epochs: int, min_lr: float = 1e-4):
        if total_epochs <= 0:
            raise ValueError("total_epochs must be positive")
        if min_lr < 0:
            raise ValueError("min_lr must be non-negative")
        self.optimizer = optimizer
        self.total_epochs = total_epochs
        self.min_lr = min_lr
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> float:
        """Advance one epoch and return the new learning rate."""
        self.epoch = min(self.epoch + 1, self.total_epochs)
        progress = self.epoch / self.total_epochs
        lr = self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (
            1.0 + math.cos(math.pi * progress)
        )
        self.optimizer.set_lr(lr)
        return lr

    def current_lr(self) -> float:
        return self.optimizer.lr
