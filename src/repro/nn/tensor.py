"""Trainable parameter container."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.dtype import DtypeLike, resolve_dtype


class Parameter:
    """A named, trainable array with an accumulated gradient.

    ``trainable`` supports the paper's freezing method: frozen blocks keep
    their pre-trained weights and the optimiser skips them, which both
    reduces the number of trained parameters and shrinks the search space.

    ``dtype`` defaults to the global precision policy
    (:mod:`repro.nn.dtype`), which is float64 unless a run opts into float32.
    """

    def __init__(
        self,
        data: np.ndarray,
        name: str = "",
        trainable: bool = True,
        dtype: DtypeLike = None,
    ):
        self.data = np.asarray(data, dtype=resolve_dtype(dtype))
        self.grad = np.zeros_like(self.data)
        self.name = name
        self.trainable = trainable

    def astype(self, dtype: DtypeLike) -> "Parameter":
        """Cast the value and gradient to ``dtype`` in place (no-op if equal)."""
        resolved = resolve_dtype(dtype)
        if self.data.dtype != resolved:
            self.data = self.data.astype(resolved)
            self.grad = self.grad.astype(resolved)
        return self

    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def size(self) -> int:
        return int(self.data.size)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient to zero."""
        self.grad.fill(0.0)

    def accumulate_grad(self, grad: np.ndarray) -> None:
        """Add ``grad`` to the accumulated gradient (no-op when frozen)."""
        if not self.trainable:
            return
        if grad.shape != self.data.shape:
            raise ValueError(
                f"gradient shape {grad.shape} does not match parameter "
                f"shape {self.data.shape} for '{self.name}'"
            )
        self.grad += grad

    def copy_(self, other: "Parameter") -> None:
        """Copy the values of ``other`` into this parameter in place."""
        if other.data.shape != self.data.shape:
            raise ValueError(
                f"cannot copy parameter of shape {other.data.shape} into "
                f"shape {self.data.shape}"
            )
        self.data = other.data.copy()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flag = "" if self.trainable else ", frozen"
        return f"Parameter(name={self.name!r}, shape={self.data.shape}{flag})"
