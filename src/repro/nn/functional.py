"""Low-level array operations shared by the layers.

The convolution layers are built on an explicit ``im2col``/``col2im`` pair so
that forward and backward passes reduce to dense matrix products, which is
the only way to make convolutions tolerably fast in pure numpy.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution along one dimension."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"convolution produces non-positive output size "
            f"(input={size}, kernel={kernel}, stride={stride}, padding={padding})"
        )
    return out


def im2col(
    x: np.ndarray, kernel_h: int, kernel_w: int, stride: int, padding: int
) -> np.ndarray:
    """Unfold ``x`` of shape (N, C, H, W) into patches.

    Returns an array of shape ``(N, C, kernel_h, kernel_w, out_h, out_w)``.
    """
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kernel_h, stride, padding)
    out_w = conv_output_size(w, kernel_w, stride, padding)
    if padding > 0:
        x = np.pad(
            x,
            ((0, 0), (0, 0), (padding, padding), (padding, padding)),
            mode="constant",
        )
    cols = np.empty((n, c, kernel_h, kernel_w, out_h, out_w), dtype=x.dtype)
    for i in range(kernel_h):
        i_end = i + stride * out_h
        for j in range(kernel_w):
            j_end = j + stride * out_w
            cols[:, :, i, j, :, :] = x[:, :, i:i_end:stride, j:j_end:stride]
    return cols


def col2im(
    cols: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    kernel_h: int,
    kernel_w: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Fold patch gradients back onto the input (adjoint of :func:`im2col`)."""
    n, c, h, w = input_shape
    out_h = conv_output_size(h, kernel_h, stride, padding)
    out_w = conv_output_size(w, kernel_w, stride, padding)
    padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=cols.dtype)
    for i in range(kernel_h):
        i_end = i + stride * out_h
        for j in range(kernel_w):
            j_end = j + stride * out_w
            padded[:, :, i:i_end:stride, j:j_end:stride] += cols[:, :, i, j, :, :]
    if padding > 0:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = logits - np.max(logits, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def log_softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax."""
    shifted = logits - np.max(logits, axis=axis, keepdims=True)
    return shifted - np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Encode integer ``labels`` as one-hot rows."""
    labels = np.asarray(labels, dtype=np.int64)
    if labels.ndim != 1:
        raise ValueError(f"labels must be 1-D, got shape {labels.shape}")
    if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
        raise ValueError(
            f"labels must lie in [0, {num_classes}), got range "
            f"[{labels.min()}, {labels.max()}]"
        )
    encoded = np.zeros((labels.shape[0], num_classes), dtype=np.float64)
    encoded[np.arange(labels.shape[0]), labels] = 1.0
    return encoded
