"""Low-level array operations shared by the layers.

The convolution layers are built on an explicit ``im2col``/``col2im`` pair so
that forward and backward passes reduce to dense matrix products, which is
the only way to make convolutions tolerably fast in pure numpy.

``im2col`` is implemented with ``np.lib.stride_tricks.as_strided``: the
kernel-window unfold is expressed as a zero-copy strided *view* of the
(padded) input, and the only work is one contiguous copy of that view into
the output buffer.  The seed implementation -- a Python loop over the
``kernel_h x kernel_w`` offsets copying strided slices -- is kept as
:func:`im2col_reference`; both produce byte-identical outputs (the property
suite checks them against each other to 0 ulp), so the strided rewrite is a
pure speedup.  Callers on the hot path pass ``out=`` to reuse a per-layer
workspace instead of reallocating the (large) patch tensor every forward.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Tuple

import numpy as np
from numpy.lib.stride_tricks import as_strided

from repro.nn.dtype import resolve_dtype


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution along one dimension."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"convolution produces non-positive output size "
            f"(input={size}, kernel={kernel}, stride={stride}, padding={padding})"
        )
    return out


def _pad_input(x: np.ndarray, padding: int) -> np.ndarray:
    if padding > 0:
        return np.pad(
            x,
            ((0, 0), (0, 0), (padding, padding), (padding, padding)),
            mode="constant",
        )
    return x


def im2col(
    x: np.ndarray,
    kernel_h: int,
    kernel_w: int,
    stride: int,
    padding: int,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Unfold ``x`` of shape (N, C, H, W) into patches.

    Returns an array of shape ``(N, C, kernel_h, kernel_w, out_h, out_w)``.
    With ``out`` given (a contiguous buffer of that shape and ``x``'s dtype)
    the patches are copied into it and no allocation happens.
    """
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kernel_h, stride, padding)
    out_w = conv_output_size(w, kernel_w, stride, padding)
    x = _pad_input(x, padding)
    if not x.flags.c_contiguous:
        x = np.ascontiguousarray(x)
    s_n, s_c, s_h, s_w = x.strides
    view = as_strided(
        x,
        shape=(n, c, kernel_h, kernel_w, out_h, out_w),
        strides=(s_n, s_c, s_h, s_w, s_h * stride, s_w * stride),
        writeable=False,
    )
    if out is None:
        return np.ascontiguousarray(view)
    np.copyto(out, view)
    return out


def im2col_reference(
    x: np.ndarray, kernel_h: int, kernel_w: int, stride: int, padding: int
) -> np.ndarray:
    """The seed implementation of :func:`im2col` (Python loop over offsets).

    Kept as the correctness oracle for the strided rewrite and as the
    old-kernel baseline for ``benchmarks/bench_nn.py``.
    """
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kernel_h, stride, padding)
    out_w = conv_output_size(w, kernel_w, stride, padding)
    x = _pad_input(x, padding)
    cols = np.empty((n, c, kernel_h, kernel_w, out_h, out_w), dtype=x.dtype)
    for i in range(kernel_h):
        i_end = i + stride * out_h
        for j in range(kernel_w):
            j_end = j + stride * out_w
            cols[:, :, i, j, :, :] = x[:, :, i:i_end:stride, j:j_end:stride]
    return cols


def col2im(
    cols: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    kernel_h: int,
    kernel_w: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Fold patch gradients back onto the input (adjoint of :func:`im2col`).

    The scatter-add over the ``kernel_h x kernel_w`` offsets stays an explicit
    loop: overlapping windows write to the same input cells, which a strided
    view cannot express safely, and each iteration is a full-array vectorised
    add.  The summation order is exactly the seed's, so gradients are
    bit-for-bit stable across the kernel rewrite.
    """
    n, c, h, w = input_shape
    out_h = conv_output_size(h, kernel_h, stride, padding)
    out_w = conv_output_size(w, kernel_w, stride, padding)
    padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=cols.dtype)
    for i in range(kernel_h):
        i_end = i + stride * out_h
        for j in range(kernel_w):
            j_end = j + stride * out_w
            padded[:, :, i:i_end:stride, j:j_end:stride] += cols[:, :, i, j, :, :]
    if padding > 0:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded


# The seed folded gradients with this exact routine; the property suite pins
# the (unchanged) implementation against it explicitly.
col2im_reference = col2im


# -- cached einsum contraction paths -------------------------------------------------
# ``np.einsum(..., optimize=True)`` re-runs the contraction-path search on
# every call, which at child-training scale costs more than some of the
# contractions themselves.  The remaining einsum call sites (the depthwise
# convolution, whose per-channel contraction has no 2-D BLAS shape) go
# through this tiny memo instead: one path search per (subscripts, shapes).
_EINSUM_PATHS: Dict[Tuple[str, Tuple[Tuple[int, ...], ...]], list] = {}
_EINSUM_LOCK = threading.Lock()


def einsum_cached(subscripts: str, *operands: np.ndarray) -> np.ndarray:
    """``np.einsum`` with the optimized contraction path computed once."""
    key = (subscripts, tuple(op.shape for op in operands))
    path = _EINSUM_PATHS.get(key)
    if path is None:
        path = np.einsum_path(subscripts, *operands, optimize="optimal")[0]
        with _EINSUM_LOCK:
            _EINSUM_PATHS.setdefault(key, path)
    return np.einsum(subscripts, *operands, optimize=path)


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = logits - np.max(logits, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def log_softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax."""
    shifted = logits - np.max(logits, axis=axis, keepdims=True)
    return shifted - np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))


def one_hot(labels: np.ndarray, num_classes: int, dtype=None) -> np.ndarray:
    """Encode integer ``labels`` as one-hot rows.

    ``dtype`` defaults to the precision policy
    (:func:`repro.nn.dtype.get_default_dtype`); the loss passes its logits'
    dtype so float32 training does not silently upcast through the targets.
    """
    labels = np.asarray(labels, dtype=np.int64)
    if labels.ndim != 1:
        raise ValueError(f"labels must be 1-D, got shape {labels.shape}")
    if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
        raise ValueError(
            f"labels must lie in [0, {num_classes}), got range "
            f"[{labels.min()}, {labels.max()}]"
        )
    encoded = np.zeros((labels.shape[0], num_classes), dtype=resolve_dtype(dtype))
    encoded[np.arange(labels.shape[0]), labels] = 1.0
    return encoded
