"""Classification metrics."""

from __future__ import annotations

import numpy as np


def accuracy(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of correct predictions.

    ``predictions`` may be class indices (1-D) or logits/probabilities (2-D),
    in which case the argmax is taken.
    """
    predictions = np.asarray(predictions)
    labels = np.asarray(labels, dtype=np.int64)
    if predictions.ndim == 2:
        predictions = predictions.argmax(axis=1)
    predictions = predictions.astype(np.int64)
    if predictions.shape != labels.shape:
        raise ValueError(
            f"shape mismatch: predictions {predictions.shape} vs labels {labels.shape}"
        )
    if labels.size == 0:
        raise ValueError("cannot compute accuracy of an empty label set")
    return float((predictions == labels).mean())


def confusion_matrix(
    predictions: np.ndarray, labels: np.ndarray, num_classes: int
) -> np.ndarray:
    """Return the ``num_classes`` x ``num_classes`` confusion matrix.

    Rows are true classes; columns are predicted classes.
    """
    predictions = np.asarray(predictions)
    if predictions.ndim == 2:
        predictions = predictions.argmax(axis=1)
    predictions = predictions.astype(np.int64)
    labels = np.asarray(labels, dtype=np.int64)
    if predictions.shape != labels.shape:
        raise ValueError("predictions and labels must have the same length")
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    for true, pred in zip(labels, predictions):
        if not (0 <= true < num_classes and 0 <= pred < num_classes):
            raise ValueError("class index out of range for confusion matrix")
        matrix[true, pred] += 1
    return matrix
