"""Classification metrics."""

from __future__ import annotations

import numpy as np


def _as_class_indices(predictions: np.ndarray) -> np.ndarray:
    """Reduce logits to class indices; cast only when not already int64.

    ``np.asarray(..., dtype=...)`` is a no-op view for arrays that already
    have the target dtype, so integer predictions/labels pass through without
    the redundant copies the seed's unconditional ``astype`` made on every
    evaluation batch.
    """
    predictions = np.asarray(predictions)
    if predictions.ndim == 2:
        predictions = predictions.argmax(axis=1)
    return np.asarray(predictions, dtype=np.int64)


def accuracy(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of correct predictions.

    ``predictions`` may be class indices (1-D) or logits/probabilities (2-D),
    in which case the argmax is taken.
    """
    predictions = _as_class_indices(predictions)
    labels = np.asarray(labels, dtype=np.int64)
    if predictions.shape != labels.shape:
        raise ValueError(
            f"shape mismatch: predictions {predictions.shape} vs labels {labels.shape}"
        )
    if labels.size == 0:
        raise ValueError("cannot compute accuracy of an empty label set")
    return float((predictions == labels).mean())


def confusion_matrix(
    predictions: np.ndarray, labels: np.ndarray, num_classes: int
) -> np.ndarray:
    """Return the ``num_classes`` x ``num_classes`` confusion matrix.

    Rows are true classes; columns are predicted classes.
    """
    predictions = _as_class_indices(predictions)
    labels = np.asarray(labels, dtype=np.int64)
    if predictions.shape != labels.shape:
        raise ValueError("predictions and labels must have the same length")
    if predictions.size and (
        predictions.min() < 0
        or predictions.max() >= num_classes
        or labels.min() < 0
        or labels.max() >= num_classes
    ):
        raise ValueError("class index out of range for confusion matrix")
    # One vectorised scatter instead of the seed's per-sample Python loop.
    flat = np.bincount(
        labels * num_classes + predictions, minlength=num_classes * num_classes
    )
    return flat.reshape(num_classes, num_classes).astype(np.int64, copy=False)
