"""Mini-batch training loop used by the NAS evaluator and the zoo experiments."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.nn.dtype import DTYPE_NAMES, resolve_dtype
from repro.nn.losses import CrossEntropyLoss
from repro.nn.metrics import accuracy
from repro.nn.module import Module, inference_mode
from repro.nn.optim import SGD, Adam
from repro.nn.schedulers import StepDecay
from repro.obs import metrics as obs_metrics
from repro.utils.rng import SeedLike, new_rng

# Trainer instruments, cached per registry (a test swapping the global
# registry gets fresh ones).  The trainer writes to the process-global
# registry directly: on the process worker backend that is the *worker's*
# registry, so epoch timings from process pools stay per-worker-process --
# an accepted limitation, the engine-side pool metrics cover that case.
_instrument_cache: Tuple[Optional[obs_metrics.MetricsRegistry], tuple] = (None, ())


def _trainer_instruments() -> tuple:
    global _instrument_cache
    registry = obs_metrics.get_registry()
    cached_registry, instruments = _instrument_cache
    if cached_registry is not registry:
        instruments = (
            registry.counter(
                "repro_trainer_epochs_total", "Training epochs completed"
            ),
            registry.histogram(
                "repro_trainer_epoch_seconds", "Wall time per training epoch"
            ),
            registry.gauge(
                "repro_trainer_samples_per_second",
                "Training throughput of the most recent epoch",
            ),
        )
        _instrument_cache = (registry, instruments)  # repro-lint: disable=THR001 -- benign last-write-wins cache: concurrent writers build identical tuples from the same locked registry
    return instruments


@dataclass
class TrainingConfig:
    """Hyper-parameters of a training run.

    The paper's protocol is SGD with learning rate 0.1, a 0.9 decay every 20
    steps, batch size 32 and 500 epochs.  At numpy scale that epoch budget is
    unaffordable, so the default optimiser is Adam (set ``optimizer="sgd"``
    and ``learning_rate=0.1`` to follow the paper's protocol exactly) and the
    number of epochs is chosen by the scale presets.
    """

    epochs: int = 10
    batch_size: int = 32
    learning_rate: float = 3e-3
    optimizer: str = "adam"
    momentum: float = 0.9
    weight_decay: float = 1e-4
    lr_step_size: int = 20
    lr_gamma: float = 0.9
    max_grad_norm: float = 5.0
    shuffle: bool = True
    seed: Optional[int] = 0
    # Compute precision of the training run: None keeps the model/data dtype
    # as built (the seed's float64 behaviour); "float32" casts the model and
    # the batches once at fit time for ~2x kernel throughput.  RNG streams
    # (shuffling, dropout) are identical across precisions.
    precision: Optional[str] = None
    # Batch size used by predict/evaluate; None falls back to ``batch_size``.
    # Inference keeps no backward caches, so far larger batches are safe.
    inference_batch_size: Optional[int] = None

    def __post_init__(self) -> None:
        if self.epochs < 0:
            raise ValueError("epochs must be non-negative")
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if self.optimizer not in ("adam", "sgd"):
            raise ValueError("optimizer must be 'adam' or 'sgd'")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.weight_decay < 0:
            raise ValueError("weight_decay must be non-negative")
        if self.max_grad_norm <= 0:
            raise ValueError("max_grad_norm must be positive")
        if self.lr_step_size <= 0:
            raise ValueError("lr_step_size must be positive")
        if self.lr_gamma <= 0:
            raise ValueError("lr_gamma must be positive")
        if not 0.0 <= self.momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        if self.precision is not None and self.precision not in DTYPE_NAMES:
            raise ValueError(
                f"precision must be one of {DTYPE_NAMES} (or None), "
                f"got {self.precision!r}"
            )
        if self.inference_batch_size is not None and self.inference_batch_size <= 0:
            raise ValueError("inference_batch_size must be positive when given")


@dataclass
class TrainingHistory:
    """Per-epoch record of a training run."""

    losses: List[float] = field(default_factory=list)
    accuracies: List[float] = field(default_factory=list)
    learning_rates: List[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")

    @property
    def final_accuracy(self) -> float:
        return self.accuracies[-1] if self.accuracies else float("nan")


class Trainer:
    """Trains a model on (images, labels) arrays and evaluates it in batches."""

    def __init__(self, config: Optional[TrainingConfig] = None):
        self.config = config or TrainingConfig()

    def fit(
        self,
        model: Module,
        images: np.ndarray,
        labels: np.ndarray,
        sample_weights: Optional[np.ndarray] = None,
    ) -> TrainingHistory:
        """Train ``model`` in place and return the per-epoch history."""
        config = self.config
        if images.shape[0] != labels.shape[0]:
            raise ValueError("images and labels must have the same first dimension")
        if images.shape[0] == 0:
            raise ValueError("cannot train on an empty dataset")

        if config.precision is not None:
            # Cast once up front; the whole forward/backward/optimizer chain
            # then stays in this dtype (losses and optimizer state follow
            # their inputs).
            dtype = resolve_dtype(config.precision)
            model.astype(dtype)
            images = images.astype(dtype, copy=False)

        rng = new_rng(config.seed)
        loss_fn = CrossEntropyLoss()
        if config.optimizer == "sgd":
            optimizer = SGD(
                model.parameters(),
                lr=config.learning_rate,
                momentum=config.momentum,
                weight_decay=config.weight_decay,
                max_grad_norm=config.max_grad_norm,
            )
        else:
            optimizer = Adam(
                model.parameters(),
                lr=config.learning_rate,
                weight_decay=config.weight_decay,
                max_grad_norm=config.max_grad_norm,
            )
        scheduler = StepDecay(optimizer, config.lr_step_size, config.lr_gamma)
        history = TrainingHistory()

        num_samples = images.shape[0]
        instrumented = obs_metrics.enabled()
        if instrumented:
            epochs_total, epoch_seconds, samples_per_second = _trainer_instruments()
        model.train()
        for _ in range(config.epochs):
            epoch_start = time.perf_counter() if instrumented else 0.0
            order = (
                rng.permutation(num_samples)
                if config.shuffle
                else np.arange(num_samples)
            )
            epoch_loss = 0.0
            epoch_correct = 0.0
            for start in range(0, num_samples, config.batch_size):
                batch_idx = order[start : start + config.batch_size]
                batch_x = images[batch_idx]
                batch_y = labels[batch_idx]
                batch_w = (
                    sample_weights[batch_idx] if sample_weights is not None else None
                )

                optimizer.zero_grad()
                logits = model.forward(batch_x)
                loss = loss_fn.forward(logits, batch_y, batch_w)
                model.backward(loss_fn.backward())
                optimizer.step()

                epoch_loss += loss * len(batch_idx)
                epoch_correct += accuracy(logits, batch_y) * len(batch_idx)
            history.losses.append(epoch_loss / num_samples)
            history.accuracies.append(epoch_correct / num_samples)
            history.learning_rates.append(scheduler.current_lr())
            scheduler.step()
            if instrumented:
                elapsed = time.perf_counter() - epoch_start
                epochs_total.inc()
                epoch_seconds.observe(elapsed)
                if elapsed > 0:
                    samples_per_second.set(num_samples / elapsed)
        return history

    def predict(
        self, model: Module, images: np.ndarray, batch_size: Optional[int] = None
    ) -> np.ndarray:
        """Return predicted class indices for ``images``.

        Runs under :func:`~repro.nn.module.inference_mode`, so the layers
        keep no backward caches; ``TrainingConfig.inference_batch_size``
        (default: the training batch size) controls the batching.
        """
        batch = batch_size or self.config.inference_batch_size or self.config.batch_size
        # Feed the model its own precision: predicting float64 images through
        # a float32-trained model would silently upcast every layer.
        images = images.astype(model.dtype, copy=False)
        model.eval()
        predictions: List[np.ndarray] = []
        with inference_mode():
            for start in range(0, images.shape[0], batch):
                logits = model.forward(images[start : start + batch])
                predictions.append(logits.argmax(axis=1))
        model.train()
        if not predictions:
            return np.zeros((0,), dtype=np.int64)
        return np.concatenate(predictions)

    def evaluate(
        self,
        model: Module,
        images: np.ndarray,
        labels: np.ndarray,
        batch_size: Optional[int] = None,
    ) -> float:
        """Return the accuracy of ``model`` on the given data."""
        predictions = self.predict(model, images, batch_size)
        return accuracy(predictions, labels)
