"""A from-scratch numpy deep-learning framework.

This package stands in for PyTorch in the reproduction: it provides the
layers, losses, optimisers and training loop needed by the FaHaNa search
(convolutions, depthwise convolutions, batch normalisation, linear layers,
ReLU-family activations, pooling, dropout, cross-entropy, SGD with momentum
and step-decay learning-rate scheduling).

Layers follow an explicit forward/backward contract (see
:class:`repro.nn.module.Module`) rather than a taped autodiff graph: every
module caches what it needs during ``forward`` and returns the gradient with
respect to its input from ``backward`` while accumulating parameter
gradients.  Composite blocks with residual connections implement their own
``forward``/``backward`` pair on top of their sub-layers.
"""

from repro.nn.dtype import (
    default_dtype,
    get_default_dtype,
    resolve_dtype,
    set_default_dtype,
)
from repro.nn.tensor import Parameter
from repro.nn.module import Module, Sequential, inference_mode, is_inference
from repro.nn.layers import (
    Conv2d,
    DepthwiseConv2d,
    Linear,
    BatchNorm2d,
    ReLU,
    ReLU6,
    HardSwish,
    HardSigmoid,
    GlobalAvgPool2d,
    MaxPool2d,
    AvgPool2d,
    Flatten,
    Dropout,
    Identity,
)
from repro.nn.losses import CrossEntropyLoss
from repro.nn.optim import SGD
from repro.nn.schedulers import StepDecay, CosineDecay
from repro.nn.metrics import accuracy, confusion_matrix
from repro.nn.trainer import Trainer, TrainingConfig, TrainingHistory

__all__ = [
    "default_dtype",
    "get_default_dtype",
    "resolve_dtype",
    "set_default_dtype",
    "inference_mode",
    "is_inference",
    "Parameter",
    "Module",
    "Sequential",
    "Conv2d",
    "DepthwiseConv2d",
    "Linear",
    "BatchNorm2d",
    "ReLU",
    "ReLU6",
    "HardSwish",
    "HardSigmoid",
    "GlobalAvgPool2d",
    "MaxPool2d",
    "AvgPool2d",
    "Flatten",
    "Dropout",
    "Identity",
    "CrossEntropyLoss",
    "SGD",
    "StepDecay",
    "CosineDecay",
    "accuracy",
    "confusion_matrix",
    "Trainer",
    "TrainingConfig",
    "TrainingHistory",
]
