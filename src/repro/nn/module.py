"""Module base class and Sequential container."""

from __future__ import annotations

import threading
from collections import OrderedDict
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.nn.dtype import DtypeLike, resolve_dtype
from repro.nn.tensor import Parameter

# -- inference mode -----------------------------------------------------------------
# Inside ``inference_mode()`` the layers skip storing their backward caches
# (im2col workspaces, activation masks, argmax indices, ...), which makes
# prediction allocation-free beyond the activations themselves.  The flag is
# thread-local because the engine's thread backend trains children
# concurrently: one thread predicting must not disable another thread's
# backward caches.
_INFERENCE_STATE = threading.local()


def is_inference() -> bool:
    """True inside an :func:`inference_mode` block (current thread only)."""
    return getattr(_INFERENCE_STATE, "active", False)


@contextmanager
def inference_mode() -> Iterator[None]:
    """Forward passes inside this context keep no backward caches.

    A ``backward`` call after an inference-mode forward raises the usual
    "backward called before forward" error, exactly as if forward had never
    run -- which is the point: prediction leaves no training state behind.
    """
    previous = is_inference()
    _INFERENCE_STATE.active = True
    try:
        yield
    finally:
        _INFERENCE_STATE.active = previous


class Module:
    """Base class for every layer and composite block.

    Sub-classes implement :meth:`forward` (caching whatever the backward pass
    needs) and :meth:`backward` (returning the gradient with respect to the
    module input and accumulating parameter gradients).  Sub-modules and
    parameters assigned as attributes are discovered automatically, so
    ``parameters()`` / ``state_dict()`` / ``freeze()`` work recursively.
    """

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self._buffers: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self.training = True

    # -- attribute registration -------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        elif name in self.__dict__.get("_buffers", ()):
            # Re-assigning a registered buffer (batch-norm running stats)
            # keeps the registry in sync with the attribute.
            self.__dict__["_buffers"][name] = value
        object.__setattr__(self, name, value)

    def register_module(self, name: str, module: "Module") -> None:
        """Register a sub-module under an explicit name (used by containers)."""
        self._modules[name] = module
        object.__setattr__(self, name, module)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register non-trainable state that belongs to the module (running
        statistics etc.); buffers follow :meth:`astype` casts alongside the
        parameters and stay ordinary attributes for reading and assignment."""
        self.__dict__.setdefault("_buffers", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        """Yield ``(qualified_name, buffer)`` pairs, depth first."""
        for name, value in self._buffers.items():
            yield (f"{prefix}{name}", value)
        for mod_name, module in self._modules.items():
            yield from module.named_buffers(prefix=f"{prefix}{mod_name}.")

    # -- parameter access -------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(qualified_name, parameter)`` pairs, depth first."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for mod_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{mod_name}.")

    def parameters(self) -> List[Parameter]:
        """Return all parameters of this module and its sub-modules."""
        return [param for _, param in self.named_parameters()]

    def trainable_parameters(self) -> List[Parameter]:
        """Return only the parameters the optimiser should update."""
        return [p for p in self.parameters() if p.trainable]

    def num_parameters(self, trainable_only: bool = False) -> int:
        """Total number of scalar parameters."""
        params = self.trainable_parameters() if trainable_only else self.parameters()
        return int(sum(p.size for p in params))

    def modules(self) -> Iterator["Module"]:
        """Yield this module and every sub-module, depth first."""
        yield self
        for module in self._modules.values():
            yield from module.modules()

    def children(self) -> List["Module"]:
        """Return the immediate sub-modules."""
        return list(self._modules.values())

    # -- train / eval / freeze --------------------------------------------------
    def train(self) -> "Module":
        """Put the module (and sub-modules) in training mode."""
        for module in self.modules():
            module.training = True
        return self

    def eval(self) -> "Module":
        """Put the module (and sub-modules) in inference mode."""
        for module in self.modules():
            module.training = False
        return self

    def freeze(self) -> "Module":
        """Mark every parameter as non-trainable (used for frozen header blocks)."""
        for param in self.parameters():
            param.trainable = False
        return self

    def unfreeze(self) -> "Module":
        """Mark every parameter as trainable again."""
        for param in self.parameters():
            param.trainable = True
        return self

    def zero_grad(self) -> None:
        """Clear accumulated gradients on every parameter."""
        for param in self.parameters():
            param.zero_grad()

    # -- precision ---------------------------------------------------------------
    def astype(self, dtype: DtypeLike) -> "Module":
        """Cast every parameter, gradient and buffer to ``dtype`` in place.

        Used by :class:`~repro.nn.trainer.Trainer` to honour
        ``TrainingConfig.precision`` on models that were built under a
        different policy; casting to the current dtype is a no-op.
        """
        resolved = resolve_dtype(dtype)
        for module in self.modules():
            for param in module._parameters.values():
                param.astype(resolved)
            for name, value in module._buffers.items():
                if isinstance(value, np.ndarray) and np.issubdtype(
                    value.dtype, np.floating
                ) and value.dtype != resolved:
                    module.register_buffer(name, value.astype(resolved))
        return self

    @property
    def dtype(self) -> np.dtype:
        """The dtype of the module's parameters (policy default if it has none)."""
        for _, param in self.named_parameters():
            return param.data.dtype
        return resolve_dtype(None)

    # -- state dict --------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Return a copy of every parameter array keyed by qualified name."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray], strict: bool = True) -> None:
        """Load parameter values from ``state`` (as produced by ``state_dict``)."""
        own = dict(self.named_parameters())
        missing = [name for name in own if name not in state]
        unexpected = [name for name in state if name not in own]
        if strict and (missing or unexpected):
            raise KeyError(
                f"state dict mismatch: missing={missing}, unexpected={unexpected}"
            )
        for name, param in own.items():
            if name in state:
                # Cast into the parameter's own dtype (the seed forced
                # float64 here, which silently un-did a float32 policy).
                value = np.asarray(state[name], dtype=param.data.dtype)
                if value.shape != param.data.shape:
                    raise ValueError(
                        f"shape mismatch for '{name}': "
                        f"{value.shape} vs {param.data.shape}"
                    )
                param.data = value.copy()

    # -- forward / backward ------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class Sequential(Module):
    """Run sub-modules in order; backward runs them in reverse."""

    def __init__(self, *modules: Module):
        super().__init__()
        self._order: List[str] = []
        for index, module in enumerate(modules):
            name = f"layer{index}"
            self.register_module(name, module)
            self._order.append(name)

    def append(self, module: Module) -> "Sequential":
        """Add a module to the end of the pipeline."""
        name = f"layer{len(self._order)}"
        self.register_module(name, module)
        self._order.append(name)
        return self

    def __len__(self) -> int:
        return len(self._order)

    def __getitem__(self, index: int) -> Module:
        return self._modules[self._order[index]]

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules[name] for name in self._order)

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = x
        for name in self._order:
            out = self._modules[name].forward(out)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = grad_output
        for name in reversed(self._order):
            grad = self._modules[name].backward(grad)
        return grad

    def forward_collect(self, x: np.ndarray) -> List[np.ndarray]:
        """Forward pass returning the output of every stage.

        Used by the freezing analysis (Figure 3), which compares the
        intermediate feature maps of demographic groups layer by layer.
        """
        outputs: List[np.ndarray] = []
        out = x
        for name in self._order:
            out = self._modules[name].forward(out)
            outputs.append(out)
        return outputs
