"""Loss functions."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.functional import log_softmax, one_hot, softmax


class CrossEntropyLoss:
    """Softmax cross-entropy over integer class labels.

    ``forward`` returns the mean loss; ``backward`` returns the gradient with
    respect to the logits (already divided by the batch size).  Optional
    per-sample weights support the data-balancing experiments, where minority
    samples can be re-weighted instead of duplicated.
    """

    def __init__(self, label_smoothing: float = 0.0):
        if not 0.0 <= label_smoothing < 1.0:
            raise ValueError("label_smoothing must be in [0, 1)")
        self.label_smoothing = label_smoothing
        self._cache_probs: Optional[np.ndarray] = None
        self._cache_targets: Optional[np.ndarray] = None
        self._cache_weights: Optional[np.ndarray] = None

    def forward(
        self,
        logits: np.ndarray,
        labels: np.ndarray,
        sample_weights: Optional[np.ndarray] = None,
    ) -> float:
        if logits.ndim != 2:
            raise ValueError(f"logits must be 2-D (N, classes), got {logits.shape}")
        n, num_classes = logits.shape
        labels = np.asarray(labels, dtype=np.int64)
        if labels.shape != (n,):
            raise ValueError(
                f"labels must have shape ({n},), got {labels.shape}"
            )
        # Targets and weights follow the logits' dtype so float32 training
        # does not silently upcast the whole loss/backward path to float64.
        targets = one_hot(labels, num_classes, dtype=logits.dtype)
        if self.label_smoothing > 0.0:
            targets = (
                targets * (1.0 - self.label_smoothing)
                + self.label_smoothing / num_classes
            )
        if sample_weights is None:
            weights = np.ones(n, dtype=logits.dtype)
        else:
            weights = np.asarray(sample_weights, dtype=logits.dtype)
            if weights.shape != (n,):
                raise ValueError(
                    f"sample_weights must have shape ({n},), got {weights.shape}"
                )
        log_probs = log_softmax(logits, axis=1)
        per_sample = -(targets * log_probs).sum(axis=1)
        total_weight = weights.sum()
        if total_weight <= 0:
            raise ValueError("sample weights must sum to a positive value")
        loss = float((weights * per_sample).sum() / total_weight)

        self._cache_probs = softmax(logits, axis=1)
        self._cache_targets = targets
        self._cache_weights = weights / total_weight
        return loss

    def backward(self) -> np.ndarray:
        if (
            self._cache_probs is None
            or self._cache_targets is None
            or self._cache_weights is None
        ):
            raise RuntimeError("backward called before forward")
        grad = (self._cache_probs - self._cache_targets) * self._cache_weights[:, None]
        self._cache_probs = None
        self._cache_targets = None
        self._cache_weights = None
        return grad

    def __call__(
        self,
        logits: np.ndarray,
        labels: np.ndarray,
        sample_weights: Optional[np.ndarray] = None,
    ) -> float:
        return self.forward(logits, labels, sample_weights)
