"""Global floating-point precision policy for the numpy NN stack.

Every reward in the search loop is paid for by pure-numpy child training, so
the dtype of the hot path is a first-class performance knob: float32 halves
the memory traffic of every convolution, activation and optimizer step and
roughly doubles BLAS GEMM throughput on most CPUs.  The policy here is the
single source of truth for "what dtype does freshly created NN state use":
parameters, initialisers, one-hot targets and generated datasets all resolve
their dtype through :func:`get_default_dtype` unless given one explicitly.

The default is ``float64``, which reproduces the seed stack bit for bit.
Switching the policy (process-wide via :func:`set_default_dtype`, or scoped
via the :func:`default_dtype` context manager) opts new state into float32;
training at a given precision regardless of the ambient policy is handled by
``TrainingConfig.precision``, which casts the model and data at ``fit`` time.

The policy is deliberately process-global rather than thread-local: models
are built in the driving thread (the engine's wave loop) and only *trained*
concurrently, and a per-thread policy would silently diverge between the
parent and worker processes of the ``process`` backend.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional, Union

import numpy as np

DTYPE_NAMES = ("float32", "float64")

DtypeLike = Union[None, str, type, np.dtype]

_DEFAULT_DTYPE = np.dtype(np.float64)


def _as_dtype(dtype: DtypeLike) -> np.dtype:
    resolved = np.dtype(dtype)
    if resolved.name not in DTYPE_NAMES:
        raise ValueError(
            f"unsupported precision {resolved.name!r}; expected one of {DTYPE_NAMES}"
        )
    return resolved


def get_default_dtype() -> np.dtype:
    """The dtype newly created NN state (parameters, targets, data) uses."""
    return _DEFAULT_DTYPE


def set_default_dtype(dtype: DtypeLike) -> np.dtype:
    """Set the process-wide default dtype; returns the previous one."""
    global _DEFAULT_DTYPE
    previous = _DEFAULT_DTYPE
    _DEFAULT_DTYPE = _as_dtype(dtype)  # repro-lint: disable=THR001 -- documented process-wide policy switch, set from the driving thread before training
    return previous


def resolve_dtype(dtype: DtypeLike = None) -> np.dtype:
    """``dtype`` if given (validated), else the current default policy."""
    if dtype is None:
        return _DEFAULT_DTYPE
    return _as_dtype(dtype)


@contextmanager
def default_dtype(dtype: DtypeLike) -> Iterator[np.dtype]:
    """Scoped precision policy; ``None`` leaves the policy untouched."""
    if dtype is None:
        yield _DEFAULT_DTYPE
        return
    previous = set_default_dtype(dtype)
    try:
        yield _DEFAULT_DTYPE
    finally:
        set_default_dtype(previous)


def precision_name(dtype: DtypeLike = None) -> str:
    """Canonical name ("float32"/"float64") of a policy value."""
    return resolve_dtype(dtype).name
