"""Batch normalisation."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import init
from repro.nn.module import Module
from repro.nn.tensor import Parameter


class BatchNorm2d(Module):
    """Batch normalisation over the (N, H, W) axes of NCHW inputs."""

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        if num_features <= 0:
            raise ValueError("num_features must be positive")
        if not 0.0 < momentum <= 1.0:
            raise ValueError("momentum must be in (0, 1]")
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.gamma = Parameter(init.ones((num_features,)), name="gamma")
        self.beta = Parameter(init.zeros((num_features,)), name="beta")
        # Registered buffers: follow Module.astype precision casts and the
        # global dtype policy, like the parameters.
        self.register_buffer("running_mean", init.zeros((num_features,)))
        self.register_buffer("running_var", init.ones((num_features,)))

        self._cache_normalised: Optional[np.ndarray] = None
        self._cache_std: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.num_features:
            raise ValueError(
                f"expected input of shape (N, {self.num_features}, H, W), got {x.shape}"
            )
        centred = None
        if self.training:
            mean = x.mean(axis=(0, 2, 3))
            # Reusing the centred tensor for the variance is bit-identical
            # to np.var (same mean, same subtraction, same pairwise
            # reduction) and saves np.var's two internal passes over x.
            centred = x - mean[None, :, None, None]
            var = (centred * centred).mean(axis=(0, 2, 3))
            self.running_mean = (
                (1 - self.momentum) * self.running_mean + self.momentum * mean
            )
            self.running_var = (
                (1 - self.momentum) * self.running_var + self.momentum * var
            )
        else:
            mean = self.running_mean
            var = self.running_var

        std = np.sqrt(var + self.eps)
        # In-place follow-ups keep the seed's exact arithmetic --
        # (x - mean) / std, then gamma * normalised + beta -- while halving
        # the number of full-size temporaries.
        normalised = centred if centred is not None else x - mean[None, :, None, None]
        normalised /= std[None, :, None, None]
        out = self.gamma.data[None, :, None, None] * normalised
        out += self.beta.data[None, :, None, None]
        if self.training:
            self._cache_normalised = normalised
            self._cache_std = std
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache_normalised is None or self._cache_std is None:
            raise RuntimeError("backward called before a training-mode forward")
        normalised = self._cache_normalised
        std = self._cache_std
        n, _, h, w = grad_output.shape
        count = n * h * w

        self.gamma.accumulate_grad((grad_output * normalised).sum(axis=(0, 2, 3)))
        self.beta.accumulate_grad(grad_output.sum(axis=(0, 2, 3)))

        grad_norm = grad_output * self.gamma.data[None, :, None, None]
        sum_grad = grad_norm.sum(axis=(0, 2, 3), keepdims=True)
        sum_grad_norm = (grad_norm * normalised).sum(axis=(0, 2, 3), keepdims=True)
        # Same expression as the seed -- grad_norm - sum_grad/count
        # - (normalised * sum_grad_norm)/count, all divided by std -- with
        # grad_norm's buffer reused as the output.
        grad_input = grad_norm
        grad_input -= sum_grad / count
        correction = normalised * sum_grad_norm
        correction /= count
        grad_input -= correction
        grad_input /= std[None, :, None, None]

        self._cache_normalised = None
        self._cache_std = None
        return grad_input

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BatchNorm2d({self.num_features})"
