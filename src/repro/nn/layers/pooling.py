"""Pooling layers."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.functional import col2im, im2col
from repro.nn.module import Module, is_inference


class GlobalAvgPool2d(Module):
    """Average over the spatial dimensions, producing (N, C)."""

    def __init__(self) -> None:
        super().__init__()
        self._cache_shape: Optional[tuple] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4:
            raise ValueError(f"expected NCHW input, got shape {x.shape}")
        self._cache_shape = x.shape
        return x.mean(axis=(2, 3))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache_shape is None:
            raise RuntimeError("backward called before forward")
        n, c, h, w = self._cache_shape
        grad = np.broadcast_to(
            grad_output[:, :, None, None], (n, c, h, w)
        ) / float(h * w)
        self._cache_shape = None
        return np.ascontiguousarray(grad)


class MaxPool2d(Module):
    """Max pooling with a square window."""

    def __init__(self, kernel_size: int, stride: Optional[int] = None, padding: int = 0):
        super().__init__()
        if kernel_size <= 0:
            raise ValueError("kernel_size must be positive")
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size
        self.padding = padding
        self._cache_cols: Optional[np.ndarray] = None
        self._cache_argmax: Optional[np.ndarray] = None
        self._cache_input_shape: Optional[tuple] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        k = self.kernel_size
        cols = im2col(x, k, k, self.stride, self.padding)
        n, c, _, _, out_h, out_w = cols.shape
        flat = cols.reshape(n, c, k * k, out_h, out_w)
        argmax = flat.argmax(axis=2)
        out = np.take_along_axis(flat, argmax[:, :, None, :, :], axis=2).squeeze(axis=2)
        if not is_inference():
            self._cache_argmax = argmax
            self._cache_input_shape = x.shape
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache_argmax is None or self._cache_input_shape is None:
            raise RuntimeError("backward called before forward")
        k, stride, padding = self.kernel_size, self.stride, self.padding
        n, c, out_h, out_w = grad_output.shape
        _, _, h, w = self._cache_input_shape
        padded_h, padded_w = h + 2 * padding, w + 2 * padding
        # Scatter each window's gradient straight onto its argmax cell in the
        # (padded) input instead of materialising the dense
        # (n, c, k*k, out_h, out_w) zeros buffer the seed routed through
        # col2im.  The cached argmax encodes the in-window offset; adding the
        # window origin gives absolute padded coordinates, and bincount over
        # the flattened linear indices performs the (deterministic)
        # scatter-add.
        argmax = self._cache_argmax
        rows = argmax // k + (stride * np.arange(out_h))[None, None, :, None]
        cols_ = argmax % k + (stride * np.arange(out_w))[None, None, None, :]
        plane = (
            (np.arange(n)[:, None, None, None] * c + np.arange(c)[None, :, None, None])
            * padded_h
        )
        flat_index = (plane + rows) * padded_w + cols_
        # bincount accumulates in float64; cast back for float32 inputs.
        padded = np.bincount(
            flat_index.ravel(),
            weights=grad_output.ravel(),
            minlength=n * c * padded_h * padded_w,
        ).reshape(n, c, padded_h, padded_w)
        if padded.dtype != grad_output.dtype:
            padded = padded.astype(grad_output.dtype)
        if padding > 0:
            padded = padded[:, :, padding:-padding, padding:-padding]
        self._cache_argmax = None
        self._cache_input_shape = None
        return np.ascontiguousarray(padded)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MaxPool2d(k={self.kernel_size}, s={self.stride})"


class AvgPool2d(Module):
    """Average pooling with a square window."""

    def __init__(self, kernel_size: int, stride: Optional[int] = None, padding: int = 0):
        super().__init__()
        if kernel_size <= 0:
            raise ValueError("kernel_size must be positive")
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size
        self.padding = padding
        self._cache_input_shape: Optional[tuple] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        k = self.kernel_size
        cols = im2col(x, k, k, self.stride, self.padding)
        self._cache_input_shape = x.shape
        return cols.mean(axis=(2, 3))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache_input_shape is None:
            raise RuntimeError("backward called before forward")
        k = self.kernel_size
        n, c, out_h, out_w = grad_output.shape
        cols = np.broadcast_to(
            grad_output[:, :, None, None, :, :], (n, c, k, k, out_h, out_w)
        ) / float(k * k)
        grad_input = col2im(
            np.ascontiguousarray(cols),
            self._cache_input_shape,
            k,
            k,
            self.stride,
            self.padding,
        )
        self._cache_input_shape = None
        return grad_input

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AvgPool2d(k={self.kernel_size}, s={self.stride})"
