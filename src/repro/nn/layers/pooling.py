"""Pooling layers."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.functional import col2im, im2col
from repro.nn.module import Module


class GlobalAvgPool2d(Module):
    """Average over the spatial dimensions, producing (N, C)."""

    def __init__(self) -> None:
        super().__init__()
        self._cache_shape: Optional[tuple] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4:
            raise ValueError(f"expected NCHW input, got shape {x.shape}")
        self._cache_shape = x.shape
        return x.mean(axis=(2, 3))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache_shape is None:
            raise RuntimeError("backward called before forward")
        n, c, h, w = self._cache_shape
        grad = np.broadcast_to(
            grad_output[:, :, None, None], (n, c, h, w)
        ) / float(h * w)
        self._cache_shape = None
        return np.ascontiguousarray(grad)


class MaxPool2d(Module):
    """Max pooling with a square window."""

    def __init__(self, kernel_size: int, stride: Optional[int] = None, padding: int = 0):
        super().__init__()
        if kernel_size <= 0:
            raise ValueError("kernel_size must be positive")
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size
        self.padding = padding
        self._cache_cols: Optional[np.ndarray] = None
        self._cache_argmax: Optional[np.ndarray] = None
        self._cache_input_shape: Optional[tuple] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        k = self.kernel_size
        cols = im2col(x, k, k, self.stride, self.padding)
        n, c, _, _, out_h, out_w = cols.shape
        flat = cols.reshape(n, c, k * k, out_h, out_w)
        argmax = flat.argmax(axis=2)
        out = np.take_along_axis(flat, argmax[:, :, None, :, :], axis=2).squeeze(axis=2)
        self._cache_argmax = argmax
        self._cache_input_shape = x.shape
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache_argmax is None or self._cache_input_shape is None:
            raise RuntimeError("backward called before forward")
        k = self.kernel_size
        n, c, out_h, out_w = grad_output.shape
        flat = np.zeros((n, c, k * k, out_h, out_w), dtype=grad_output.dtype)
        np.put_along_axis(
            flat, self._cache_argmax[:, :, None, :, :], grad_output[:, :, None, :, :], axis=2
        )
        cols = flat.reshape(n, c, k, k, out_h, out_w)
        grad_input = col2im(
            cols, self._cache_input_shape, k, k, self.stride, self.padding
        )
        self._cache_argmax = None
        self._cache_input_shape = None
        return grad_input

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MaxPool2d(k={self.kernel_size}, s={self.stride})"


class AvgPool2d(Module):
    """Average pooling with a square window."""

    def __init__(self, kernel_size: int, stride: Optional[int] = None, padding: int = 0):
        super().__init__()
        if kernel_size <= 0:
            raise ValueError("kernel_size must be positive")
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size
        self.padding = padding
        self._cache_input_shape: Optional[tuple] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        k = self.kernel_size
        cols = im2col(x, k, k, self.stride, self.padding)
        self._cache_input_shape = x.shape
        return cols.mean(axis=(2, 3))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache_input_shape is None:
            raise RuntimeError("backward called before forward")
        k = self.kernel_size
        n, c, out_h, out_w = grad_output.shape
        cols = np.broadcast_to(
            grad_output[:, :, None, None, :, :], (n, c, k, k, out_h, out_w)
        ) / float(k * k)
        grad_input = col2im(
            np.ascontiguousarray(cols),
            self._cache_input_shape,
            k,
            k,
            self.stride,
            self.padding,
        )
        self._cache_input_shape = None
        return grad_input

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AvgPool2d(k={self.kernel_size}, s={self.stride})"
