"""Activation functions used by the block library and the reference zoo."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.module import Module, is_inference


class ReLU(Module):
    """Rectified linear unit."""

    def __init__(self) -> None:
        super().__init__()
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        mask = x > 0
        if not is_inference():
            self._mask = mask
        return x * mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        grad = grad_output * self._mask
        self._mask = None
        return grad


class ReLU6(Module):
    """ReLU clipped at 6, as used by MobileNetV2/MnasNet blocks."""

    def __init__(self) -> None:
        super().__init__()
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not is_inference():
            self._mask = (x > 0) & (x < 6.0)
        return np.clip(x, 0.0, 6.0)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        grad = grad_output * self._mask
        self._mask = None
        return grad


class HardSigmoid(Module):
    """Piecewise-linear sigmoid approximation: ``relu6(x + 3) / 6``."""

    def __init__(self) -> None:
        super().__init__()
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        shifted = x + 3.0
        if not is_inference():
            self._mask = (shifted > 0) & (shifted < 6.0)
        return np.clip(shifted, 0.0, 6.0) / 6.0

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        grad = grad_output * self._mask / 6.0
        self._mask = None
        return grad


class HardSwish(Module):
    """``x * relu6(x + 3) / 6`` — the MobileNetV3 activation."""

    def __init__(self) -> None:
        super().__init__()
        self._input: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not is_inference():
            self._input = x
        return x * np.clip(x + 3.0, 0.0, 6.0) / 6.0

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input is None:
            raise RuntimeError("backward called before forward")
        x = self._input
        # Derivative: 0 for x <= -3; (2x + 3)/6 for -3 < x < 3; 1 for x >= 3.
        grad_local = np.where(
            x <= -3.0, 0.0, np.where(x >= 3.0, 1.0, (2.0 * x + 3.0) / 6.0)
        )
        self._input = None
        return grad_output * grad_local


class Identity(Module):
    """Pass-through layer (used for optional skips and disabled components)."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output
