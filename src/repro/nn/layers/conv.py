"""Standard and depthwise 2-D convolutions.

Both layers lower the convolution to ``im2col`` + dense contractions.  The
hot path is tuned for the pure-numpy setting:

* ``im2col`` is the strided zero-copy unfold from
  :mod:`repro.nn.functional`, copied into a per-layer workspace buffer that
  is reused across forward passes (the patch tensor dominates allocation
  cost at child-training scale),
* the standard convolution contracts with batched 2-D BLAS ``matmul`` calls
  instead of per-call ``einsum(..., optimize=True)`` path searches,
* the depthwise convolution keeps its (non-BLAS-shaped) per-channel
  contraction as einsum but with the contraction path computed once and
  cached (:func:`repro.nn.functional.einsum_cached`),
* inside :func:`repro.nn.module.inference_mode` no backward caches are kept.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import init
from repro.nn.functional import col2im, conv_output_size, einsum_cached, im2col
from repro.nn.module import Module, is_inference
from repro.nn.tensor import Parameter
from repro.utils.rng import SeedLike


def _unfold_into_workspace(layer: Module, x: np.ndarray, kernel: int) -> np.ndarray:
    """``im2col`` into the layer's reusable workspace buffer.

    The training workspace is safe to reuse across training forwards because
    it is consumed by the matching ``backward`` (or discarded) before the
    next forward overwrites it.  Inference-mode forwards keep a *separate*
    workspace: a training forward may still be awaiting its backward -- its
    cached patch tensor is a view of ``_workspace`` -- so steady-state
    serving reuses ``_inference_workspace`` instead of allocating the patch
    tensor (the dominant allocation of a forward pass) on every call.
    Neither buffer escapes the forward that fills it, so identical-shape
    batches do zero large allocations after the first call.
    """
    n, c, h, w = x.shape
    stride, padding = layer.stride, layer.padding
    out_h = conv_output_size(h, kernel, stride, padding)
    out_w = conv_output_size(w, kernel, stride, padding)
    shape = (n, c, kernel, kernel, out_h, out_w)
    if is_inference():
        ws = layer._inference_workspace
        if ws is None or ws.shape != shape or ws.dtype != x.dtype:
            ws = np.empty(shape, dtype=x.dtype)
            layer._inference_workspace = ws
        return im2col(x, kernel, kernel, stride, padding, out=ws)
    ws = layer._workspace
    if ws is None or ws.shape != shape or ws.dtype != x.dtype:
        ws = np.empty(shape, dtype=x.dtype)
        layer._workspace = ws
    return im2col(x, kernel, kernel, stride, padding, out=ws)


class Conv2d(Module):
    """2-D convolution with square kernels.

    Input and output are NCHW.  ``padding`` defaults to "same"-style padding
    (``kernel_size // 2``) so that stride-1 convolutions preserve the spatial
    size, matching the behaviour assumed by the block library.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: Optional[int] = None,
        bias: bool = True,
        rng: SeedLike = None,
    ):
        super().__init__()
        if in_channels <= 0 or out_channels <= 0:
            raise ValueError("channel counts must be positive")
        if kernel_size <= 0 or stride <= 0:
            raise ValueError("kernel_size and stride must be positive")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = kernel_size // 2 if padding is None else padding

        fan_in = in_channels * kernel_size * kernel_size
        self.weight = Parameter(
            init.he_normal(
                (out_channels, in_channels, kernel_size, kernel_size), fan_in, rng
            ),
            name="weight",
        )
        self.use_bias = bias
        if bias:
            self.bias = Parameter(init.zeros((out_channels,)), name="bias")

        self._workspace: Optional[np.ndarray] = None
        self._inference_workspace: Optional[np.ndarray] = None
        self._cache_cols: Optional[np.ndarray] = None
        self._cache_input_shape: Optional[tuple] = None

    def output_shape(self, height: int, width: int) -> tuple:
        """Spatial output shape for an input of ``height`` x ``width``."""
        out_h = conv_output_size(height, self.kernel_size, self.stride, self.padding)
        out_w = conv_output_size(width, self.kernel_size, self.stride, self.padding)
        return (self.out_channels, out_h, out_w)

    @property
    def _pointwise(self) -> bool:
        """1x1 / stride-1 / unpadded: the unfold is the identity reshape."""
        return self.kernel_size == 1 and self.stride == 1 and self.padding == 0

    def _cols(self, x: np.ndarray) -> np.ndarray:
        """Unfold ``x``; pointwise convolutions -- the majority of a
        MobileNet-style child -- skip the copy entirely: their patch tensor
        *is* the input, reshaped."""
        if self._pointwise:
            n, c, h, w = x.shape
            if not x.flags.c_contiguous:
                x = np.ascontiguousarray(x)
            return x.reshape(n, c, 1, 1, h, w)
        return _unfold_into_workspace(self, x, self.kernel_size)

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        if c != self.in_channels:
            raise ValueError(
                f"expected {self.in_channels} input channels, got {c}"
            )
        k = self.kernel_size
        cols = self._cols(x)
        n_, _, _, _, out_h, out_w = cols.shape
        cols_mat = cols.reshape(n_, self.in_channels * k * k, out_h * out_w)
        weight_mat = self.weight.data.reshape(self.out_channels, -1)
        # (o, f) @ (n, f, l) -> (n, o, l): one BLAS GEMM per sample.
        out = np.matmul(weight_mat, cols_mat)
        out = out.reshape(n_, self.out_channels, out_h, out_w)
        if self.use_bias:
            out += self.bias.data[None, :, None, None]
        if not is_inference():
            self._cache_cols = cols_mat
            self._cache_input_shape = x.shape
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache_cols is None or self._cache_input_shape is None:
            raise RuntimeError("backward called before forward")
        n, _, out_h, out_w = grad_output.shape
        k = self.kernel_size
        grad_mat = grad_output.reshape(n, self.out_channels, out_h * out_w)

        # Contract over (n, l) in a single GEMM: at child-training scale the
        # per-sample matrices are tiny, so one big BLAS call beats a batched
        # multiply followed by a reduction over the batch axis.
        weight_grad = np.tensordot(
            grad_mat, self._cache_cols, axes=([0, 2], [0, 2])
        ).reshape(self.weight.data.shape)
        self.weight.accumulate_grad(weight_grad)
        if self.use_bias:
            self.bias.accumulate_grad(grad_mat.sum(axis=(0, 2)))

        weight_mat = self.weight.data.reshape(self.out_channels, -1)
        # (f, o) @ (n, o, l) -> (n, f, l)
        grad_cols = np.matmul(weight_mat.T, grad_mat)
        if self._pointwise:
            # The adjoint of a reshape is a reshape: no scatter-add needed.
            grad_input = grad_cols.reshape(self._cache_input_shape)
        else:
            grad_cols = grad_cols.reshape(n, self.in_channels, k, k, out_h, out_w)
            grad_input = col2im(
                grad_cols, self._cache_input_shape, k, k, self.stride, self.padding
            )
        self._cache_cols = None
        self._cache_input_shape = None
        return grad_input

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Conv2d({self.in_channels}, {self.out_channels}, "
            f"k={self.kernel_size}, s={self.stride}, p={self.padding})"
        )


class DepthwiseConv2d(Module):
    """Depthwise 2-D convolution (one filter per input channel).

    This is the workhorse of the MobileNet-style MB/DB blocks.  The channel
    multiplier is fixed to 1, matching MobileNetV2.
    """

    def __init__(
        self,
        channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: Optional[int] = None,
        bias: bool = False,
        rng: SeedLike = None,
    ):
        super().__init__()
        if channels <= 0:
            raise ValueError("channels must be positive")
        if kernel_size <= 0 or stride <= 0:
            raise ValueError("kernel_size and stride must be positive")
        self.channels = channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = kernel_size // 2 if padding is None else padding

        fan_in = kernel_size * kernel_size
        self.weight = Parameter(
            init.he_normal((channels, kernel_size, kernel_size), fan_in, rng),
            name="weight",
        )
        self.use_bias = bias
        if bias:
            self.bias = Parameter(init.zeros((channels,)), name="bias")

        self._workspace: Optional[np.ndarray] = None
        self._inference_workspace: Optional[np.ndarray] = None
        self._cache_cols: Optional[np.ndarray] = None
        self._cache_input_shape: Optional[tuple] = None

    def output_shape(self, height: int, width: int) -> tuple:
        out_h = conv_output_size(height, self.kernel_size, self.stride, self.padding)
        out_w = conv_output_size(width, self.kernel_size, self.stride, self.padding)
        return (self.channels, out_h, out_w)

    def _cols(self, x: np.ndarray) -> np.ndarray:
        return _unfold_into_workspace(self, x, self.kernel_size)

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        if c != self.channels:
            raise ValueError(f"expected {self.channels} channels, got {c}")
        k = self.kernel_size
        cols = self._cols(x)
        out_h, out_w = cols.shape[4], cols.shape[5]
        # Per-channel contraction over the k*k taps as a broadcast batched
        # mat-vec: (1, c, 1, k*k) @ (n, c, k*k, l) -> (n, c, 1, l).
        cols_mat = cols.reshape(n, c, k * k, out_h * out_w)
        weight_vec = self.weight.data.reshape(1, c, 1, k * k)
        out = np.matmul(weight_vec, cols_mat).reshape(n, c, out_h, out_w)
        if self.use_bias:
            out += self.bias.data[None, :, None, None]
        if not is_inference():
            self._cache_cols = cols
            self._cache_input_shape = x.shape
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache_cols is None or self._cache_input_shape is None:
            raise RuntimeError("backward called before forward")
        k = self.kernel_size
        weight_grad = einsum_cached(
            "nchw,ncijhw->cij", grad_output, self._cache_cols
        )
        self.weight.accumulate_grad(weight_grad)
        if self.use_bias:
            self.bias.accumulate_grad(grad_output.sum(axis=(0, 2, 3)))

        n, _, out_h, out_w = grad_output.shape
        _, c, h, w = self._cache_input_shape
        stride, padding = self.stride, self.padding

        if grad_output.dtype == np.float32 and stride == 1:
            # float32 fast path: the input gradient of a stride-1 depthwise
            # convolution is itself a depthwise correlation of the (edge-
            # padded) output gradient with the flipped kernel, so it reduces
            # to one more im2col + batched mat-vec instead of k*k strided
            # scatter-adds.  This reassociates the per-cell sums, which is
            # why it is reserved for float32 -- float64 keeps the seed's
            # exact addition order below (bit-for-bit legacy parity).
            grad_input = self._transposed_correlation(grad_output, h, w)
            self._cache_cols = None
            self._cache_input_shape = None
            return grad_input

        # Fused outer-product + fold: the seed materialised the full
        # (n, c, k, k, out_h, out_w) patch-gradient tensor and then col2im'd
        # it; streaming one (weight-tap x grad_output) product per offset
        # into the padded input skips that tensor entirely.  Products and
        # per-cell addition order match the seed's col2im loop exactly.
        padded = np.zeros(
            (n, c, h + 2 * padding, w + 2 * padding), dtype=grad_output.dtype
        )
        scratch = np.empty_like(grad_output)
        for i in range(k):
            i_end = i + stride * out_h
            for j in range(k):
                j_end = j + stride * out_w
                np.multiply(
                    grad_output,
                    self.weight.data[None, :, i, j, None, None],
                    out=scratch,
                )
                padded[:, :, i:i_end:stride, j:j_end:stride] += scratch
        # Like the seed's col2im, the unpadded gradient is returned as a view.
        grad_input = (
            padded[:, :, padding:-padding, padding:-padding]
            if padding > 0
            else padded
        )
        self._cache_cols = None
        self._cache_input_shape = None
        return grad_input

    def _transposed_correlation(
        self, grad_output: np.ndarray, h: int, w: int
    ) -> np.ndarray:
        """Stride-1 input gradient as a correlation with the flipped kernel.

        ``grad_input[y, x] = sum_ij w[i, j] * g[y + p - i, x + p - j]``, so
        padding ``g`` by ``k - 1 - p`` turns the fold into a plain stride-1
        depthwise convolution with the spatially flipped weights.
        """
        n, c = grad_output.shape[0], self.channels
        k, padding = self.kernel_size, self.padding
        pad = k - 1 - padding
        if pad > 0:
            grad_output = np.pad(
                grad_output, ((0, 0), (0, 0), (pad, pad), (pad, pad))
            )
        elif pad < 0:
            grad_output = grad_output[:, :, -pad:pad, -pad:pad]
        cols = im2col(grad_output, k, k, 1, 0)
        flipped = np.ascontiguousarray(self.weight.data[:, ::-1, ::-1])
        grad_input = np.matmul(
            flipped.reshape(1, c, 1, k * k), cols.reshape(n, c, k * k, h * w)
        )
        return grad_input.reshape(n, c, h, w)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DepthwiseConv2d({self.channels}, k={self.kernel_size}, "
            f"s={self.stride}, p={self.padding})"
        )
