"""Standard and depthwise 2-D convolutions."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import init
from repro.nn.functional import col2im, conv_output_size, im2col
from repro.nn.module import Module
from repro.nn.tensor import Parameter
from repro.utils.rng import SeedLike


class Conv2d(Module):
    """2-D convolution with square kernels.

    Input and output are NCHW.  ``padding`` defaults to "same"-style padding
    (``kernel_size // 2``) so that stride-1 convolutions preserve the spatial
    size, matching the behaviour assumed by the block library.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: Optional[int] = None,
        bias: bool = True,
        rng: SeedLike = None,
    ):
        super().__init__()
        if in_channels <= 0 or out_channels <= 0:
            raise ValueError("channel counts must be positive")
        if kernel_size <= 0 or stride <= 0:
            raise ValueError("kernel_size and stride must be positive")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = kernel_size // 2 if padding is None else padding

        fan_in = in_channels * kernel_size * kernel_size
        self.weight = Parameter(
            init.he_normal(
                (out_channels, in_channels, kernel_size, kernel_size), fan_in, rng
            ),
            name="weight",
        )
        self.use_bias = bias
        if bias:
            self.bias = Parameter(init.zeros((out_channels,)), name="bias")

        self._cache_cols: Optional[np.ndarray] = None
        self._cache_input_shape: Optional[tuple] = None

    def output_shape(self, height: int, width: int) -> tuple:
        """Spatial output shape for an input of ``height`` x ``width``."""
        out_h = conv_output_size(height, self.kernel_size, self.stride, self.padding)
        out_w = conv_output_size(width, self.kernel_size, self.stride, self.padding)
        return (self.out_channels, out_h, out_w)

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        if c != self.in_channels:
            raise ValueError(
                f"expected {self.in_channels} input channels, got {c}"
            )
        k = self.kernel_size
        cols = im2col(x, k, k, self.stride, self.padding)
        n_, _, _, _, out_h, out_w = cols.shape
        cols_mat = cols.reshape(n_, self.in_channels * k * k, out_h * out_w)
        weight_mat = self.weight.data.reshape(self.out_channels, -1)
        out = np.einsum("of,nfl->nol", weight_mat, cols_mat, optimize=True)
        out = out.reshape(n_, self.out_channels, out_h, out_w)
        if self.use_bias:
            out = out + self.bias.data[None, :, None, None]
        self._cache_cols = cols_mat
        self._cache_input_shape = x.shape
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache_cols is None or self._cache_input_shape is None:
            raise RuntimeError("backward called before forward")
        n, _, out_h, out_w = grad_output.shape
        k = self.kernel_size
        grad_mat = grad_output.reshape(n, self.out_channels, out_h * out_w)

        weight_grad = np.einsum(
            "nol,nfl->of", grad_mat, self._cache_cols, optimize=True
        ).reshape(self.weight.data.shape)
        self.weight.accumulate_grad(weight_grad)
        if self.use_bias:
            self.bias.accumulate_grad(grad_mat.sum(axis=(0, 2)))

        weight_mat = self.weight.data.reshape(self.out_channels, -1)
        grad_cols = np.einsum("of,nol->nfl", weight_mat, grad_mat, optimize=True)
        grad_cols = grad_cols.reshape(n, self.in_channels, k, k, out_h, out_w)
        grad_input = col2im(
            grad_cols, self._cache_input_shape, k, k, self.stride, self.padding
        )
        self._cache_cols = None
        self._cache_input_shape = None
        return grad_input

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Conv2d({self.in_channels}, {self.out_channels}, "
            f"k={self.kernel_size}, s={self.stride}, p={self.padding})"
        )


class DepthwiseConv2d(Module):
    """Depthwise 2-D convolution (one filter per input channel).

    This is the workhorse of the MobileNet-style MB/DB blocks.  The channel
    multiplier is fixed to 1, matching MobileNetV2.
    """

    def __init__(
        self,
        channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: Optional[int] = None,
        bias: bool = False,
        rng: SeedLike = None,
    ):
        super().__init__()
        if channels <= 0:
            raise ValueError("channels must be positive")
        if kernel_size <= 0 or stride <= 0:
            raise ValueError("kernel_size and stride must be positive")
        self.channels = channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = kernel_size // 2 if padding is None else padding

        fan_in = kernel_size * kernel_size
        self.weight = Parameter(
            init.he_normal((channels, kernel_size, kernel_size), fan_in, rng),
            name="weight",
        )
        self.use_bias = bias
        if bias:
            self.bias = Parameter(init.zeros((channels,)), name="bias")

        self._cache_cols: Optional[np.ndarray] = None
        self._cache_input_shape: Optional[tuple] = None

    def output_shape(self, height: int, width: int) -> tuple:
        out_h = conv_output_size(height, self.kernel_size, self.stride, self.padding)
        out_w = conv_output_size(width, self.kernel_size, self.stride, self.padding)
        return (self.channels, out_h, out_w)

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        if c != self.channels:
            raise ValueError(f"expected {self.channels} channels, got {c}")
        k = self.kernel_size
        cols = im2col(x, k, k, self.stride, self.padding)
        out = np.einsum("cij,ncijhw->nchw", self.weight.data, cols, optimize=True)
        if self.use_bias:
            out = out + self.bias.data[None, :, None, None]
        self._cache_cols = cols
        self._cache_input_shape = x.shape
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache_cols is None or self._cache_input_shape is None:
            raise RuntimeError("backward called before forward")
        k = self.kernel_size
        weight_grad = np.einsum(
            "nchw,ncijhw->cij", grad_output, self._cache_cols, optimize=True
        )
        self.weight.accumulate_grad(weight_grad)
        if self.use_bias:
            self.bias.accumulate_grad(grad_output.sum(axis=(0, 2, 3)))

        grad_cols = np.einsum(
            "cij,nchw->ncijhw", self.weight.data, grad_output, optimize=True
        )
        grad_input = col2im(
            grad_cols, self._cache_input_shape, k, k, self.stride, self.padding
        )
        self._cache_cols = None
        self._cache_input_shape = None
        return grad_input

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DepthwiseConv2d({self.channels}, k={self.kernel_size}, "
            f"s={self.stride}, p={self.padding})"
        )
