"""Fully-connected layer."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import init
from repro.nn.module import Module, is_inference
from repro.nn.tensor import Parameter
from repro.utils.rng import SeedLike


class Linear(Module):
    """Affine map ``y = x W^T + b`` on 2-D inputs of shape (N, in_features)."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: SeedLike = None,
    ):
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("feature counts must be positive")
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            init.xavier_uniform((out_features, in_features), in_features, out_features, rng),
            name="weight",
        )
        self.use_bias = bias
        if bias:
            self.bias = Parameter(init.zeros((out_features,)), name="bias")
        self._cache_input: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"expected input of shape (N, {self.in_features}), got {x.shape}"
            )
        if not is_inference():
            self._cache_input = x
        out = x @ self.weight.data.T
        if self.use_bias:
            out = out + self.bias.data[None, :]
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache_input is None:
            raise RuntimeError("backward called before forward")
        self.weight.accumulate_grad(grad_output.T @ self._cache_input)
        if self.use_bias:
            self.bias.accumulate_grad(grad_output.sum(axis=0))
        grad_input = grad_output @ self.weight.data
        self._cache_input = None
        return grad_input

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Linear({self.in_features}, {self.out_features})"
