"""Flatten layer."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.module import Module


class Flatten(Module):
    """Collapse all non-batch dimensions into one."""

    def __init__(self) -> None:
        super().__init__()
        self._cache_shape: Optional[tuple] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._cache_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache_shape is None:
            raise RuntimeError("backward called before forward")
        grad = grad_output.reshape(self._cache_shape)
        self._cache_shape = None
        return grad
