"""Squeeze-and-excitation layer (used by the MobileNetV3 descriptors)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import init
from repro.nn.module import Module, is_inference
from repro.nn.tensor import Parameter
from repro.utils.rng import SeedLike, spawn_rngs


class SqueezeExcite(Module):
    """Channel re-weighting: GAP -> FC -> ReLU -> FC -> hard-sigmoid -> scale."""

    def __init__(self, channels: int, hidden: int, rng: SeedLike = None):
        super().__init__()
        if channels <= 0 or hidden <= 0:
            raise ValueError("channels and hidden must be positive")
        self.channels = channels
        self.hidden = hidden
        rngs = spawn_rngs(rng, 2)
        self.w1 = Parameter(
            init.xavier_uniform((hidden, channels), channels, hidden, rngs[0]),
            name="w1",
        )
        self.b1 = Parameter(init.zeros((hidden,)), name="b1")
        self.w2 = Parameter(
            init.xavier_uniform((channels, hidden), hidden, channels, rngs[1]),
            name="w2",
        )
        self.b2 = Parameter(init.zeros((channels,)), name="b2")
        self._cache: Optional[dict] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.channels:
            raise ValueError(
                f"expected input of shape (N, {self.channels}, H, W), got {x.shape}"
            )
        pooled = x.mean(axis=(2, 3))
        pre1 = pooled @ self.w1.data.T + self.b1.data
        hidden = np.maximum(pre1, 0.0)
        pre2 = hidden @ self.w2.data.T + self.b2.data
        scale = np.clip(pre2 + 3.0, 0.0, 6.0) / 6.0
        out = x * scale[:, :, None, None]
        if is_inference():
            return out
        self._cache = {
            "x": x,
            "pooled": pooled,
            "pre1": pre1,
            "hidden": hidden,
            "pre2": pre2,
            "scale": scale,
        }
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        cache = self._cache
        x = cache["x"]
        scale = cache["scale"]
        n, c, h, w = x.shape

        grad_scale = (grad_output * x).sum(axis=(2, 3))
        grad_x = grad_output * scale[:, :, None, None]

        hsig_mask = ((cache["pre2"] + 3.0) > 0) & ((cache["pre2"] + 3.0) < 6.0)
        grad_pre2 = grad_scale * hsig_mask / 6.0
        self.w2.accumulate_grad(grad_pre2.T @ cache["hidden"])
        self.b2.accumulate_grad(grad_pre2.sum(axis=0))
        grad_hidden = grad_pre2 @ self.w2.data

        grad_pre1 = grad_hidden * (cache["pre1"] > 0)
        self.w1.accumulate_grad(grad_pre1.T @ cache["pooled"])
        self.b1.accumulate_grad(grad_pre1.sum(axis=0))
        grad_pooled = grad_pre1 @ self.w1.data

        grad_x = grad_x + grad_pooled[:, :, None, None] / float(h * w)
        self._cache = None
        return grad_x

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SqueezeExcite({self.channels}, hidden={self.hidden})"
