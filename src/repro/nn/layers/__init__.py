"""Layer implementations for the numpy deep-learning framework."""

from repro.nn.layers.conv import Conv2d, DepthwiseConv2d
from repro.nn.layers.linear import Linear
from repro.nn.layers.norm import BatchNorm2d
from repro.nn.layers.activation import ReLU, ReLU6, HardSwish, HardSigmoid, Identity
from repro.nn.layers.pooling import GlobalAvgPool2d, MaxPool2d, AvgPool2d
from repro.nn.layers.flatten import Flatten
from repro.nn.layers.dropout import Dropout
from repro.nn.layers.squeeze_excite import SqueezeExcite

__all__ = [
    "SqueezeExcite",
    "Conv2d",
    "DepthwiseConv2d",
    "Linear",
    "BatchNorm2d",
    "ReLU",
    "ReLU6",
    "HardSwish",
    "HardSigmoid",
    "Identity",
    "GlobalAvgPool2d",
    "MaxPool2d",
    "AvgPool2d",
    "Flatten",
    "Dropout",
]
