"""Inverted dropout."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.module import Module
from repro.utils.rng import SeedLike, new_rng


class Dropout(Module):
    """Inverted dropout: active only in training mode."""

    def __init__(self, rate: float = 0.2, rng: SeedLike = None):
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = new_rng(rng)
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_output
        grad = grad_output * self._mask
        self._mask = None
        return grad

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Dropout(rate={self.rate})"
