"""Edge-device hardware models.

The paper measures inference latency of every network on a Raspberry Pi 4
and an Odroid XU-4 running vanilla PyTorch.  Those boards are not available
here, so :mod:`repro.hardware` provides an analytic latency model with
per-device profiles.  The profiles are calibrated against the latencies the
paper reports (see :func:`repro.hardware.calibration.fit_device_profile`), so
the *relative* behaviour that drives the paper's conclusions is preserved:
depthwise-separable networks are memory-bound and comparatively slow on these
boards, while dense ResNet-style convolutions achieve much higher effective
throughput.
"""

from repro.hardware.device import (
    DeviceProfile,
    RASPBERRY_PI_4,
    ODROID_XU4,
    get_device,
    list_devices,
)
from repro.hardware.latency import LatencyEstimator, estimate_latency_ms
from repro.hardware.storage import storage_mb, peak_activation_mb
from repro.hardware.constraints import HardwareSpec, SoftwareSpec, DesignSpec
from repro.hardware.calibration import fit_device_profile

__all__ = [
    "DeviceProfile",
    "RASPBERRY_PI_4",
    "ODROID_XU4",
    "get_device",
    "list_devices",
    "LatencyEstimator",
    "estimate_latency_ms",
    "storage_mb",
    "peak_activation_mb",
    "HardwareSpec",
    "SoftwareSpec",
    "DesignSpec",
    "fit_device_profile",
]
