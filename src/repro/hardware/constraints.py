"""Design specifications: hardware (timing) and software (accuracy) constraints."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.hardware.device import DeviceProfile, RASPBERRY_PI_4


@dataclass(frozen=True)
class HardwareSpec:
    """Target device plus timing constraint ``L(H, N) <= TC``."""

    device: DeviceProfile = RASPBERRY_PI_4
    timing_constraint_ms: float = 1500.0
    max_storage_mb: Optional[float] = None

    def __post_init__(self) -> None:
        if self.timing_constraint_ms <= 0:
            raise ValueError("timing_constraint_ms must be positive")
        if self.max_storage_mb is not None and self.max_storage_mb <= 0:
            raise ValueError("max_storage_mb must be positive when given")


@dataclass(frozen=True)
class SoftwareSpec:
    """Minimum acceptable overall accuracy ``A(f, D) >= AC``."""

    accuracy_constraint: float = 0.81

    def __post_init__(self) -> None:
        if not 0.0 <= self.accuracy_constraint <= 1.0:
            raise ValueError("accuracy_constraint must be in [0, 1]")


@dataclass(frozen=True)
class DesignSpec:
    """The combined specification handed to the NAS framework."""

    hardware: HardwareSpec = HardwareSpec()
    software: SoftwareSpec = SoftwareSpec()

    @property
    def timing_constraint_ms(self) -> float:
        return self.hardware.timing_constraint_ms

    @property
    def accuracy_constraint(self) -> float:
        return self.software.accuracy_constraint
