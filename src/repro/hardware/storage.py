"""Storage and memory accounting."""

from __future__ import annotations

from typing import Optional

from repro.zoo.descriptors import ArchitectureDescriptor, BYTES_PER_PARAM


def storage_mb(descriptor: ArchitectureDescriptor) -> float:
    """Model storage footprint in MB (float32 weights)."""
    return descriptor.storage_mb()


def peak_activation_mb(
    descriptor: ArchitectureDescriptor, resolution: Optional[int] = None
) -> float:
    """Peak single-operation activation footprint in MB.

    A coarse upper bound on working-set size: the largest input+output
    activation pair of any primitive operation, in float32.
    """
    peak_elems = 0.0
    for _, op in descriptor.walk_op_costs(resolution):
        peak_elems = max(peak_elems, op.input_elems + op.output_elems)
    return peak_elems * BYTES_PER_PARAM / 1e6


def fits_in_memory(
    descriptor: ArchitectureDescriptor,
    memory_mb: float,
    resolution: Optional[int] = None,
) -> bool:
    """Whether weights plus peak activations fit in ``memory_mb``."""
    if memory_mb <= 0:
        raise ValueError("memory_mb must be positive")
    total = storage_mb(descriptor) + peak_activation_mb(descriptor, resolution)
    return total <= memory_mb
