"""Fit device-profile coefficients against measured (or published) latencies.

The built-in Raspberry Pi 4 and Odroid XU-4 profiles were produced with this
module, using the latencies the paper reports in Tables 1 and 3 as the
calibration targets.  The same function can re-calibrate the model against
real measurements if a physical board is available.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from repro.hardware.device import DeviceProfile
from repro.zoo.descriptors import ArchitectureDescriptor


def _feature_vector(descriptor: ArchitectureDescriptor) -> np.ndarray:
    """Per-network features: dense / pointwise / depthwise MACs, elements, #ops."""
    conv_macs = 0.0
    pw_macs = 0.0
    dw_macs = 0.0
    elements = 0.0
    num_ops = 0.0
    for _, op in descriptor.walk_op_costs():
        if op.kind == "dwconv":
            dw_macs += op.macs
        elif op.kind == "pwconv":
            pw_macs += op.macs
        elif op.kind in ("conv", "linear"):
            conv_macs += op.macs
        elements += op.output_elems
        num_ops += 1.0
    return np.array([conv_macs, pw_macs, dw_macs, elements, num_ops])


def fit_device_profile(
    name: str,
    measurements: Mapping[str, float],
    descriptors: Mapping[str, ArchitectureDescriptor],
    memory_mb: float = 1024.0,
) -> Tuple[DeviceProfile, Dict[str, float]]:
    """Fit a :class:`DeviceProfile` to measured latencies.

    ``measurements`` maps architecture names to milliseconds; ``descriptors``
    maps the same names to their descriptors.  Returns the fitted profile and
    the per-network predicted latencies.  The fit is a non-negative
    least-squares on relative latency (each row is normalised by its target),
    so small and large networks carry equal weight.
    """
    names = [n for n in measurements if n in descriptors]
    if len(names) < 5:
        raise ValueError("need at least 5 measured networks to fit 5 coefficients")
    rows = []
    targets = []
    for net_name in names:
        features = _feature_vector(descriptors[net_name])
        target = float(measurements[net_name])
        if target <= 0:
            raise ValueError(f"latency for {net_name!r} must be positive")
        rows.append(features / target)
        targets.append(1.0)
    matrix = np.asarray(rows)
    target_vec = np.asarray(targets)

    try:
        from scipy.optimize import nnls

        coeffs, _ = nnls(matrix, target_vec)
    except ImportError:  # pragma: no cover - scipy is an expected dependency
        coeffs, *_ = np.linalg.lstsq(matrix, target_vec, rcond=None)
        coeffs = np.clip(coeffs, 0.0, None)

    profile = DeviceProfile(
        name=name,
        conv_ns_per_mac=float(coeffs[0] * 1e6),
        pwconv_ns_per_mac=float(coeffs[1] * 1e6),
        dwconv_ns_per_mac=float(coeffs[2] * 1e6),
        ns_per_element=float(coeffs[3] * 1e6),
        ms_per_layer=float(coeffs[4]),
        memory_mb=memory_mb,
    )
    predictions = {
        net_name: float(_feature_vector(descriptors[net_name]) @ coeffs)
        for net_name in names
    }
    return profile, predictions
