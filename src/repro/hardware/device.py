"""Device profiles.

A :class:`DeviceProfile` turns per-operation cost descriptors into
milliseconds.  Its four coefficients have a physical reading:

* ``conv_ns_per_mac`` -- cost of a dense KxK convolution / linear MAC,
* ``pwconv_ns_per_mac`` -- cost of a pointwise (1x1) convolution MAC
  (noticeably higher than dense KxK on these boards because 1x1 layers have
  low arithmetic intensity and vanilla PyTorch does not fuse them),
* ``dwconv_ns_per_mac`` -- cost of a depthwise-convolution MAC (much higher
  on ARM CPUs with vanilla PyTorch, because depthwise kernels are
  memory-bound and poorly vectorised),
* ``ns_per_element`` -- cost of moving one activation element through the
  memory hierarchy (batch-norm, residual adds, pooling and layer overheads
  are dominated by this term),
* ``ms_per_layer`` -- fixed per-operation dispatch overhead.

Default values are obtained by a non-negative least-squares fit of the model
against the Raspberry Pi 4 and Odroid XU-4 latencies reported in the paper's
Tables 1 and 3 (see ``repro.hardware.calibration``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class DeviceProfile:
    """Analytic latency model coefficients for one edge device."""

    name: str
    conv_ns_per_mac: float
    pwconv_ns_per_mac: float
    dwconv_ns_per_mac: float
    ns_per_element: float
    ms_per_layer: float
    memory_mb: float = 1024.0

    def __post_init__(self) -> None:
        if min(
            self.conv_ns_per_mac,
            self.pwconv_ns_per_mac,
            self.dwconv_ns_per_mac,
            self.ns_per_element,
            self.ms_per_layer,
        ) < 0:
            raise ValueError("device profile coefficients must be non-negative")
        if self.memory_mb <= 0:
            raise ValueError("memory_mb must be positive")

    def op_latency_ms(self, kind: str, macs: float, elements: float) -> float:
        """Latency of a single primitive operation in milliseconds."""
        if kind == "dwconv":
            compute_ns = macs * self.dwconv_ns_per_mac
        elif kind == "pwconv":
            compute_ns = macs * self.pwconv_ns_per_mac
        elif kind in ("conv", "linear"):
            compute_ns = macs * self.conv_ns_per_mac
        else:  # bn, add, pool: bandwidth-bound
            compute_ns = 0.0
        memory_ns = elements * self.ns_per_element
        return (compute_ns + memory_ns) / 1e6 + self.ms_per_layer


# Coefficients fitted against the paper's reported latencies (see
# repro.hardware.calibration.fit_device_profile and EXPERIMENTS.md).
RASPBERRY_PI_4 = DeviceProfile(
    name="Raspberry Pi 4B",
    conv_ns_per_mac=0.0247,
    pwconv_ns_per_mac=0.01,
    dwconv_ns_per_mac=65.9,
    ns_per_element=8.15,
    ms_per_layer=0.97,
    memory_mb=8192.0,
)

ODROID_XU4 = DeviceProfile(
    name="Odroid XU-4",
    conv_ns_per_mac=0.196,
    pwconv_ns_per_mac=0.509,
    dwconv_ns_per_mac=201.9,
    ns_per_element=0.50,
    ms_per_layer=0.05,
    memory_mb=2048.0,
)

_DEVICES: Dict[str, DeviceProfile] = {
    "raspberry-pi-4": RASPBERRY_PI_4,
    "odroid-xu4": ODROID_XU4,
}


def list_devices() -> List[str]:
    """Names of the built-in device profiles."""
    return sorted(_DEVICES)


def get_device(name: str) -> DeviceProfile:
    """Look up a built-in device profile by name."""
    key = name.lower().strip()
    if key not in _DEVICES:
        raise KeyError(f"unknown device {name!r}; known: {', '.join(sorted(_DEVICES))}")
    return _DEVICES[key]
