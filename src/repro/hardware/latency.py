"""Analytic latency estimation for architecture descriptors.

During the NAS search every candidate network must be priced before the
framework decides whether to train it (children violating the timing
constraint receive reward -1 without training).  The paper does this with an
offline per-block latency look-up table; :class:`LatencyEstimator` implements
the same idea: per-block latencies are computed once per (block, resolution)
pair and cached, so pricing a child network is a dictionary sum.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.blocks.spec import BlockSpec
from repro.hardware.device import DeviceProfile
from repro.zoo.descriptors import ArchitectureDescriptor


def estimate_latency_ms(
    descriptor: ArchitectureDescriptor,
    device: DeviceProfile,
    resolution: Optional[int] = None,
) -> float:
    """End-to-end single-image inference latency in milliseconds."""
    total = 0.0
    for _, op in descriptor.walk_op_costs(resolution):
        total += device.op_latency_ms(op.kind, op.macs, op.output_elems)
    return total


def latency_breakdown_ms(
    descriptor: ArchitectureDescriptor,
    device: DeviceProfile,
    resolution: Optional[int] = None,
) -> Dict[str, float]:
    """Per-stage latency breakdown (stem, block0..N, head, classifier)."""
    breakdown: Dict[str, float] = {}
    for stage, op in descriptor.walk_op_costs(resolution):
        breakdown[stage] = breakdown.get(stage, 0.0) + device.op_latency_ms(
            op.kind, op.macs, op.output_elems
        )
    return breakdown


class LatencyEstimator:
    """Cached per-block latency model for a fixed device and input resolution.

    This is the reproduction of the paper's offline block-latency table: the
    latency of each block is measured (here: computed analytically) once per
    (block specification, input resolution) and re-used for every child
    network that contains the block.
    """

    def __init__(self, device: DeviceProfile, resolution: int = 224):
        if resolution <= 0:
            raise ValueError("resolution must be positive")
        self.device = device
        self.resolution = resolution
        self._block_cache: Dict[Tuple[BlockSpec, int], float] = {}
        self.cache_hits = 0
        self.cache_misses = 0

    def block_latency_ms(self, spec: BlockSpec, input_resolution: int) -> float:
        """Latency of a single block at a given input resolution."""
        key = (spec, input_resolution)
        if key in self._block_cache:
            self.cache_hits += 1
            return self._block_cache[key]
        self.cache_misses += 1
        total = 0.0
        for op in spec.op_costs(input_resolution, input_resolution):
            total += self.device.op_latency_ms(op.kind, op.macs, op.output_elems)
        self._block_cache[key] = total
        return total

    def network_latency_ms(self, descriptor: ArchitectureDescriptor) -> float:
        """Latency of a full network, using the per-block cache."""
        resolution = self.resolution
        height = width = resolution
        total = 0.0
        for op in descriptor.stem.op_costs(height, width):
            total += self.device.op_latency_ms(op.kind, op.macs, op.output_elems)
        height, width = descriptor.stem.output_spatial(height, width)
        for block in descriptor.blocks:
            total += self.block_latency_ms(block, height)
            height, width = block.output_spatial(height, width)
        for op in descriptor.head.op_costs(height, width):
            total += self.device.op_latency_ms(op.kind, op.macs, op.output_elems)
        for op in descriptor.classifier.op_costs(height, width):
            total += self.device.op_latency_ms(op.kind, op.macs, op.output_elems)
        return total

    def meets_constraint(
        self, descriptor: ArchitectureDescriptor, timing_constraint_ms: float
    ) -> bool:
        """Whether the network satisfies ``L(H, N) <= TC``."""
        return self.network_latency_ms(descriptor) <= timing_constraint_ms
