"""MobileNetV2-style inverted-residual blocks (the MB and DB block types)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.blocks.spec import BlockSpec
from repro.nn.layers import BatchNorm2d, Conv2d, DepthwiseConv2d, ReLU6, SqueezeExcite
from repro.nn.module import Module, Sequential, is_inference
from repro.utils.rng import SeedLike, spawn_rngs


class MobileInvertedBlock(Module):
    """1x1 expand -> KxK depthwise -> 1x1 project, with an optional residual.

    ``stride=2`` corresponds to the paper's MB block; ``stride=1`` to DB.
    The residual addition is applied only when the spatial size and the
    channel count are preserved (stride 1 and ``ch_in == ch_out``), matching
    MobileNetV2.
    """

    def __init__(self, spec: BlockSpec, rng: SeedLike = None):
        super().__init__()
        if spec.block_type not in ("MB", "DB"):
            raise ValueError(f"expected an MB or DB spec, got {spec.block_type}")
        self.spec = spec
        rngs = spawn_rngs(rng, 4)
        self.expand = Sequential(
            Conv2d(spec.ch_in, spec.ch_mid, 1, bias=False, rng=rngs[0]),
            BatchNorm2d(spec.ch_mid),
            ReLU6(),
        )
        self.depthwise = Sequential(
            DepthwiseConv2d(spec.ch_mid, spec.kernel, stride=spec.stride, rng=rngs[1]),
            BatchNorm2d(spec.ch_mid),
            ReLU6(),
        )
        if spec.se_ratio > 0.0:
            hidden = max(1, int(round(spec.ch_mid * spec.se_ratio)))
            self.depthwise.append(SqueezeExcite(spec.ch_mid, hidden, rng=rngs[3]))
        self.project = Sequential(
            Conv2d(spec.ch_mid, spec.ch_out, 1, bias=False, rng=rngs[2]),
            BatchNorm2d(spec.ch_out),
        )
        self.use_residual = spec.has_residual
        self._cache_residual: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = self.expand.forward(x)
        out = self.depthwise.forward(out)
        out = self.project.forward(out)
        if self.use_residual:
            if not is_inference():
                self._cache_residual = x
            # ``out`` is freshly allocated by the projection stage, so the
            # residual can be added in place (x itself is never mutated).
            out += x
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = self.project.backward(grad_output)
        grad = self.depthwise.backward(grad)
        grad = self.expand.backward(grad)
        if self.use_residual:
            # ``grad`` is the expand conv's freshly allocated input gradient.
            grad += grad_output
            self._cache_residual = None
        return grad

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MobileInvertedBlock({self.spec.describe()})"
