"""Block library: the four searchable block types of the FaHaNa search space.

The paper's search space (Figure 4) is built from:

* ``MB`` -- MobileNetV2 inverted-residual block with stride 2,
* ``DB`` -- MobileNetV2 inverted-residual block with stride 1 (residual add),
* ``RB`` -- ResNet basic block,
* ``CB`` -- conventional convolution block,

all parameterised by channel counts (CH1, CH2, CH3) and kernel size K, plus
an optional skip that turns the block into an identity to vary network depth.
"""

from repro.blocks.spec import (
    BlockSpec,
    OpCost,
    StemSpec,
    ClassifierSpec,
    BLOCK_TYPES,
)
from repro.blocks.mobile import MobileInvertedBlock
from repro.blocks.residual import ResidualBlock, BottleneckBlock
from repro.blocks.conv_block import ConvBlock
from repro.blocks.factory import build_block, SkipBlock

__all__ = [
    "BlockSpec",
    "OpCost",
    "StemSpec",
    "ClassifierSpec",
    "BLOCK_TYPES",
    "MobileInvertedBlock",
    "ResidualBlock",
    "BottleneckBlock",
    "ConvBlock",
    "SkipBlock",
    "build_block",
]
