"""Instantiate trainable modules from block specifications."""

from __future__ import annotations

import numpy as np

from repro.blocks.conv_block import ConvBlock
from repro.blocks.mobile import MobileInvertedBlock
from repro.blocks.residual import BottleneckBlock, ResidualBlock
from repro.blocks.spec import BlockSpec
from repro.nn.layers import Identity
from repro.nn.module import Module
from repro.utils.rng import SeedLike


class SkipBlock(Module):
    """Identity block used when the controller decides to skip a position."""

    def __init__(self, spec: BlockSpec):
        super().__init__()
        self.spec = spec

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SkipBlock({self.spec.ch_in})"


def build_block(spec: BlockSpec, rng: SeedLike = None) -> Module:
    """Build the trainable module described by ``spec``."""
    if spec.block_type in ("MB", "DB"):
        return MobileInvertedBlock(spec, rng=rng)
    if spec.block_type == "RB":
        return ResidualBlock(spec, rng=rng)
    if spec.block_type == "RBB":
        return BottleneckBlock(spec, rng=rng)
    if spec.block_type == "CB":
        return ConvBlock(spec, rng=rng)
    if spec.block_type == "SKIP":
        return SkipBlock(spec)
    raise ValueError(f"unknown block type {spec.block_type!r}")
