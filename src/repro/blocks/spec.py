"""Declarative block specifications.

A :class:`BlockSpec` fully describes one block of an architecture without
instantiating any weights.  Specifications are used in three places:

* the NAS controller emits them as its per-block decisions,
* the zoo describes the reference architectures with them (so parameter
  counts and analytic latency are computed at the paper's full scale), and
* the block factory instantiates trainable numpy modules from them (at a
  reduced training scale when requested).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Tuple

# The four searchable block types of the paper plus the depth-skip.
BLOCK_TYPES: Tuple[str, ...] = ("MB", "DB", "RB", "CB")

# Additional non-searchable block kinds: identity skips (depth control) and
# the bottleneck residual used only by the ResNet-50 zoo descriptor.
_VALID_TYPES = BLOCK_TYPES + ("SKIP", "RBB")


@dataclass(frozen=True)
class OpCost:
    """Cost descriptor of one primitive operation inside a block.

    ``macs`` counts multiply-accumulate operations; ``params`` counts scalar
    weights; ``input_elems`` / ``output_elems`` count activation elements
    read and written.  The hardware latency model consumes these.
    """

    kind: str  # "conv", "dwconv", "linear", "bn", "add", "pool"
    macs: float
    params: int
    input_elems: int
    output_elems: int


@dataclass(frozen=True)
class BlockSpec:
    """One block of an architecture.

    Channel semantics follow the paper: ``ch_in`` (CH1) is fixed by the
    preceding block, while ``ch_mid`` (CH2), ``ch_out`` (CH3) and ``kernel``
    (K) are searchable.  ``block_type == "SKIP"`` denotes a skipped (identity)
    block used to shorten the network.
    """

    block_type: str
    ch_in: int
    ch_mid: int
    ch_out: int
    kernel: int = 3
    stride: int = 1
    se_ratio: float = 0.0

    def __post_init__(self) -> None:
        if self.block_type not in _VALID_TYPES:
            raise ValueError(
                f"unknown block type {self.block_type!r}; expected one of {_VALID_TYPES}"
            )
        if self.block_type == "SKIP":
            if self.ch_in != self.ch_out:
                raise ValueError("a SKIP block must preserve the channel count")
            return
        if min(self.ch_in, self.ch_mid, self.ch_out) <= 0:
            raise ValueError("channel counts must be positive")
        if self.kernel <= 0 or self.kernel % 2 == 0:
            raise ValueError(f"kernel size must be a positive odd number, got {self.kernel}")
        if self.stride not in (1, 2):
            raise ValueError(f"stride must be 1 or 2, got {self.stride}")
        if self.block_type == "MB" and self.stride != 2:
            raise ValueError("MB blocks use stride 2 (use DB for stride 1)")
        if self.block_type == "DB" and self.stride != 1:
            raise ValueError("DB blocks use stride 1 (use MB for stride 2)")
        if not 0.0 <= self.se_ratio < 1.0:
            raise ValueError("se_ratio must be in [0, 1)")
        if self.se_ratio > 0.0 and self.block_type not in ("MB", "DB"):
            raise ValueError("squeeze-excitation is only supported on MB/DB blocks")

    # -- shape bookkeeping ------------------------------------------------------
    def output_spatial(self, height: int, width: int) -> Tuple[int, int]:
        """Spatial size after this block."""
        if self.block_type == "SKIP" or self.stride == 1:
            return (height, width)
        return (max(1, (height + 1) // 2), max(1, (width + 1) // 2))

    @property
    def has_residual(self) -> bool:
        """True when the block contains an elementwise residual addition."""
        if self.block_type in ("RB", "RBB"):
            return True
        if self.block_type == "DB":
            return self.ch_in == self.ch_out
        return False

    # -- analytic costs ----------------------------------------------------------
    def op_costs(self, height: int, width: int) -> List[OpCost]:
        """Primitive operations of the block at the given input resolution."""
        if self.block_type == "SKIP":
            return []
        out_h, out_w = self.output_spatial(height, width)
        in_hw = height * width
        out_hw = out_h * out_w
        k2 = self.kernel * self.kernel
        ops: List[OpCost] = []

        if self.block_type in ("MB", "DB"):
            # 1x1 expand -> KxK depthwise (stride) -> 1x1 project, BN after each.
            ops.append(
                OpCost(
                    "pwconv",
                    macs=self.ch_in * self.ch_mid * in_hw,
                    params=self.ch_in * self.ch_mid,
                    input_elems=self.ch_in * in_hw,
                    output_elems=self.ch_mid * in_hw,
                )
            )
            ops.append(_bn_cost(self.ch_mid, in_hw))
            ops.append(
                OpCost(
                    "dwconv",
                    macs=k2 * self.ch_mid * out_hw,
                    params=k2 * self.ch_mid,
                    input_elems=self.ch_mid * in_hw,
                    output_elems=self.ch_mid * out_hw,
                )
            )
            ops.append(_bn_cost(self.ch_mid, out_hw))
            if self.se_ratio > 0.0:
                hidden = max(1, int(round(self.ch_mid * self.se_ratio)))
                se_params = 2 * self.ch_mid * hidden + hidden + self.ch_mid
                ops.append(
                    OpCost(
                        "linear",
                        macs=float(2 * self.ch_mid * hidden + self.ch_mid * out_hw),
                        params=se_params,
                        input_elems=self.ch_mid * out_hw,
                        output_elems=self.ch_mid * out_hw,
                    )
                )
            ops.append(
                OpCost(
                    "pwconv",
                    macs=self.ch_mid * self.ch_out * out_hw,
                    params=self.ch_mid * self.ch_out,
                    input_elems=self.ch_mid * out_hw,
                    output_elems=self.ch_out * out_hw,
                )
            )
            ops.append(_bn_cost(self.ch_out, out_hw))
            if self.has_residual:
                ops.append(_add_cost(self.ch_out, out_hw))
        elif self.block_type == "RB":
            # KxK conv -> KxK conv with a residual add (projected when needed).
            ops.append(
                OpCost(
                    "conv",
                    macs=k2 * self.ch_in * self.ch_mid * out_hw,
                    params=k2 * self.ch_in * self.ch_mid,
                    input_elems=self.ch_in * in_hw,
                    output_elems=self.ch_mid * out_hw,
                )
            )
            ops.append(_bn_cost(self.ch_mid, out_hw))
            ops.append(
                OpCost(
                    "conv",
                    macs=k2 * self.ch_mid * self.ch_out * out_hw,
                    params=k2 * self.ch_mid * self.ch_out,
                    input_elems=self.ch_mid * out_hw,
                    output_elems=self.ch_out * out_hw,
                )
            )
            ops.append(_bn_cost(self.ch_out, out_hw))
            if self.ch_in != self.ch_out or self.stride != 1:
                ops.append(
                    OpCost(
                        "pwconv",
                        macs=self.ch_in * self.ch_out * out_hw,
                        params=self.ch_in * self.ch_out,
                        input_elems=self.ch_in * in_hw,
                        output_elems=self.ch_out * out_hw,
                    )
                )
                ops.append(_bn_cost(self.ch_out, out_hw))
            ops.append(_add_cost(self.ch_out, out_hw))
        elif self.block_type == "RBB":
            # Bottleneck: 1x1 reduce -> KxK -> 1x1 expand, with residual add.
            ops.append(
                OpCost(
                    "pwconv",
                    macs=self.ch_in * self.ch_mid * in_hw,
                    params=self.ch_in * self.ch_mid,
                    input_elems=self.ch_in * in_hw,
                    output_elems=self.ch_mid * in_hw,
                )
            )
            ops.append(_bn_cost(self.ch_mid, in_hw))
            ops.append(
                OpCost(
                    "conv",
                    macs=k2 * self.ch_mid * self.ch_mid * out_hw,
                    params=k2 * self.ch_mid * self.ch_mid,
                    input_elems=self.ch_mid * in_hw,
                    output_elems=self.ch_mid * out_hw,
                )
            )
            ops.append(_bn_cost(self.ch_mid, out_hw))
            ops.append(
                OpCost(
                    "pwconv",
                    macs=self.ch_mid * self.ch_out * out_hw,
                    params=self.ch_mid * self.ch_out,
                    input_elems=self.ch_mid * out_hw,
                    output_elems=self.ch_out * out_hw,
                )
            )
            ops.append(_bn_cost(self.ch_out, out_hw))
            if self.ch_in != self.ch_out or self.stride != 1:
                ops.append(
                    OpCost(
                        "pwconv",
                        macs=self.ch_in * self.ch_out * out_hw,
                        params=self.ch_in * self.ch_out,
                        input_elems=self.ch_in * in_hw,
                        output_elems=self.ch_out * out_hw,
                    )
                )
                ops.append(_bn_cost(self.ch_out, out_hw))
            ops.append(_add_cost(self.ch_out, out_hw))
        elif self.block_type == "CB":
            # 1x1 conv -> KxK conv, plain feed-forward.
            ops.append(
                OpCost(
                    "pwconv",
                    macs=self.ch_in * self.ch_mid * in_hw,
                    params=self.ch_in * self.ch_mid,
                    input_elems=self.ch_in * in_hw,
                    output_elems=self.ch_mid * in_hw,
                )
            )
            ops.append(_bn_cost(self.ch_mid, in_hw))
            ops.append(
                OpCost(
                    "conv",
                    macs=k2 * self.ch_mid * self.ch_out * out_hw,
                    params=k2 * self.ch_mid * self.ch_out,
                    input_elems=self.ch_mid * in_hw,
                    output_elems=self.ch_out * out_hw,
                )
            )
            ops.append(_bn_cost(self.ch_out, out_hw))
        return ops

    def param_count(self) -> int:
        """Number of scalar weights in the block (resolution independent)."""
        return int(sum(op.params for op in self.op_costs(8, 8)))

    def macs(self, height: int, width: int) -> float:
        """Multiply-accumulate count at the given input resolution."""
        return float(sum(op.macs for op in self.op_costs(height, width)))

    def cache_key(self) -> str:
        """Canonical content fingerprint of the block specification."""
        from repro.utils.fingerprint import content_fingerprint

        return content_fingerprint(
            {
                "kind": "BlockSpec",
                "block_type": self.block_type,
                "ch_in": self.ch_in,
                "ch_mid": self.ch_mid,
                "ch_out": self.ch_out,
                "kernel": self.kernel,
                "stride": self.stride,
                "se_ratio": self.se_ratio,
            }
        )

    # -- helpers ------------------------------------------------------------------
    def scaled(self, width_multiplier: float) -> "BlockSpec":
        """Return a copy with channel counts scaled (used by training presets)."""
        if width_multiplier <= 0:
            raise ValueError("width multiplier must be positive")
        if self.block_type == "SKIP":
            scaled_ch = _scale_channels(self.ch_in, width_multiplier)
            return replace(self, ch_in=scaled_ch, ch_mid=scaled_ch, ch_out=scaled_ch)
        return replace(
            self,
            ch_in=_scale_channels(self.ch_in, width_multiplier),
            ch_mid=_scale_channels(self.ch_mid, width_multiplier),
            ch_out=_scale_channels(self.ch_out, width_multiplier),
        )

    def describe(self) -> str:
        """Human-readable one-line description (used by Figure 7)."""
        if self.block_type == "SKIP":
            return f"SKIP {self.ch_in}"
        return (
            f"{self.block_type} {self.ch_in},{self.ch_mid},{self.ch_out},{self.kernel}"
        )


@dataclass(frozen=True)
class StemSpec:
    """The fixed stem convolution preceding the block stack."""

    ch_in: int = 3
    ch_out: int = 32
    kernel: int = 3
    stride: int = 2

    def op_costs(self, height: int, width: int) -> List[OpCost]:
        out_h = max(1, (height + self.stride - 1) // self.stride)
        out_w = max(1, (width + self.stride - 1) // self.stride)
        out_hw = out_h * out_w
        k2 = self.kernel * self.kernel
        return [
            OpCost(
                "conv",
                macs=k2 * self.ch_in * self.ch_out * out_hw,
                params=k2 * self.ch_in * self.ch_out,
                input_elems=self.ch_in * height * width,
                output_elems=self.ch_out * out_hw,
            ),
            _bn_cost(self.ch_out, out_hw),
        ]

    def output_spatial(self, height: int, width: int) -> Tuple[int, int]:
        return (
            max(1, (height + self.stride - 1) // self.stride),
            max(1, (width + self.stride - 1) // self.stride),
        )

    def param_count(self) -> int:
        return int(sum(op.params for op in self.op_costs(8, 8)))

    def cache_key(self) -> str:
        """Canonical content fingerprint of the stem specification."""
        from repro.utils.fingerprint import content_fingerprint

        return content_fingerprint(
            {
                "kind": "StemSpec",
                "ch_in": self.ch_in,
                "ch_out": self.ch_out,
                "kernel": self.kernel,
                "stride": self.stride,
            }
        )


@dataclass(frozen=True)
class ClassifierSpec:
    """Global average pooling followed by a linear classifier.

    ``hidden_features`` inserts an intermediate fully-connected layer (used
    by the MobileNetV3 descriptors, whose classifier is 576->1024->classes or
    960->1280->classes).
    """

    ch_in: int = 1280
    num_classes: int = 5
    hidden_features: int = 0

    def op_costs(self, height: int, width: int) -> List[OpCost]:
        hw = height * width
        ops = [
            OpCost(
                "pool",
                macs=self.ch_in * hw,
                params=0,
                input_elems=self.ch_in * hw,
                output_elems=self.ch_in,
            )
        ]
        features = self.ch_in
        if self.hidden_features > 0:
            ops.append(
                OpCost(
                    "linear",
                    macs=features * self.hidden_features,
                    params=features * self.hidden_features + self.hidden_features,
                    input_elems=features,
                    output_elems=self.hidden_features,
                )
            )
            features = self.hidden_features
        ops.append(
            OpCost(
                "linear",
                macs=features * self.num_classes,
                params=features * self.num_classes + self.num_classes,
                input_elems=features,
                output_elems=self.num_classes,
            )
        )
        return ops

    def param_count(self) -> int:
        return int(sum(op.params for op in self.op_costs(8, 8)))

    def cache_key(self) -> str:
        """Canonical content fingerprint of the classifier specification."""
        from repro.utils.fingerprint import content_fingerprint

        return content_fingerprint(
            {
                "kind": "ClassifierSpec",
                "ch_in": self.ch_in,
                "num_classes": self.num_classes,
                "hidden_features": self.hidden_features,
            }
        )


def _bn_cost(channels: int, hw: int) -> OpCost:
    return OpCost(
        "bn",
        macs=2.0 * channels * hw,
        params=2 * channels,
        input_elems=channels * hw,
        output_elems=channels * hw,
    )


def _add_cost(channels: int, hw: int) -> OpCost:
    return OpCost(
        "add",
        macs=float(channels * hw),
        params=0,
        input_elems=2 * channels * hw,
        output_elems=channels * hw,
    )


def _scale_channels(channels: int, multiplier: float) -> int:
    return max(1, int(round(channels * multiplier)))
