"""Conventional convolution block (the CB block type)."""

from __future__ import annotations

import numpy as np

from repro.blocks.spec import BlockSpec
from repro.nn.layers import BatchNorm2d, Conv2d, ReLU
from repro.nn.module import Module, Sequential
from repro.utils.rng import SeedLike, spawn_rngs


class ConvBlock(Module):
    """1x1 conv followed by a KxK conv, both with batch norm and ReLU.

    This is the plain feed-forward block of the search space; the paper's
    searched FaHaNa-Fair network uses CB (and RB) blocks in its tail where
    fairness is most sensitive to capacity.
    """

    def __init__(self, spec: BlockSpec, rng: SeedLike = None):
        super().__init__()
        if spec.block_type != "CB":
            raise ValueError(f"expected a CB spec, got {spec.block_type}")
        self.spec = spec
        rngs = spawn_rngs(rng, 2)
        self.body = Sequential(
            Conv2d(spec.ch_in, spec.ch_mid, 1, bias=False, rng=rngs[0]),
            BatchNorm2d(spec.ch_mid),
            ReLU(),
            Conv2d(
                spec.ch_mid,
                spec.ch_out,
                spec.kernel,
                stride=spec.stride,
                bias=False,
                rng=rngs[1],
            ),
            BatchNorm2d(spec.ch_out),
            ReLU(),
        )

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.body.forward(x)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return self.body.backward(grad_output)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ConvBlock({self.spec.describe()})"
