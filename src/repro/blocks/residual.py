"""ResNet-style basic block (the RB block type)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.blocks.spec import BlockSpec
from repro.nn.layers import BatchNorm2d, Conv2d, Identity, ReLU
from repro.nn.module import Module, Sequential
from repro.utils.rng import SeedLike, spawn_rngs


class ResidualBlock(Module):
    """KxK conv -> KxK conv with a residual addition and post-add ReLU.

    A 1x1 projection is inserted on the shortcut whenever the channel count
    or spatial size changes, as in standard ResNets.
    """

    def __init__(self, spec: BlockSpec, rng: SeedLike = None):
        super().__init__()
        if spec.block_type != "RB":
            raise ValueError(f"expected an RB spec, got {spec.block_type}")
        self.spec = spec
        rngs = spawn_rngs(rng, 3)
        self.body = Sequential(
            Conv2d(
                spec.ch_in,
                spec.ch_mid,
                spec.kernel,
                stride=spec.stride,
                bias=False,
                rng=rngs[0],
            ),
            BatchNorm2d(spec.ch_mid),
            ReLU(),
            Conv2d(spec.ch_mid, spec.ch_out, spec.kernel, bias=False, rng=rngs[1]),
            BatchNorm2d(spec.ch_out),
        )
        self.needs_projection = spec.ch_in != spec.ch_out or spec.stride != 1
        if self.needs_projection:
            self.shortcut = Sequential(
                Conv2d(
                    spec.ch_in,
                    spec.ch_out,
                    1,
                    stride=spec.stride,
                    bias=False,
                    rng=rngs[2],
                ),
                BatchNorm2d(spec.ch_out),
            )
        else:
            self.shortcut = Sequential(Identity())
        self.post_activation = ReLU()

    def forward(self, x: np.ndarray) -> np.ndarray:
        body_out = self.body.forward(x)
        shortcut_out = self.shortcut.forward(x)
        return self.post_activation.forward(body_out + shortcut_out)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad_sum = self.post_activation.backward(grad_output)
        grad_body = self.body.backward(grad_sum)
        grad_shortcut = self.shortcut.backward(grad_sum)
        return grad_body + grad_shortcut

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResidualBlock({self.spec.describe()})"


class BottleneckBlock(Module):
    """1x1 reduce -> KxK -> 1x1 expand with a residual add (ResNet bottleneck).

    This block type (``RBB``) is used by the ResNet-50 zoo descriptor only;
    it is not part of the FaHaNa search space.
    """

    def __init__(self, spec: BlockSpec, rng: SeedLike = None):
        super().__init__()
        if spec.block_type != "RBB":
            raise ValueError(f"expected an RBB spec, got {spec.block_type}")
        self.spec = spec
        rngs = spawn_rngs(rng, 4)
        self.body = Sequential(
            Conv2d(spec.ch_in, spec.ch_mid, 1, bias=False, rng=rngs[0]),
            BatchNorm2d(spec.ch_mid),
            ReLU(),
            Conv2d(
                spec.ch_mid,
                spec.ch_mid,
                spec.kernel,
                stride=spec.stride,
                bias=False,
                rng=rngs[1],
            ),
            BatchNorm2d(spec.ch_mid),
            ReLU(),
            Conv2d(spec.ch_mid, spec.ch_out, 1, bias=False, rng=rngs[2]),
            BatchNorm2d(spec.ch_out),
        )
        self.needs_projection = spec.ch_in != spec.ch_out or spec.stride != 1
        if self.needs_projection:
            self.shortcut = Sequential(
                Conv2d(
                    spec.ch_in,
                    spec.ch_out,
                    1,
                    stride=spec.stride,
                    bias=False,
                    rng=rngs[3],
                ),
                BatchNorm2d(spec.ch_out),
            )
        else:
            self.shortcut = Sequential(Identity())
        self.post_activation = ReLU()

    def forward(self, x: np.ndarray) -> np.ndarray:
        body_out = self.body.forward(x)
        shortcut_out = self.shortcut.forward(x)
        return self.post_activation.forward(body_out + shortcut_out)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad_sum = self.post_activation.backward(grad_output)
        grad_body = self.body.backward(grad_sum)
        grad_shortcut = self.shortcut.backward(grad_sum)
        return grad_body + grad_shortcut

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BottleneckBlock({self.spec.describe()})"
