"""``RemoteWorkerPool``: the engine-facing face of the fleet.

The engine never learns about agents, leases, or heartbeats -- it asks a
:class:`~repro.engine.workers.WorkerPool` to ``map_ordered`` a wave of
payloads and trusts the results to come back in submission order.  This
module keeps that contract over a fleet of remote agents:

* Each ``(fn, payload)`` pair is pickled into an opaque task blob and
  submitted to the :class:`~repro.fleet.supervisor.FleetSupervisor` as one
  wave.  Agents pull, execute and complete tasks in any interleaving; the
  pool reassembles results by task *index*, so the engine's deterministic
  feedback loop is untouched by scheduling.
* The pool's wait loop doubles as the supervision heartbeat on the daemon
  side: every poll calls ``reap()`` (expiring dead agents and stale leases)
  and drains the wave's incidents into typed ``EngineEvent``s on the owning
  run's bus -- reassignments and agent deaths show up in ``telemetry.jsonl``
  next to episode events.
* **Graceful degradation**: tasks no agent can finish (the fleet is empty,
  every agent died, or a task burned through its reassignment budget) are
  claimed back and executed locally in the pool's own thread, with one typed
  ``fleet-degraded`` event per claim batch.  A wave therefore always
  completes, fleet or no fleet.

The supervisor lives in the daemon process; the pool reaches it through the
module-level :func:`install_supervisor` slot because the engine instantiates
pools by backend *name* (``EngineConfig(backend="fleet")``) and has no
channel to pass daemon objects through a RunSpec.
"""

from __future__ import annotations

import pickle
import time
from typing import Any, Callable, List, Optional, Sequence

from repro.engine import events as engine_events
from repro.engine.events import EngineEvent
from repro.engine.workers import WorkerPool, WorkerResult, _PoolMetrics
from repro.fleet.supervisor import FleetSupervisor
from repro.obs import metrics as obs_metrics

# The daemon installs its supervisor here so engine-created fleet pools (which
# only know the backend's *name*) can find it.
_SUPERVISOR: Optional[FleetSupervisor] = None


def install_supervisor(supervisor: Optional[FleetSupervisor]) -> None:
    """Make ``supervisor`` the one fleet pools constructed by name attach to."""
    global _SUPERVISOR
    _SUPERVISOR = supervisor  # repro-lint: disable=THR001 -- single-slot handoff written once by the daemon at startup, before any run executes


def installed_supervisor() -> Optional[FleetSupervisor]:
    return _SUPERVISOR


# -- the wire format for task blobs and results --------------------------------------
def encode_task(fn: Callable[[Any], Any], payload: Any) -> bytes:
    """Pickle one unit of work; agents unpickle and execute it verbatim."""
    return pickle.dumps((fn, payload), protocol=pickle.HIGHEST_PROTOCOL)


def run_task(blob: bytes) -> bytes:
    """Execute a task blob; the agent ships the returned bytes back untouched.

    Exceptions are results too: a raising task pickles its exception so the
    pool re-raises it in the engine's thread, matching what a local backend
    would have done.
    """
    fn, payload = pickle.loads(blob)
    try:
        return pickle.dumps(("ok", fn(payload)), protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as error:
        try:
            return pickle.dumps(("error", error), protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            # The exception itself is unpicklable; degrade to its description.
            fallback = RuntimeError(f"{type(error).__name__}: {error}")
            return pickle.dumps(("error", fallback), protocol=pickle.HIGHEST_PROTOCOL)


def decode_result(blob: bytes) -> Any:
    """Unpickle a task result; re-raises if the task raised."""
    status, value = pickle.loads(blob)
    if status == "error":
        raise value
    return value


class RemoteWorkerPool(WorkerPool):
    """Fans ``map_ordered`` waves across the fleet's registered agents."""

    name = "fleet"

    def __init__(
        self,
        supervisor: Optional[FleetSupervisor] = None,
        num_workers: int = 2,
        metrics: Optional["obs_metrics.MetricsRegistry"] = None,
        events: Optional[Callable[[EngineEvent], None]] = None,
        poll_interval: Optional[float] = None,
    ):
        resolved = supervisor or installed_supervisor()
        if resolved is None:
            raise RuntimeError(
                "backend 'fleet' needs a FleetSupervisor: run under the "
                "service daemon (repro-search serve), or call "
                "repro.fleet.install_supervisor() first"
            )
        self.supervisor = resolved
        # Advisory only -- actual parallelism is however many agents are
        # alive; kept so EngineConfig(num_workers=...) round-trips cleanly.
        self.num_workers = num_workers
        self._events = events
        self._metrics = _PoolMetrics(self.name, metrics)
        self._poll = (
            resolved.config.poll_interval if poll_interval is None else poll_interval
        )

    def map_ordered(
        self, fn: Callable[[Any], Any], payloads: Sequence[Any]
    ) -> List[WorkerResult]:
        meters = self._metrics
        blobs = [encode_task(fn, payload) for payload in payloads]
        wave = self.supervisor.submit_wave(blobs)
        submitted = time.perf_counter()
        meters.in_flight.inc(len(blobs))
        observed_done = 0
        try:
            while True:
                self.supervisor.reap()
                self._pump_incidents(wave)
                claimed = self.supervisor.claim_local(wave)
                if claimed:
                    self._run_degraded(wave, fn, payloads, claimed)
                observed_done = self._note_progress(wave, submitted, observed_done)
                if wave.done:
                    break
                time.sleep(self._poll)
            self._pump_incidents(wave)
            results: List[WorkerResult] = []
            for task in wave.tasks:
                assert task.result is not None
                value = decode_result(task.result)
                label = (
                    "fleet-local"
                    if task.agent_id is None and task.agent_name == "local"
                    else f"agent:{task.agent_name}"
                )
                results.append((value, label))
            return results
        finally:
            meters.in_flight.dec(len(blobs) - observed_done)
            self.supervisor.close_wave(wave)

    def _run_degraded(
        self,
        wave: Any,
        fn: Callable[[Any], Any],
        payloads: Sequence[Any],
        claimed: List[int],
    ) -> None:
        """Execute claimed tasks locally, announcing the degradation once."""
        reason = (
            "no-live-agents"
            if self.supervisor.alive_agents() == 0
            else "attempts-exhausted"
        )
        self._emit(
            engine_events.FLEET_DEGRADED,
            {"reason": reason, "tasks": list(claimed)},
        )
        for index in claimed:
            blob = run_task(encode_task(fn, payloads[index]))
            self.supervisor.complete_local(wave, index, blob)

    def _note_progress(self, wave: Any, submitted: float, seen: int) -> int:
        """Record newly completed tasks in the pool instruments.

        Completion instants live on agents' clocks, so ``task_seconds`` spans
        submit-to-observed-completion -- the same approximation the process
        backend makes for tasks finishing in another process.
        """
        done = sum(1 for task in wave.tasks if task.state == "done")
        fresh = done - seen
        if fresh > 0:
            duration = time.perf_counter() - submitted
            meters = self._metrics
            for _ in range(fresh):
                meters.tasks.inc()
                meters.task_seconds.observe(duration)
                meters.in_flight.dec()
        return done

    def _pump_incidents(self, wave: Any) -> None:
        """Re-emit the wave's supervision incidents as typed engine events."""
        for incident in self.supervisor.drain_incidents(wave):
            kind = {
                "lease-reassigned": engine_events.FLEET_LEASE_REASSIGNED,
                "agent-dead": engine_events.FLEET_AGENT_DEAD,
            }.get(incident.pop("kind", ""), None)
            if kind is not None:
                self._emit(kind, incident)

    def _emit(self, kind: str, payload: dict) -> None:
        if self._events is not None:
            self._events(EngineEvent(kind=kind, payload=payload))
