"""The worker agent: ``repro-search agent --url <daemon>``.

A :class:`WorkerAgent` is one remote pair of hands.  It registers with the
daemon's fleet endpoints, heartbeats on the interval the supervisor dictates
(each beat reporting the task ids it is actively executing -- the link state
that keeps leases renewed), and otherwise loops pull-execute-complete:

* ``POST /agents/lease`` grants at most one task blob; the agent executes it
  with :func:`repro.fleet.pool.run_task` (exceptions become results) and
  reports back with ``POST /agents/complete``.
* A lease call is **not retried** (its response may have been dropped after
  the grant was recorded; the idle loop re-leases naturally and the orphaned
  grant expires on its deadline).  A complete **is retried** -- the
  supervisor fences duplicates, so resending is always safe.
* If the daemon forgets the agent (missed heartbeats while the link was
  down -> 404 ``unknown-agent``), it simply re-registers under a fresh id;
  its old leases have already been reassigned.
* When the daemon drains, heartbeat/lease responses carry ``draining`` --
  the agent finishes its current task and exits cleanly.  A daemon that
  vanishes outright (no drain, just silence) is given ``daemon_timeout``
  seconds of continuous unreachability before the agent gives it up for
  dead and exits on its own.

All transports run through the shared
:class:`~repro.fleet.retry.RetryPolicy`, and every call first consults an
optional :class:`~repro.fleet.chaos.ChaosPolicy`, which is how the tests and
``bench_fleet.py`` inject dropped messages, duplicate sends, mid-task agent
death (:class:`~repro.fleet.chaos.AgentKilled`) and stalled heartbeats
without touching any production code path.
"""

from __future__ import annotations

import base64
import json
import threading
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional

from repro.fleet.chaos import AgentKilled, ChaosPolicy
from repro.fleet.pool import run_task
from repro.fleet.retry import RetryPolicy
from repro.fleet.supervisor import UnknownAgent

_JSON_HEADERS = {"Content-Type": "application/json"}


class FleetClient:
    """The agent's HTTP client for the daemon's ``/agents/*`` endpoints.

    Chaos hooks wrap the transport itself: a dropped call raises before any
    bytes leave the process, a duplicated call is sent twice back-to-back --
    so fault injection exercises exactly the retry/fencing paths real
    network faults would.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 10.0,
        retry: Optional[RetryPolicy] = None,
        chaos: Optional[ChaosPolicy] = None,
    ):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retry = retry or RetryPolicy()
        self.chaos = chaos

    def _post(
        self, op: str, payload: Dict[str, Any], idempotent: bool
    ) -> Dict[str, Any]:
        def send_once() -> Dict[str, Any]:
            if self.chaos is not None:
                verdict = self.chaos.on_send(op)
                if verdict.delay_seconds > 0:
                    time.sleep(verdict.delay_seconds)
                verdict.raise_if_dropped()
                response = self._http(op, payload)
                if verdict.duplicated:
                    try:
                        self._http(op, payload)
                    except Exception:
                        pass  # the duplicate is injected noise, never load-bearing
                return response
            return self._http(op, payload)

        try:
            return self.retry.call(send_once, idempotent=idempotent)
        except urllib.error.HTTPError as error:
            raise self._map_error(error, payload) from None

    def _http(self, op: str, payload: Dict[str, Any]) -> Dict[str, Any]:
        request = urllib.request.Request(
            f"{self.base_url}/agents/{op}",
            data=json.dumps(payload).encode("utf-8"),
            headers=_JSON_HEADERS,
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=self.timeout) as response:
            return json.load(response)

    @staticmethod
    def _map_error(
        error: urllib.error.HTTPError, payload: Dict[str, Any]
    ) -> Exception:
        if error.code == 404:
            return UnknownAgent(str(payload.get("agent_id", "?")))
        return error

    # -- the four protocol calls ----------------------------------------------------
    def register(self, name: Optional[str] = None) -> Dict[str, Any]:
        # Non-idempotent: a retried register would enroll a ghost agent the
        # supervisor must then time out; the agent's own loop retries instead.
        return self._post("register", {"name": name}, idempotent=False)

    def heartbeat(self, agent_id: str, active_tasks: List[str]) -> Dict[str, Any]:
        return self._post(
            "heartbeat",
            {"agent_id": agent_id, "active_tasks": active_tasks},
            idempotent=True,
        )

    def lease(self, agent_id: str) -> Optional[Dict[str, Any]]:
        # Non-idempotent: a grant whose response is lost must not be blindly
        # re-requested -- the supervisor expires the orphan on its deadline.
        response = self._post("lease", {"agent_id": agent_id}, idempotent=False)
        task = response.get("task")
        if task is None:
            return None
        task = dict(task)
        task["payload"] = base64.b64decode(task["payload"])
        task["draining"] = bool(response.get("draining", False))
        return task

    def complete(self, agent_id: str, task_id: str, result: bytes) -> bool:
        # Idempotent by fencing: a duplicate is rejected with accepted=false.
        response = self._post(
            "complete",
            {
                "agent_id": agent_id,
                "task_id": task_id,
                "result": base64.b64encode(result).decode("ascii"),
            },
            idempotent=True,
        )
        return bool(response.get("accepted"))


class WorkerAgent:
    """One fleet worker process (or thread, in the tests)."""

    def __init__(
        self,
        url: str,
        name: Optional[str] = None,
        client: Optional[FleetClient] = None,
        chaos: Optional[ChaosPolicy] = None,
        retry: Optional[RetryPolicy] = None,
        timeout: float = 10.0,
        register_timeout: Optional[float] = 30.0,
        daemon_timeout: Optional[float] = 60.0,
    ):
        self.client = client or FleetClient(url, timeout=timeout, retry=retry, chaos=chaos)
        self.chaos = chaos
        self.requested_name = name
        self.register_timeout = register_timeout
        # Continuous unreachability after registration that makes the agent
        # give the daemon up for dead and exit (None: poll forever).
        self.daemon_timeout = daemon_timeout
        self.agent_id: Optional[str] = None
        self.name: Optional[str] = name
        self.tasks_started = 0
        self.tasks_done = 0
        self.killed = False
        self.lost_daemon = False
        self._last_contact = time.monotonic()
        self._heartbeat_interval = 2.0
        self._poll_interval = 0.2
        self._stop = threading.Event()
        self._draining = threading.Event()
        self._active_lock = threading.Lock()
        self._active: List[str] = []

    # -- lifecycle ------------------------------------------------------------------
    def run(self) -> int:
        """Serve until stopped, drained, or chaos-killed; returns exit code."""
        try:
            self._register()
        except TimeoutError:
            return 1
        if self._stop.is_set():
            return 0
        beater = threading.Thread(
            target=self._heartbeat_loop, daemon=True, name="fleet-heartbeat"
        )
        beater.start()
        try:
            self._work_loop()
        except AgentKilled:
            # Simulated abrupt death: no deregistration, no completion, no
            # further heartbeats -- the supervisor must notice on its own.
            self.killed = True
        finally:
            self._stop.set()
            beater.join(timeout=self._heartbeat_interval * 2)
        return 0

    def stop(self) -> None:
        """Ask the agent to exit after its current task (thread-safe)."""
        self._stop.set()

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    # -- registration ---------------------------------------------------------------
    def _register(self) -> None:
        """Enroll with the daemon, waiting for it to come up if needed."""
        deadline = (
            None
            if self.register_timeout is None
            else time.monotonic() + self.register_timeout
        )
        while not self._stop.is_set():
            try:
                info = self.client.register(self.requested_name)
            except (urllib.error.URLError, ConnectionError, OSError):
                if deadline is not None and time.monotonic() >= deadline:
                    raise TimeoutError(
                        f"no daemon at {self.client.base_url} within "
                        f"{self.register_timeout}s"
                    )
                time.sleep(0.2)
                continue
            self.agent_id = str(info["agent_id"])
            self.name = str(info.get("name") or self.agent_id)
            self._heartbeat_interval = float(
                info.get("heartbeat_interval", self._heartbeat_interval)
            )
            self._poll_interval = float(
                info.get("poll_interval", self._poll_interval)
            )
            if info.get("draining"):
                self._draining.set()
            with self._active_lock:
                self._active = []  # any prior leases are fenced off already
            self._last_contact = time.monotonic()
            return

    # -- heartbeats -----------------------------------------------------------------
    def _heartbeat_loop(self) -> None:
        while not self._stop.wait(self._heartbeat_interval):
            if self.chaos is not None and self.chaos.heartbeat_stalled():
                continue  # the beat is swallowed; the daemon hears nothing
            with self._active_lock:
                active = list(self._active)
            try:
                response = self.client.heartbeat(self.agent_id, active)
            except UnknownAgent:
                continue  # the work loop re-registers on its next lease
            except Exception:
                continue  # transient transport fault; the next beat retries
            self._last_contact = time.monotonic()
            if response.get("draining"):
                self._draining.set()

    # -- the work loop --------------------------------------------------------------
    def _work_loop(self) -> None:
        while not self._stop.is_set():
            if self._draining.is_set():
                return
            try:
                task = self.client.lease(self.agent_id)
            except UnknownAgent:
                try:
                    self._register()
                except TimeoutError:
                    self.lost_daemon = True
                    return
                continue
            except Exception:
                if self._daemon_lost():
                    return
                time.sleep(self._poll_interval)
                continue
            self._last_contact = time.monotonic()
            if task is None:
                time.sleep(self._poll_interval)
                continue
            if task.get("draining"):
                self._draining.set()
            ordinal = self.tasks_started
            self.tasks_started += 1
            if self.chaos is not None and self.chaos.should_die(ordinal):
                raise AgentKilled(
                    f"chaos: agent {self.name!r} died after leasing task "
                    f"#{ordinal} ({task['task_id']})"
                )
            self._execute(task)

    def _daemon_lost(self) -> bool:
        """True once the daemon has been unreachable past ``daemon_timeout``.

        Heartbeats and leases both refresh ``_last_contact``, so only a
        *continuously* dead link trips this -- a daemon restarting inside
        the window is ridden out by the poll loop.
        """
        if self.daemon_timeout is None:
            return False
        if time.monotonic() - self._last_contact <= self.daemon_timeout:
            return False
        self.lost_daemon = True
        return True

    def _execute(self, task: Dict[str, Any]) -> None:
        task_id = str(task["task_id"])
        with self._active_lock:
            self._active.append(task_id)
        try:
            result = run_task(task["payload"])
            try:
                self.client.complete(self.agent_id, task_id, result)
                self.tasks_done += 1
            except Exception:
                # The completion never landed; the lease expires and the
                # task is reassigned -- correctness is the supervisor's job.
                pass
        finally:
            with self._active_lock:
                if task_id in self._active:
                    self._active.remove(task_id)
