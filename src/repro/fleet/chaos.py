"""Deterministic fault injection for the fleet: the chaos harness.

The supervision layer only earns trust if its failure paths are exercised on
every CI run, so faults are injected *deterministically*: a
:class:`ChaosPolicy` names exact call indices to drop/delay/duplicate and
exact task ordinals to die on, never a probability.  The same policy against
the same workload produces the same fault timeline, which is what lets the
chaos tests assert bit-for-bit result parity with an undisturbed run.

Faults modelled (all consumed by :class:`~repro.fleet.agent.WorkerAgent` and
its HTTP client):

* **drop** -- the request never reaches the daemon; the client sees a
  connection error (exercises :class:`~repro.fleet.retry.RetryPolicy`).
* **delay** -- the request is held for a fixed time before sending
  (exercises lease deadlines under slow links).
* **duplicate** -- the request is sent twice (exercises idempotent
  completion: the second ``complete`` must be rejected gracefully).
* **kill_on_task** -- the agent dies abruptly after *leasing* the n-th task
  but before completing it: heartbeats stop, the lease expires and the
  supervisor must reassign (the acceptance scenario).
* **stall_heartbeat_after** -- the agent keeps working but its heartbeats
  stop after n beats: the supervisor declares it dead and reassigns; the
  stale agent's eventual ``complete`` must be fenced off.

Counters are per operation name and start at zero, so ``drop={"lease": {0}}``
reads "drop the agent's first lease call".
"""

from __future__ import annotations

import threading
import urllib.error
from typing import Dict, Iterable, Optional, Set


class AgentKilled(Exception):
    """Raised inside a chaos-killed agent to simulate an abrupt process death."""


class DroppedMessage(urllib.error.URLError):
    """The injected transport fault: looks like a dropped connection."""

    def __init__(self, op: str, index: int):
        super().__init__(f"chaos: dropped {op!r} call #{index}")
        self.op = op
        self.index = index


class ChaosPolicy:
    """A deterministic fault schedule, shared by the tests and the benchmark.

    Thread-safe: the agent's heartbeat thread and main loop both consult the
    policy, so counters mutate under a lock.
    """

    def __init__(
        self,
        drop: Optional[Dict[str, Iterable[int]]] = None,
        delay: Optional[Dict[str, float]] = None,
        duplicate: Optional[Dict[str, Iterable[int]]] = None,
        kill_on_task: Optional[int] = None,
        stall_heartbeat_after: Optional[int] = None,
    ):
        self._lock = threading.Lock()
        self._drop: Dict[str, Set[int]] = {
            op: set(indices) for op, indices in (drop or {}).items()
        }
        self._delay: Dict[str, float] = dict(delay or {})
        self._duplicate: Dict[str, Set[int]] = {
            op: set(indices) for op, indices in (duplicate or {}).items()
        }
        self.kill_on_task = kill_on_task
        self.stall_heartbeat_after = stall_heartbeat_after
        self._op_counts: Dict[str, int] = {}
        self._heartbeats_seen = 0
        # Totals the tests/bench assert on.
        self.dropped = 0
        self.duplicated = 0
        self.kills = 0
        self.stalled_heartbeats = 0

    # -- transport hooks (called by the agent's HTTP client) -----------------------
    def on_send(self, op: str) -> "ChaosVerdict":
        """Account one outgoing call of ``op``; returns what to do with it."""
        with self._lock:
            index = self._op_counts.get(op, 0)
            self._op_counts[op] = index + 1
            dropped = index in self._drop.get(op, ())
            duplicated = index in self._duplicate.get(op, ())
            if dropped:
                self.dropped += 1
            if duplicated:
                self.duplicated += 1
            return ChaosVerdict(
                op=op,
                index=index,
                dropped=dropped,
                duplicated=duplicated,
                delay_seconds=self._delay.get(op, 0.0),
            )

    # -- lifecycle hooks (called by the agent itself) ------------------------------
    def should_die(self, tasks_started: int) -> bool:
        """True when the agent must die mid-task (after leasing task n)."""
        if self.kill_on_task is not None and tasks_started == self.kill_on_task:
            with self._lock:
                self.kills += 1
            return True
        return False

    def heartbeat_stalled(self) -> bool:
        """True once the heartbeat budget is spent; the beat is swallowed."""
        with self._lock:
            if self.stall_heartbeat_after is None:
                return False
            self._heartbeats_seen += 1
            if self._heartbeats_seen > self.stall_heartbeat_after:
                self.stalled_heartbeats += 1
                return True
            return False

    def calls(self, op: str) -> int:
        """How many ``op`` sends the policy has seen (for assertions)."""
        with self._lock:
            return self._op_counts.get(op, 0)


class ChaosVerdict:
    """The policy's decision for one outgoing call."""

    __slots__ = ("op", "index", "dropped", "duplicated", "delay_seconds")

    def __init__(
        self,
        op: str,
        index: int,
        dropped: bool,
        duplicated: bool,
        delay_seconds: float,
    ):
        self.op = op
        self.index = index
        self.dropped = dropped
        self.duplicated = duplicated
        self.delay_seconds = delay_seconds

    def raise_if_dropped(self) -> None:
        if self.dropped:
            raise DroppedMessage(self.op, self.index)
