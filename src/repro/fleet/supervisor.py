"""Daemon-side fleet supervision: agent registry, lease tables, reassignment.

:class:`FleetSupervisor` owns the mutable truth of the worker fabric -- which
agents are alive, which task each one holds a lease on, and how often work
had to be reassigned -- behind one lock, with the supervised link-state
discipline the ROADMAP cites from the gridworks-scada proactor runtime:

* **Registration.**  An agent announces itself and receives an id plus the
  timing contract (heartbeat interval, lease duration, idle poll delay).
* **Heartbeats as link state.**  Each heartbeat carries the agent's *actively
  executing* task ids and renews exactly those leases.  A lease the agent
  never acknowledges (its grant response was dropped on the wire) expires on
  its original deadline instead of being renewed forever -- the supervisor
  trusts what the agent reports, not what the supervisor once sent.
* **Dead-agent detection.**  ``miss_factor`` missed heartbeat intervals mark
  an agent dead; its leases return to pending with an incremented attempt
  count.  Reassignment is deterministic: tasks are granted strictly lowest
  wave, lowest index first, so a recovered wave replays in the same order.
* **At-most-one active grant.**  A task is leased to at most one live agent.
  A completion from a fenced-off stale lease (the agent was declared dead and
  the task re-granted) is rejected and counted, never double-applied.
* **Bounded retries + degradation.**  A task reassigned ``max_task_attempts``
  times stops being offered to agents; the
  :class:`~repro.fleet.pool.RemoteWorkerPool` claims it (and everything
  pending once no agent is alive) for local execution, so a wave always
  completes.

All deadlines use the monotonic clock; wall-clock timestamps appear only in
the agent-status payloads served for observability.  Results are opaque bytes
(pickled by the pool, round-tripped untouched), so the supervisor can never
steer what a wave computes -- only where it runs.
"""

from __future__ import annotations

import threading
import time
import uuid
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.obs import metrics as obs_metrics

# Task lifecycle states.
PENDING = "pending"
LEASED = "leased"
DONE = "done"


class UnknownAgent(KeyError):
    """The agent id is not registered (or was declared dead and reaped)."""

    def __init__(self, agent_id: str):
        super().__init__(agent_id)
        self.agent_id = agent_id

    def __str__(self) -> str:
        return (
            f"unknown agent {self.agent_id!r}: not registered, or declared "
            "dead after missed heartbeats (re-register to rejoin the fleet)"
        )


@dataclass(frozen=True)
class FleetConfig:
    """The fleet's timing and retry contract (shared with every agent)."""

    heartbeat_interval: float = 2.0
    # Missed intervals before an agent is declared dead.
    miss_factor: float = 3.0
    # Unacknowledged lease lifetime; heartbeats renew acknowledged leases.
    lease_seconds: float = 15.0
    # Reassignments before a task is withdrawn from remote execution.
    max_task_attempts: int = 5
    # Suggested delay between an idle agent's lease polls.
    poll_interval: float = 0.2

    def __post_init__(self) -> None:
        if self.heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        if self.miss_factor <= 1.0:
            raise ValueError("miss_factor must exceed 1.0")
        if self.lease_seconds <= 0:
            raise ValueError("lease_seconds must be positive")
        if self.max_task_attempts <= 0:
            raise ValueError("max_task_attempts must be positive")
        if self.poll_interval <= 0:
            raise ValueError("poll_interval must be positive")

    @property
    def agent_timeout(self) -> float:
        """Seconds without a heartbeat after which an agent is dead."""
        return self.heartbeat_interval * self.miss_factor


class _Agent:
    """One registered worker agent's link state."""

    __slots__ = ("agent_id", "name", "registered_at", "last_seen", "tasks_done")

    def __init__(self, agent_id: str, name: str, now: float):
        self.agent_id = agent_id
        self.name = name
        self.registered_at = time.time()  # wall clock: status payloads only
        self.last_seen = now  # monotonic: drives death detection
        self.tasks_done = 0


class _Task:
    """One unit of leased work inside a wave."""

    __slots__ = (
        "index",
        "payload",
        "state",
        "attempts",
        "agent_id",
        "agent_name",
        "lease_expires",
        "acknowledged",
        "result",
        "error",
    )

    def __init__(self, index: int, payload: bytes):
        self.index = index
        self.payload = payload
        self.state = PENDING
        self.attempts = 0
        self.agent_id: Optional[str] = None
        self.agent_name: Optional[str] = None
        self.lease_expires = 0.0
        self.acknowledged = False
        self.result: Optional[bytes] = None
        self.error: Optional[str] = None


class Wave:
    """One ``map_ordered`` fan-out: an ordered task list plus its incidents.

    Incidents are the wave-scoped supervision occurrences (reassignments,
    agent deaths) the pool drains and re-emits as typed ``EngineEvent``s on
    the owning run's bus -- the supervisor itself has no bus to publish on.
    """

    def __init__(self, wave_id: str, payloads: List[bytes]):
        self.wave_id = wave_id
        self.tasks = [_Task(index, payload) for index, payload in enumerate(payloads)]
        self.closed = False
        self.incidents: List[Dict[str, Any]] = []

    @property
    def done(self) -> bool:
        return all(task.state == DONE for task in self.tasks)


class FleetSupervisor:
    """Owns the fleet's lease tables; every method is thread-safe."""

    def __init__(
        self,
        config: Optional[FleetConfig] = None,
        metrics: Optional["obs_metrics.MetricsRegistry"] = None,
    ):
        self.config = config or FleetConfig()
        self._lock = threading.Lock()
        self._agents: Dict[str, _Agent] = {}
        self._waves: Dict[str, Wave] = {}  # insertion order = grant order
        self._draining = False
        # Totals (also exported as repro.obs instruments below).
        self.reassignments = 0
        self.agents_died = 0
        self.stale_completions = 0
        self.tasks_completed = 0
        registry = metrics or obs_metrics.get_registry()
        registry.register_callback(
            "repro_fleet_agents_alive",
            "Worker agents currently registered and heartbeating",
            lambda: float(len(self._agents)),
        )
        registry.register_callback(
            "repro_fleet_leases_active",
            "Tasks currently leased to an agent",
            self._count_active_leases,
        )
        self._m_reassigned = registry.counter(
            "repro_fleet_leases_reassigned_total",
            "Expired leases returned to pending and re-granted",
        )
        self._m_agents_dead = registry.counter(
            "repro_fleet_agents_dead_total",
            "Agents declared dead after missed heartbeats",
        )
        self._m_heartbeats = registry.counter(
            "repro_fleet_heartbeats_total", "Heartbeats accepted"
        )
        self._m_completed = registry.counter(
            "repro_fleet_tasks_completed_total",
            "Task completions accepted, by execution site",
            labelnames=("site",),
        )
        self._m_stale = registry.counter(
            "repro_fleet_completions_stale_total",
            "Completions rejected because the lease had been reassigned",
        )

    def _count_active_leases(self) -> float:
        with self._lock:
            return float(
                sum(
                    1
                    for wave in self._waves.values()
                    for task in wave.tasks
                    if task.state == LEASED
                )
            )

    # -- agent lifecycle -----------------------------------------------------------
    def register_agent(self, name: Optional[str] = None) -> Dict[str, Any]:
        """Admit an agent; returns its id and the fleet's timing contract."""
        agent_id = uuid.uuid4().hex[:12]
        now = time.monotonic()
        with self._lock:
            agent = _Agent(agent_id, name or f"agent-{agent_id[:6]}", now)
            self._agents[agent_id] = agent
        return {
            "agent_id": agent_id,
            "name": agent.name,
            "heartbeat_interval": self.config.heartbeat_interval,
            "lease_seconds": self.config.lease_seconds,
            "poll_interval": self.config.poll_interval,
            "draining": self._draining,
        }

    def heartbeat(
        self, agent_id: str, active_tasks: Optional[List[str]] = None
    ) -> Dict[str, Any]:
        """Record liveness and renew the leases the agent says it is running.

        ``active_tasks`` is the link state: only the listed task ids are
        renewed, so a grant the agent never received expires on schedule.
        """
        now = time.monotonic()
        self.reap(now)
        active = set(active_tasks or ())
        with self._lock:
            agent = self._agents.get(agent_id)
            if agent is None:
                raise UnknownAgent(agent_id)
            agent.last_seen = now
            for wave in self._waves.values():
                for task in wave.tasks:
                    if (
                        task.state == LEASED
                        and task.agent_id == agent_id
                        and self._task_id(wave, task) in active
                    ):
                        task.acknowledged = True
                        task.lease_expires = now + self.config.lease_seconds
        self._m_heartbeats.inc()
        return {"ok": True, "draining": self._draining}

    def agents_status(self) -> List[Dict[str, Any]]:
        """Live agents for ``GET /agents`` (wall-clock fields are display-only)."""
        now = time.monotonic()
        self.reap(now)
        with self._lock:
            return [
                {
                    "agent_id": agent.agent_id,
                    "name": agent.name,
                    "registered_at": agent.registered_at,
                    "seconds_since_heartbeat": max(0.0, now - agent.last_seen),
                    "tasks_done": agent.tasks_done,
                    "leases": sum(
                        1
                        for wave in self._waves.values()
                        for task in wave.tasks
                        if task.state == LEASED and task.agent_id == agent.agent_id
                    ),
                }
                for agent in self._agents.values()
            ]

    def alive_agents(self) -> int:
        self.reap()
        with self._lock:
            return len(self._agents)

    # -- wave lifecycle (pool side; same process as the supervisor) ------------------
    def submit_wave(self, payloads: List[bytes]) -> Wave:
        """Open a wave of opaque task payloads; tasks grant in index order."""
        wave = Wave(uuid.uuid4().hex[:12], payloads)
        with self._lock:
            self._waves[wave.wave_id] = wave
        return wave

    def close_wave(self, wave: Wave) -> None:
        """Retire a wave; later completions for it are ignored gracefully."""
        with self._lock:
            wave.closed = True
            self._waves.pop(wave.wave_id, None)

    def claim_local(self, wave: Wave) -> List[int]:
        """Claim for local execution every task agents cannot finish.

        A task is unservable remotely once it exhausted
        ``max_task_attempts`` reassignments, or while no agent is alive.
        Claimed tasks are marked done-by-local later via
        :meth:`complete_local`; returns their indices (grant order).
        """
        self.reap()
        with self._lock:
            fleet_empty = not self._agents
            claimed = []
            for task in wave.tasks:
                if task.state != PENDING:
                    continue
                if fleet_empty or task.attempts >= self.config.max_task_attempts:
                    task.state = LEASED
                    task.agent_id = None
                    task.agent_name = "local"
                    task.acknowledged = True
                    task.lease_expires = float("inf")
                    claimed.append(task.index)
            return claimed

    def complete_local(self, wave: Wave, index: int, result: bytes) -> None:
        """Record a locally executed task's result (no fencing needed)."""
        with self._lock:
            task = wave.tasks[index]
            task.state = DONE
            task.result = result
            self.tasks_completed += 1
        self._m_completed.labels(site="local").inc()

    def drain_incidents(self, wave: Wave) -> List[Dict[str, Any]]:
        """Pop the wave's supervision incidents (for event emission)."""
        with self._lock:
            incidents = wave.incidents
            wave.incidents = []
            return incidents

    # -- the lease protocol (agent side, via the daemon's HTTP endpoints) ------------
    def lease(self, agent_id: str) -> Optional[Dict[str, Any]]:
        """Grant the lowest pending task to ``agent_id`` (or None when idle).

        Grant order is deterministic -- oldest wave first, lowest task index
        first -- so a wave recovered after failures replays its remaining
        work in the same order every time.
        """
        now = time.monotonic()
        self.reap(now)
        with self._lock:
            agent = self._agents.get(agent_id)
            if agent is None:
                raise UnknownAgent(agent_id)
            if self._draining:
                return None
            for wave in self._waves.values():
                for task in wave.tasks:
                    if (
                        task.state == PENDING
                        and task.attempts < self.config.max_task_attempts
                    ):
                        task.state = LEASED
                        task.agent_id = agent_id
                        task.agent_name = agent.name
                        task.acknowledged = False
                        task.lease_expires = now + self.config.lease_seconds
                        return {
                            "task_id": self._task_id(wave, task),
                            "payload": task.payload,
                            "lease_seconds": self.config.lease_seconds,
                        }
        return None

    def complete(
        self,
        agent_id: str,
        task_id: str,
        result: Optional[bytes] = None,
        error: Optional[str] = None,
    ) -> bool:
        """Accept a completion iff the agent still holds the task's lease.

        Returns False (never raises) for stale or duplicate completions --
        the lease expired and was re-granted, the wave was closed, or the
        task already completed -- so an agent retrying a dropped ``complete``
        is always safe.
        """
        self.reap()
        with self._lock:
            located = self._find_task(task_id)
            if located is None:
                self.stale_completions += 1
                self._m_stale.inc()
                return False
            _wave, task = located
            if task.state != LEASED or task.agent_id != agent_id:
                self.stale_completions += 1
                self._m_stale.inc()
                return False
            task.state = DONE
            task.result = result
            task.error = error
            self.tasks_completed += 1
            agent = self._agents.get(agent_id)
            if agent is not None:
                agent.tasks_done += 1
                agent.last_seen = time.monotonic()
        self._m_completed.labels(site="agent").inc()
        return True

    # -- supervision ---------------------------------------------------------------
    def reap(self, now: Optional[float] = None) -> None:
        """Expire dead agents and stale leases; return their tasks to pending.

        Called inline from every protocol operation and from the pool's wait
        loop, so supervision needs no background thread of its own.
        """
        now = time.monotonic() if now is None else now
        timeout = self.config.agent_timeout
        with self._lock:
            dead = [
                agent
                for agent in self._agents.values()
                if now - agent.last_seen > timeout
            ]
            for agent in dead:
                del self._agents[agent.agent_id]
                self.agents_died += 1
                self._record_death(agent)
            for wave in self._waves.values():
                for task in wave.tasks:
                    if task.state == LEASED and task.agent_id is not None:
                        holder_alive = task.agent_id in self._agents
                        if holder_alive and now < task.lease_expires:
                            continue
                        self._expire_lease(wave, task, holder_alive)
        for _agent in dead:
            self._m_agents_dead.inc()

    def _record_death(self, agent: _Agent) -> None:
        """Note an agent death on every wave holding its leases (locked)."""
        for wave in self._waves.values():
            held = [
                task.index
                for task in wave.tasks
                if task.state == LEASED and task.agent_id == agent.agent_id
            ]
            if held:
                wave.incidents.append(
                    {
                        "kind": "agent-dead",
                        "agent": agent.name,
                        "tasks": held,
                    }
                )

    def _expire_lease(self, wave: Wave, task: _Task, holder_alive: bool) -> None:
        """Return one expired lease to pending (locked)."""
        previous = task.agent_name
        task.state = PENDING
        task.agent_id = None
        task.agent_name = None
        task.acknowledged = False
        task.attempts += 1
        self.reassignments += 1
        self._m_reassigned.inc()
        wave.incidents.append(
            {
                "kind": "lease-reassigned",
                "task": task.index,
                "agent": previous or "?",
                "attempts": task.attempts,
                "reason": "lease-expired" if holder_alive else "agent-dead",
            }
        )

    # -- draining ------------------------------------------------------------------
    def drain(self) -> None:
        """Stop granting leases; agents see ``draining`` and wind down."""
        self._draining = True  # repro-lint: disable=THR001 -- one-way bool flip, atomic under the GIL; readers tolerate either value

    @property
    def draining(self) -> bool:
        return self._draining

    # -- internals -----------------------------------------------------------------
    @staticmethod
    def _task_id(wave: Wave, task: _Task) -> str:
        return f"{wave.wave_id}:{task.index}"

    def _find_task(self, task_id: str) -> Optional[Tuple[Wave, _Task]]:
        wave_id, _, index_text = task_id.partition(":")
        wave = self._waves.get(wave_id)
        if wave is None:
            return None
        try:
            index = int(index_text)
        except ValueError:
            return None
        if not 0 <= index < len(wave.tasks):
            return None
        return wave, wave.tasks[index]
