"""repro.fleet: the supervised multi-host worker fabric.

One daemon, many agents, no shared memory -- just leases, heartbeats and a
deterministic reassignment discipline that keeps a distributed wave
bit-for-bit equal to a local run.  The package splits along trust lines:

* :mod:`repro.fleet.supervisor` -- daemon-side truth: agent registry, lease
  tables, dead-agent detection, reassignment, stale-completion fencing.
* :mod:`repro.fleet.pool` -- :class:`RemoteWorkerPool`, the
  ``map_ordered`` backend the engine sees (``EngineConfig(backend="fleet")``).
* :mod:`repro.fleet.agent` -- the remote worker process behind
  ``repro-search agent``.
* :mod:`repro.fleet.retry` -- the one shared deterministic
  :class:`RetryPolicy` (also used by :mod:`repro.service.remote`).
* :mod:`repro.fleet.chaos` -- deterministic fault injection for the tests
  and ``bench_fleet.py``.

Importing the package registers the ``"fleet"`` worker backend; the engine
also lazy-imports it on first use, so a RunSpec naming ``backend: fleet``
validates without any caller importing this module first.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.engine import workers as _workers
from repro.fleet.agent import FleetClient, WorkerAgent
from repro.fleet.chaos import AgentKilled, ChaosPolicy, ChaosVerdict, DroppedMessage
from repro.fleet.pool import (
    RemoteWorkerPool,
    install_supervisor,
    installed_supervisor,
)
from repro.fleet.retry import RetryPolicy
from repro.fleet.supervisor import FleetConfig, FleetSupervisor, UnknownAgent

__all__ = [
    "AgentKilled",
    "ChaosPolicy",
    "ChaosVerdict",
    "DroppedMessage",
    "FleetClient",
    "FleetConfig",
    "FleetSupervisor",
    "RemoteWorkerPool",
    "RetryPolicy",
    "UnknownAgent",
    "WorkerAgent",
    "install_supervisor",
    "installed_supervisor",
]


def _fleet_pool(
    num_workers: int = 2,
    shared: Any = None,
    blas_threads: Optional[int] = None,
    metrics: Any = None,
    events: Optional[Callable] = None,
) -> RemoteWorkerPool:
    # ``shared``/``blas_threads`` are process-backend concerns; agents run in
    # their own processes and pin their own BLAS threads.
    return RemoteWorkerPool(num_workers=num_workers, metrics=metrics, events=events)


_workers.register_backend("fleet", _fleet_pool)
