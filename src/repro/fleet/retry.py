"""One deterministic retry/backoff policy for every client<->daemon call.

Distribution multiplies the ways a single HTTP request can fail -- connection
refused while a daemon restarts, a 503 while it drains, a socket timeout on a
stalled link -- and every caller that invents its own loop invents its own
bugs.  :class:`RetryPolicy` is the single shared answer, with three hard
rules:

* **Deterministic schedule.**  Exponential backoff with *no jitter*: attempt
  ``i`` sleeps ``min(base_delay * multiplier**i, max_delay)`` seconds.  A
  reproduction platform must be replayable end to end, and that includes its
  failure handling -- two runs of the same test against the same fault
  schedule retry at the same instants.
* **Bounded attempts.**  ``max_attempts`` caps the loop; the final failure
  re-raises the original exception untouched so callers keep their existing
  error mapping.
* **Idempotent operations only.**  Retrying a ``POST /runs`` after a dropped
  response could submit the run twice; retrying a ``GET /runs/<id>`` cannot.
  Callers declare each call site's idempotency and the policy refuses to
  retry the unsafe ones -- a non-idempotent call gets exactly one attempt.

What is retryable: connection-level failures (``URLError``, ``ConnectionError``,
timeouts) and the 5xx statuses in ``retry_statuses``.  A 4xx is never
retried -- the request itself is wrong and will be wrong again.
"""

from __future__ import annotations

import time
import urllib.error
from dataclasses import dataclass
from typing import Any, Callable, Optional, Tuple

DEFAULT_RETRY_STATUSES: Tuple[int, ...] = (500, 502, 503, 504)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded, jitter-free exponential backoff for idempotent HTTP calls."""

    max_attempts: int = 4
    base_delay: float = 0.1
    multiplier: float = 2.0
    max_delay: float = 2.0
    retry_statuses: Tuple[int, ...] = DEFAULT_RETRY_STATUSES

    def __post_init__(self) -> None:
        if self.max_attempts <= 0:
            raise ValueError("max_attempts must be positive")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1.0 (backoff never shrinks)")

    def delays(self) -> Tuple[float, ...]:
        """The deterministic sleep schedule between attempts.

        ``max_attempts`` attempts have ``max_attempts - 1`` gaps; the
        schedule is a pure function of the policy, so tests can assert the
        exact instants a client retried at.
        """
        return tuple(
            min(self.base_delay * self.multiplier**index, self.max_delay)
            for index in range(self.max_attempts - 1)
        )

    def is_retryable(self, error: BaseException) -> bool:
        """True for transient transport/server faults; False for caller bugs.

        Order matters: ``HTTPError`` subclasses ``URLError``, so the status
        check must come first or every 404 would look like a dropped
        connection.
        """
        if isinstance(error, urllib.error.HTTPError):
            return error.code in self.retry_statuses
        if isinstance(error, urllib.error.URLError):
            return True
        return isinstance(error, (ConnectionError, TimeoutError, OSError))

    def call(
        self,
        attempt: Callable[[], Any],
        idempotent: bool = True,
        max_attempts: Optional[int] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> Any:
        """Run ``attempt`` under this policy; returns its value.

        ``idempotent=False`` disables retries entirely (one attempt, errors
        propagate) -- declaring idempotency at the call site keeps the
        decision next to the endpoint it describes.  ``max_attempts``
        overrides the policy's bound for probe-style calls (``healthy()``
        passes 1).  ``sleep`` is injectable so tests replay the schedule
        without waiting it out.
        """
        attempts = self.max_attempts if max_attempts is None else max_attempts
        if not idempotent:
            attempts = 1
        schedule = self.delays()
        for index in range(attempts):
            try:
                return attempt()
            except Exception as error:
                if index >= attempts - 1 or not self.is_retryable(error):
                    raise
                delay = schedule[index] if index < len(schedule) else self.max_delay
                if delay > 0:
                    sleep(delay)
        raise AssertionError("unreachable: the loop returns or raises")
