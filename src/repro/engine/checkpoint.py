"""Checkpoint/resume for engine-driven searches.

A checkpoint captures everything a search needs to continue bit-for-bit from
a batch boundary:

* controller weights and the Adam moment estimates of the policy trainer
  (``checkpoint.npz``, via :mod:`repro.utils.serialization`),
* the reward baseline, both RNG streams (controller sampling and child
  weight initialisation), the full :class:`~repro.core.results.SearchHistory`,
  the in-memory evaluation-cache entries and the next episode index
  (``checkpoint.json``).

Checkpoints embed the engine's evaluation-context fingerprint; restoring
into a search with a different dataset / reward / training configuration is
refused rather than silently producing a diverged run.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.core.controller import LSTMController
from repro.core.policy import PolicyGradientTrainer
from repro.core.results import SearchHistory
from repro.engine.cache import EvaluationCache
from repro.engine.serde import (
    history_from_dict,
    history_to_dict,
    rng_state_from_dict,
    rng_state_to_dict,
)
from repro.utils.serialization import (
    load_json,
    load_state_dict,
    save_json,
    save_state_dict,
)

CHECKPOINT_JSON = "checkpoint.json"
CHECKPOINT_NPZ = "checkpoint.npz"
CHECKPOINT_VERSION = 1


@dataclass
class EngineCheckpoint:
    """A parsed checkpoint, ready to be restored into a search."""

    next_episode: int
    context_key: str
    baseline: Optional[float]
    adam_step: int
    rng_states: Dict[str, Any]
    history: SearchHistory
    cache_entries: List[Tuple[str, Dict[str, Any]]]
    arrays: Dict[str, np.ndarray] = field(default_factory=dict, repr=False)


def checkpoint_paths(run_dir: str) -> Tuple[str, str]:
    """The (json, npz) file pair of a run directory's checkpoint."""
    return (
        os.path.join(run_dir, CHECKPOINT_JSON),
        os.path.join(run_dir, CHECKPOINT_NPZ),
    )


def has_checkpoint(run_dir: str) -> bool:
    """True when ``run_dir`` holds a complete checkpoint pair."""
    json_path, npz_path = checkpoint_paths(run_dir)
    return os.path.exists(json_path) and os.path.exists(npz_path)


def save_checkpoint(
    run_dir: str,
    *,
    next_episode: int,
    context_key: str,
    controller: LSTMController,
    policy_trainer: PolicyGradientTrainer,
    sample_rng: np.random.Generator,
    child_rng: np.random.Generator,
    history: SearchHistory,
    cache: Optional[EvaluationCache] = None,
) -> str:
    """Write a checkpoint under ``run_dir`` and return the JSON path.

    Must be called at a batch boundary (no pending policy-gradient episodes);
    :meth:`PolicyGradientTrainer.state_dict` enforces this.
    """
    policy_state = policy_trainer.state_dict()
    arrays: Dict[str, np.ndarray] = {}
    for param in controller.parameters():
        arrays[f"param__{param.name}"] = param.data
    for index, (m, v) in enumerate(
        zip(policy_state["optimizer"]["m"], policy_state["optimizer"]["v"])
    ):
        arrays[f"adam_m__{index}"] = m
        arrays[f"adam_v__{index}"] = v

    json_path, npz_path = checkpoint_paths(run_dir)
    save_state_dict(npz_path, arrays)
    save_json(
        json_path,
        {
            "version": CHECKPOINT_VERSION,
            "next_episode": next_episode,
            "context_key": context_key,
            "baseline": policy_state["baseline"],
            "adam_step": policy_state["optimizer"]["step"],
            "rng": {
                "sample": rng_state_to_dict(sample_rng),
                "child": rng_state_to_dict(child_rng),
            },
            "history": history_to_dict(history),
            "cache": cache.snapshot() if cache is not None else [],
        },
    )
    return json_path


def load_checkpoint(run_dir: str) -> EngineCheckpoint:
    """Read and parse the checkpoint stored under ``run_dir``."""
    json_path, npz_path = checkpoint_paths(run_dir)
    if not os.path.exists(json_path) or not os.path.exists(npz_path):
        raise FileNotFoundError(f"no checkpoint found under {run_dir!r}")
    payload = load_json(json_path)
    version = int(payload.get("version", -1))
    if version != CHECKPOINT_VERSION:
        raise ValueError(
            f"checkpoint version {version} is not supported "
            f"(expected {CHECKPOINT_VERSION})"
        )
    return EngineCheckpoint(
        next_episode=int(payload["next_episode"]),
        context_key=str(payload["context_key"]),
        baseline=payload["baseline"],
        adam_step=int(payload["adam_step"]),
        rng_states=payload["rng"],
        history=history_from_dict(payload["history"]),
        cache_entries=[(key, entry) for key, entry in payload["cache"]],
        arrays=load_state_dict(npz_path),
    )


def restore_checkpoint(
    checkpoint: EngineCheckpoint,
    *,
    context_key: str,
    controller: LSTMController,
    policy_trainer: PolicyGradientTrainer,
    sample_rng: np.random.Generator,
    child_rng: np.random.Generator,
    cache: Optional[EvaluationCache] = None,
) -> Tuple[int, SearchHistory]:
    """Load ``checkpoint`` into live search components.

    Returns ``(next_episode, history)``; the caller continues the search from
    there.  Raises when the checkpoint was written under a different
    evaluation context (different dataset, reward or training configuration).
    """
    if checkpoint.context_key != context_key:
        raise ValueError(
            "checkpoint was written under a different evaluation context; "
            "reconstruct the search with the original dataset and configuration"
        )
    parameters = controller.parameters()
    for param in parameters:
        key = f"param__{param.name}"
        if key not in checkpoint.arrays:
            raise KeyError(f"checkpoint is missing controller parameter {param.name!r}")
        param.data = np.asarray(checkpoint.arrays[key], dtype=np.float64).copy()
    policy_trainer.load_state_dict(
        {
            "baseline": checkpoint.baseline,
            "optimizer": {
                "step": checkpoint.adam_step,
                "m": [
                    checkpoint.arrays[f"adam_m__{index}"]
                    for index in range(len(parameters))
                ],
                "v": [
                    checkpoint.arrays[f"adam_v__{index}"]
                    for index in range(len(parameters))
                ],
            },
        }
    )
    rng_state_from_dict(sample_rng, checkpoint.rng_states["sample"])
    rng_state_from_dict(child_rng, checkpoint.rng_states["child"])
    if cache is not None:
        cache.restore(checkpoint.cache_entries)
    return checkpoint.next_episode, checkpoint.history
