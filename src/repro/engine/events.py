"""Engine event bus and JSONL telemetry.

The engine announces everything observable about a run -- episodes
finishing, cache hits, checkpoints being written -- as
:class:`EngineEvent` objects on an :class:`EventBus`.  Consumers subscribe
with plain callables; the built-in :class:`JsonlTelemetry` consumer appends
one JSON line per event to ``<run_dir>/telemetry.jsonl`` so that external
tooling (dashboards, tail -f, post-hoc analysis) can follow a search without
touching engine internals.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

# Event kinds emitted by the engine.
RUN_STARTED = "run-started"
RUN_FINISHED = "run-finished"
BATCH_FINISHED = "batch-finished"
EPISODE_FINISHED = "episode-finished"
CACHE_HIT = "cache-hit"
CHECKPOINT_WRITTEN = "checkpoint-written"
# Evaluation-pipeline kinds (staged runs only).
GATE_REJECTED = "gate-rejected"
STAGE_FINISHED = "stage-finished"
WAVE_PROMOTED = "wave-promoted"
# Engine-level scheduling kinds.
EARLY_STOPPED = "early-stopped"
WAVE_RESIZED = "wave-resized"


@dataclass(frozen=True)
class EngineEvent:
    """One observable engine occurrence."""

    kind: str
    episode: Optional[int] = None
    payload: Dict[str, Any] = field(default_factory=dict)
    timestamp: float = field(default_factory=time.time)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "episode": self.episode,
            "timestamp": self.timestamp,
            **self.payload,
        }


EventCallback = Callable[[EngineEvent], None]


class EventBus:
    """Minimal synchronous publish/subscribe hub."""

    def __init__(self) -> None:
        self._subscribers: List[tuple] = []

    def subscribe(
        self, callback: EventCallback, kinds: Optional[List[str]] = None
    ) -> EventCallback:
        """Register ``callback`` for ``kinds`` (or every kind when None)."""
        self._subscribers.append((callback, None if kinds is None else set(kinds)))
        return callback

    def unsubscribe(self, callback: EventCallback) -> None:
        """Remove every registration of ``callback``."""
        self._subscribers = [
            (cb, kinds) for cb, kinds in self._subscribers if cb is not callback
        ]

    def emit(self, event: EngineEvent) -> None:
        """Deliver ``event`` to every matching subscriber, in order."""
        for callback, kinds in list(self._subscribers):
            if kinds is None or event.kind in kinds:
                callback(event)


class JsonlTelemetry:
    """Event consumer appending one JSON line per event to a file."""

    def __init__(self, path: str):
        self.path = path
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)

    def __call__(self, event: EngineEvent) -> None:
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(event.to_dict(), sort_keys=True) + "\n")
