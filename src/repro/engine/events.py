"""Engine event bus and JSONL telemetry.

The engine announces everything observable about a run -- episodes
finishing, cache hits, checkpoints being written -- as
:class:`EngineEvent` objects on an :class:`EventBus`.  Consumers subscribe
with plain callables; the built-in :class:`JsonlTelemetry` consumer appends
one JSON line per event to ``<run_dir>/telemetry.jsonl`` so that external
tooling (dashboards, tail -f, post-hoc analysis) can follow a search without
touching engine internals.

:meth:`EngineEvent.to_dict` / :meth:`EngineEvent.from_dict` are exact
inverses, so one ``EngineEvent`` schema serves both transports: a live
in-process subscription sees the same objects an out-of-process consumer
reconstructs from ``telemetry.jsonl`` lines (this is what the run service's
typed event streams are built on).

A raising subscriber never kills the emitting engine loop: the failure is
caught, announced once as a ``consumer-error`` event, and delivery
continues -- telemetry is observability, not a load-bearing dependency.
"""

from __future__ import annotations

import json
import os
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set

# Event kinds emitted by the engine.
RUN_STARTED = "run-started"
RUN_FINISHED = "run-finished"
BATCH_FINISHED = "batch-finished"
EPISODE_FINISHED = "episode-finished"
CACHE_HIT = "cache-hit"
CHECKPOINT_WRITTEN = "checkpoint-written"
# Evaluation-pipeline kinds (staged runs only).
GATE_REJECTED = "gate-rejected"
STAGE_FINISHED = "stage-finished"
WAVE_PROMOTED = "wave-promoted"
# Engine-level scheduling kinds.
EARLY_STOPPED = "early-stopped"
WAVE_RESIZED = "wave-resized"
# Lifecycle / bus-health kinds.
RUN_CANCELLED = "run-cancelled"
CONSUMER_ERROR = "consumer-error"
# Observability kinds (repro.obs): one completed tracer span; one aggregated
# metrics snapshot per wave (elapsed, episodes/sec, cache hit rate).
SPAN = "span"
METRICS_UPDATED = "metrics-updated"
# Fleet supervision kinds (repro.fleet): the worker fabric fell back to local
# execution; an expired lease was returned to pending; an agent missed enough
# heartbeats to be declared dead.
FLEET_DEGRADED = "fleet-degraded"
FLEET_LEASE_REASSIGNED = "fleet-lease-reassigned"
FLEET_AGENT_DEAD = "fleet-agent-dead"
# Artifact-store kinds (repro.store): the remote store tier became
# unreachable and the run fell back to local-only caching; an on-disk cache
# entry failed to parse (torn write, disk-full) and was dropped so the
# evaluation recomputes instead of crashing.
STORE_DEGRADED = "store-degraded"
CACHE_ENTRY_CORRUPT = "cache-entry-corrupt"

# Kinds that end a run's event stream (a tail can stop following after one).
TERMINAL_KINDS = (RUN_FINISHED, RUN_CANCELLED)

# The reserved top-level keys of a serialized event; everything else on a
# telemetry line is payload.
_EVENT_FIELDS = ("kind", "episode", "timestamp")


@dataclass(frozen=True)
class EngineEvent:
    """One observable engine occurrence."""

    kind: str
    episode: Optional[int] = None
    payload: Dict[str, Any] = field(default_factory=dict)
    timestamp: float = field(default_factory=time.time)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "episode": self.episode,
            "timestamp": self.timestamp,
            **self.payload,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "EngineEvent":
        """Rebuild an event from its :meth:`to_dict` form (telemetry line).

        Forward-compatible by construction: every top-level key this version
        does not reserve -- including kinds and payload fields introduced by
        a *newer* engine (span/metric events, say) -- lands in ``payload``
        untouched, and malformed reserved fields degrade to their defaults
        instead of raising.  An old CLI can therefore tail a stream written
        by a newer engine; only a line that is not an event at all (no
        ``kind``) is rejected.
        """
        if not isinstance(payload, dict) or "kind" not in payload:
            raise ValueError(f"not a serialized engine event: {payload!r}")
        rest = {k: v for k, v in payload.items() if k not in _EVENT_FIELDS}
        episode = payload.get("episode")
        try:
            episode = None if episode is None else int(episode)
        except (TypeError, ValueError):
            episode = None
        try:
            timestamp = float(payload.get("timestamp", 0.0))
        except (TypeError, ValueError):
            timestamp = 0.0
        return cls(
            kind=str(payload["kind"]),
            episode=episode,
            payload=rest,
            timestamp=timestamp,
        )

    @property
    def is_terminal(self) -> bool:
        """True for the kinds that end a run's event stream."""
        return self.kind in TERMINAL_KINDS


EventCallback = Callable[[EngineEvent], None]


class EventBus:
    """Minimal synchronous publish/subscribe hub.

    Subscriber exceptions are isolated: the first failure of each consumer is
    announced as a single ``consumer-error`` event and the consumer stays
    subscribed (it may fail transiently); the engine loop never sees the
    exception.
    """

    def __init__(self) -> None:
        self._subscribers: List[tuple] = []
        # id() of every callback whose failure was already announced -- the
        # consumer-error event is emitted once per consumer, not per event.
        self._announced_failures: Set[int] = set()

    def subscribe(
        self, callback: EventCallback, kinds: Optional[List[str]] = None
    ) -> EventCallback:
        """Register ``callback`` for ``kinds`` (or every kind when None)."""
        self._subscribers.append((callback, None if kinds is None else set(kinds)))
        return callback

    def unsubscribe(self, callback: EventCallback) -> None:
        """Remove every registration of ``callback``."""
        self._subscribers = [
            (cb, kinds) for cb, kinds in self._subscribers if cb is not callback
        ]
        # An unsubscribed callback's id() may be recycled by a later one.
        self._announced_failures.discard(id(callback))

    def emit(self, event: EngineEvent) -> None:
        """Deliver ``event`` to every matching subscriber, in order."""
        for callback, kinds in list(self._subscribers):
            if kinds is None or event.kind in kinds:
                try:
                    callback(event)
                except Exception as error:
                    self._note_failure(callback, event, error)

    def _note_failure(
        self, callback: EventCallback, event: EngineEvent, error: Exception
    ) -> None:
        """Announce a consumer's first failure; later ones stay silent.

        Announcing through :meth:`emit` means the failing consumer receives
        the consumer-error event too -- if it raises again it is already in
        the announced set, so the recursion bottoms out after one level.
        """
        if id(callback) in self._announced_failures:
            return
        self._announced_failures.add(id(callback))
        self.emit(
            EngineEvent(
                kind=CONSUMER_ERROR,
                episode=event.episode,
                payload={
                    "consumer": getattr(
                        callback, "__qualname__", type(callback).__name__
                    ),
                    "failed_kind": event.kind,
                    "error": f"{type(error).__name__}: {error}",
                    "traceback": traceback.format_exc(limit=5),
                },
            )
        )


class JsonlTelemetry:
    """Event consumer appending one JSON line per event to a file.

    The file handle is kept open across events and flushed after every line,
    so a ``repro-search tail`` on a live run directory sees each event as
    soon as it is emitted (no buffer-boundary latency) without paying an
    open/close syscall pair per event.  Every write leaves a complete line
    on disk, so an engine that never reaches :meth:`close` loses nothing.
    """

    def __init__(self, path: str):
        self.path = path
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        self._handle = None

    def __call__(self, event: EngineEvent) -> None:
        if self._handle is None:
            self._handle = open(self.path, "a", encoding="utf-8")
        self._handle.write(json.dumps(event.to_dict(), sort_keys=True) + "\n")
        self._handle.flush()

    def close(self) -> None:
        """Release the file handle (idempotent; reopened on the next event)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __del__(self) -> None:  # pragma: no cover - interpreter shutdown path
        try:
            self.close()
        except Exception:
            pass
