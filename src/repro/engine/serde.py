"""JSON round-trips for the engine's persisted objects.

Checkpoints and the on-disk evaluation cache store plain JSON (plus one npz
archive for weight arrays), so every object that crosses the persistence
boundary -- descriptors, evaluation results, episode records, search
histories and numpy RNG states -- gets an explicit ``*_to_dict`` /
``*_from_dict`` pair here.  Keeping the converters together (rather than as
methods scattered over core) means the persisted schema is reviewable in one
place.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Any, Dict

import numpy as np

from repro.blocks.spec import BlockSpec, ClassifierSpec, StemSpec
from repro.core.evaluator import EvaluationResult
from repro.core.results import EpisodeRecord, SearchHistory
from repro.zoo.descriptors import ArchitectureDescriptor, HeadSpec


# -- architecture descriptors ------------------------------------------------------
def descriptor_to_dict(descriptor: ArchitectureDescriptor) -> Dict[str, Any]:
    """Flatten a descriptor into plain JSON-encodable data."""
    return {
        "name": descriptor.name,
        "family": descriptor.family,
        "input_resolution": descriptor.input_resolution,
        "stem": asdict(descriptor.stem),
        "blocks": [asdict(block) for block in descriptor.blocks],
        "head": asdict(descriptor.head),
        "classifier": asdict(descriptor.classifier),
    }


def descriptor_from_dict(payload: Dict[str, Any]) -> ArchitectureDescriptor:
    """Rebuild a descriptor previously flattened by :func:`descriptor_to_dict`."""
    return ArchitectureDescriptor(
        name=payload["name"],
        family=payload["family"],
        input_resolution=int(payload["input_resolution"]),
        stem=StemSpec(**payload["stem"]),
        blocks=tuple(BlockSpec(**block) for block in payload["blocks"]),
        head=HeadSpec(**payload["head"]),
        classifier=ClassifierSpec(**payload["classifier"]),
    )


# -- evaluation results ------------------------------------------------------------
def result_to_dict(result: EvaluationResult) -> Dict[str, Any]:
    """Flatten an evaluation result (all scalar fields) into JSON data."""
    return asdict(result)


def result_from_dict(payload: Dict[str, Any]) -> EvaluationResult:
    """Rebuild an evaluation result from :func:`result_to_dict` output."""
    return EvaluationResult(
        latency_ms=float(payload["latency_ms"]),
        storage_mb=float(payload["storage_mb"]),
        num_parameters=int(payload["num_parameters"]),
        trained=bool(payload["trained"]),
        accuracy=float(payload["accuracy"]),
        unfairness=float(payload["unfairness"]),
        group_accuracy={str(k): float(v) for k, v in payload["group_accuracy"].items()},
        reward=float(payload["reward"]),
        meets_timing=bool(payload["meets_timing"]),
        meets_accuracy=bool(payload["meets_accuracy"]),
        train_seconds=float(payload["train_seconds"]),
        fidelity=str(payload.get("fidelity", "full")),
    )


# -- episode records / search history ----------------------------------------------
def record_to_dict(record: EpisodeRecord) -> Dict[str, Any]:
    """Flatten one episode record, inlining its descriptor."""
    payload = asdict(record)
    payload["descriptor"] = descriptor_to_dict(record.descriptor)
    return payload


def record_from_dict(payload: Dict[str, Any]) -> EpisodeRecord:
    """Rebuild one episode record from :func:`record_to_dict` output."""
    return EpisodeRecord(
        episode=int(payload["episode"]),
        descriptor=descriptor_from_dict(payload["descriptor"]),
        decisions=[str(d) for d in payload["decisions"]],
        reward=float(payload["reward"]),
        accuracy=float(payload["accuracy"]),
        unfairness=float(payload["unfairness"]),
        latency_ms=float(payload["latency_ms"]),
        storage_mb=float(payload["storage_mb"]),
        num_parameters=int(payload["num_parameters"]),
        trained=bool(payload["trained"]),
        group_accuracy={str(k): float(v) for k, v in payload["group_accuracy"].items()},
        elapsed_seconds=float(payload["elapsed_seconds"]),
        cache_hit=bool(payload.get("cache_hit", False)),
        worker=str(payload.get("worker", "")),
        fidelity=str(payload.get("fidelity", "full")),
        stages=[str(stage) for stage in payload.get("stages", [])],
    )


def history_to_dict(history: SearchHistory) -> Dict[str, Any]:
    """Flatten a search history (metadata plus every record)."""
    return {
        "space_size": history.space_size,
        "full_space_size": history.full_space_size,
        "total_seconds": history.total_seconds,
        "frozen_blocks": history.frozen_blocks,
        "searchable_blocks": history.searchable_blocks,
        "records": [record_to_dict(record) for record in history.records],
    }


def history_from_dict(payload: Dict[str, Any]) -> SearchHistory:
    """Rebuild a search history from :func:`history_to_dict` output."""
    return SearchHistory(
        records=[record_from_dict(record) for record in payload["records"]],
        space_size=float(payload["space_size"]),
        full_space_size=float(payload["full_space_size"]),
        total_seconds=float(payload["total_seconds"]),
        frozen_blocks=int(payload["frozen_blocks"]),
        searchable_blocks=int(payload["searchable_blocks"]),
    )


# -- RNG state ----------------------------------------------------------------------
def rng_state_to_dict(rng: np.random.Generator) -> Dict[str, Any]:
    """Capture a generator's bit-generator state (JSON-safe: python ints)."""
    return rng.bit_generator.state


def rng_state_from_dict(rng: np.random.Generator, state: Dict[str, Any]) -> None:
    """Restore a generator's state captured by :func:`rng_state_to_dict`."""
    rng.bit_generator.state = state
