"""``repro-search``: run an engine-backed FaHaNa search from the command line.

A small end-to-end search on the synthetic dermatology dataset, sized so the
default invocation finishes in about a minute on a laptop CPU:

    repro-search --episodes 10 --backend thread --workers 2 --run-dir runs/demo

Interrupted runs continue from the last checkpoint with ``--resume``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.api import default_design_spec
from repro.core.fahana import FaHaNaConfig, FaHaNaSearch
from repro.core.policy import PolicyGradientConfig
from repro.core.producer import ProducerConfig
from repro.data.dataset import stratified_split
from repro.data.dermatology import DermatologyConfig, DermatologyGenerator
from repro.engine.checkpoint import has_checkpoint
from repro.engine.engine import EngineConfig, SearchEngine
from repro.engine.workers import BACKENDS
from repro.nn.trainer import TrainingConfig


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-search",
        description="Fairness- and hardware-aware NAS with the search engine "
        "(parallel episodes, evaluation cache, checkpoint/resume).",
    )
    parser.add_argument("--episodes", type=int, default=10, help="search episodes")
    parser.add_argument(
        "--backend", choices=BACKENDS, default="serial", help="worker-pool backend"
    )
    parser.add_argument("--workers", type=int, default=2, help="worker count")
    parser.add_argument(
        "--batch-episodes",
        type=int,
        default=None,
        help="episodes per wave (default: the policy batch size)",
    )
    parser.add_argument(
        "--policy-batch",
        type=int,
        default=4,
        help="policy-gradient batch size (waves of this many episodes "
        "evaluate concurrently)",
    )
    parser.add_argument("--seed", type=int, default=0, help="global seed")
    parser.add_argument(
        "--timing-constraint-ms",
        type=float,
        default=1500.0,
        help="hardware timing constraint TC",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="disable the evaluation cache"
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="persist the evaluation cache here (shared across runs)",
    )
    parser.add_argument(
        "--run-dir",
        default=None,
        help="directory for checkpoints and JSONL telemetry",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="continue from the checkpoint in --run-dir",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=0,
        help="checkpoint cadence in episodes (0 = final checkpoint only)",
    )
    # Dataset / training scale knobs (defaults sized for a quick demo run).
    parser.add_argument("--image-size", type=int, default=16, help="image resolution")
    parser.add_argument(
        "--samples-per-class", type=int, default=16, help="majority-group samples"
    )
    parser.add_argument("--child-epochs", type=int, default=2, help="child train epochs")
    parser.add_argument(
        "--pretrain-epochs", type=int, default=2, help="backbone pretrain epochs"
    )
    parser.add_argument(
        "--max-searchable", type=int, default=3, help="cap on searchable positions"
    )
    parser.add_argument(
        "--width-multiplier", type=float, default=0.25, help="training-scale width"
    )
    return parser


def build_search(args: argparse.Namespace) -> FaHaNaSearch:
    """Construct the dataset and search from parsed CLI arguments."""
    dataset = DermatologyGenerator(
        DermatologyConfig(
            image_size=args.image_size,
            samples_per_class_majority=args.samples_per_class,
            minority_fraction=0.5,
            seed=args.seed,
        )
    ).generate()
    splits = stratified_split(dataset, rng=args.seed)
    config = FaHaNaConfig(
        episodes=args.episodes,
        seed=args.seed,
        producer=ProducerConfig(
            backbone="MobileNetV2",
            freeze=True,
            pretrain_epochs=args.pretrain_epochs,
            width_multiplier=args.width_multiplier,
            max_searchable=args.max_searchable,
        ),
        policy=PolicyGradientConfig(batch_episodes=args.policy_batch),
        child_training=TrainingConfig(
            epochs=args.child_epochs, batch_size=16, seed=args.seed
        ),
    )
    spec = default_design_spec(timing_constraint_ms=args.timing_constraint_ms)
    return FaHaNaSearch(splits.train, splits.validation, spec, config)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.resume and (args.run_dir is None or not has_checkpoint(args.run_dir)):
        print("error: --resume needs a --run-dir holding a checkpoint", file=sys.stderr)
        return 2

    try:
        engine_config = EngineConfig(
            backend=args.backend,
            num_workers=args.workers,
            batch_episodes=args.batch_episodes,
            use_cache=not args.no_cache,
            cache_dir=None if args.no_cache else args.cache_dir,
            run_dir=args.run_dir,
            checkpoint_every=args.checkpoint_every,
        )
        print(
            f"search: {args.episodes} episodes, backend={args.backend} "
            f"(workers={args.workers}), cache={'off' if args.no_cache else 'on'}"
            + (f", run_dir={args.run_dir}" if args.run_dir else "")
        )
        search = build_search(args)
        engine = SearchEngine(search, engine_config)
        if args.resume:
            start = engine.restore()
            print(f"resumed from episode {start}")
        result = engine.run()
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    print("\n== search summary ==")
    print(result.summary())
    print(
        f"\nengine: {engine.evaluations_run} evaluations run, "
        f"{engine.cache_hits} cache hits"
        + (
            f" (hit rate {engine.cache.hit_rate:.1%})"
            if engine.cache is not None
            else ""
        )
        + f", {engine.checkpoints_written} checkpoints"
    )
    if result.best is not None:
        print("\n== best searched architecture ==")
        print(result.best.descriptor.describe())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
