"""``repro-search``: run a search from the command line.

The primary interface is the spec-driven one (handled by
:mod:`repro.api.cli`):

    repro-search run spec.json --engine-backend thread --search-episodes 20
    repro-search validate spec.json
    repro-search strategies

The run-service lifecycle lives behind the same entry point (see
:mod:`repro.service.cli`):

    repro-search serve --port 8023 --runs-root runs
    repro-search agent --url http://127.0.0.1:8023
    repro-search submit spec.json --url http://127.0.0.1:8023
    repro-search tail <run-id-or-run-dir> --follow
    repro-search status/cancel/list ...
    repro-search top --url http://127.0.0.1:8023
    repro-search trace <run-id-or-run-dir> --out trace.json

The original flat-flag interface keeps working -- it is translated into the
same :class:`~repro.api.spec.RunSpec` and routed through the same
``repro.run`` facade:

    repro-search --episodes 10 --backend thread --workers 2 --run-dir runs/demo

Interrupted runs continue from the last checkpoint with ``--resume``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.engine.checkpoint import has_checkpoint
from repro.engine.workers import BACKENDS

# First-argument tokens that select the spec-driven CLI in repro.api.cli.
SUBCOMMANDS = (
    "run",
    "validate",
    "strategies",
    # Run-service lifecycle (repro.service.cli).
    "serve",
    "agent",
    "submit",
    "status",
    "tail",
    "cancel",
    "list",
    # Model zoo promotion (repro.serving behind repro.service.cli).
    "promote",
    # Observability (repro.obs behind repro.service.cli).
    "trace",
    "top",
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-search",
        description="Fairness- and hardware-aware NAS with the search engine "
        "(parallel episodes, evaluation cache, checkpoint/resume).  "
        "Prefer the spec interface: repro-search run spec.json "
        "(see repro-search run --help).",
    )
    parser.add_argument("--episodes", type=int, default=10, help="search episodes")
    parser.add_argument(
        "--backend", choices=BACKENDS, default="serial", help="worker-pool backend"
    )
    parser.add_argument("--workers", type=int, default=2, help="worker count")
    parser.add_argument(
        "--batch-episodes",
        type=int,
        default=None,
        help="episodes per wave (default: the policy batch size)",
    )
    parser.add_argument(
        "--policy-batch",
        type=int,
        default=4,
        help="policy-gradient batch size (waves of this many episodes "
        "evaluate concurrently)",
    )
    parser.add_argument("--seed", type=int, default=0, help="global seed")
    parser.add_argument(
        "--timing-constraint-ms",
        type=float,
        default=1500.0,
        help="hardware timing constraint TC",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="disable the evaluation cache"
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="persist the evaluation cache here (shared across runs)",
    )
    parser.add_argument(
        "--run-dir",
        default=None,
        help="directory for checkpoints and JSONL telemetry",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="continue from the checkpoint in --run-dir",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=0,
        help="checkpoint cadence in episodes (0 = final checkpoint only)",
    )
    # Dataset / training scale knobs (defaults sized for a quick demo run).
    parser.add_argument("--image-size", type=int, default=16, help="image resolution")
    parser.add_argument(
        "--samples-per-class", type=int, default=16, help="majority-group samples"
    )
    parser.add_argument("--child-epochs", type=int, default=2, help="child train epochs")
    parser.add_argument(
        "--pretrain-epochs", type=int, default=2, help="backbone pretrain epochs"
    )
    parser.add_argument(
        "--max-searchable", type=int, default=3, help="cap on searchable positions"
    )
    parser.add_argument(
        "--width-multiplier", type=float, default=0.25, help="training-scale width"
    )
    return parser


def spec_from_args(args: argparse.Namespace):
    """Translate the legacy flat flags into a :class:`RunSpec`.

    Field for field this reproduces the search the old CLI constructed by
    hand (same dataset recipe, same training batch size, same engine knobs).
    """
    from repro.api.spec import DatasetSpec, DesignSpecConfig, RunSpec, SearchParams
    from repro.engine.engine import EngineConfig

    return RunSpec(
        strategy="fahana",
        dataset=DatasetSpec(
            image_size=args.image_size,
            samples_per_class=args.samples_per_class,
            minority_fraction=0.5,
            seed=args.seed,
            split_seed=args.seed,
        ),
        design=DesignSpecConfig(timing_constraint_ms=args.timing_constraint_ms),
        search=SearchParams(
            episodes=args.episodes,
            backbone="MobileNetV2",
            child_epochs=args.child_epochs,
            child_batch_size=16,
            pretrain_epochs=args.pretrain_epochs,
            max_searchable=args.max_searchable,
            width_multiplier=args.width_multiplier,
            seed=args.seed,
            policy_batch=args.policy_batch,
        ),
        engine=EngineConfig(
            backend=args.backend,
            num_workers=args.workers,
            batch_episodes=args.batch_episodes,
            use_cache=not args.no_cache,
            cache_dir=None if args.no_cache else args.cache_dir,
            run_dir=args.run_dir,
            checkpoint_every=args.checkpoint_every,
        ),
    )


def main(argv: Optional[List[str]] = None) -> int:
    arguments = list(sys.argv[1:]) if argv is None else list(argv)
    if arguments and arguments[0] in SUBCOMMANDS:
        from repro.api.cli import main as api_main

        return api_main(arguments)

    args = build_parser().parse_args(arguments)
    if args.resume and (args.run_dir is None or not has_checkpoint(args.run_dir)):
        print("error: --resume needs a --run-dir holding a checkpoint", file=sys.stderr)
        return 2

    try:
        from repro.api.run import run as api_run

        spec = spec_from_args(args)
        print(
            f"search: {args.episodes} episodes, backend={args.backend} "
            f"(workers={args.workers}), cache={'off' if args.no_cache else 'on'}"
            + (f", run_dir={args.run_dir}" if args.run_dir else "")
        )
        report = api_run(spec, resume=args.resume)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if report.resumed_from is not None:
        print(f"resumed from episode {report.resumed_from}")
    print("\n== search summary ==")
    print(report.result.summary())
    print(
        f"\nengine: {report.evaluations_run} evaluations run, "
        f"{report.cache_hits} cache hits"
        + (
            f" (hit rate {report.cache_hit_rate:.1%})"
            if report.cache_hit_rate is not None
            else ""
        )
        + f", {report.checkpoints_written} checkpoints"
    )
    if report.best is not None:
        print("\n== best searched architecture ==")
        print(report.best.descriptor.describe())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
