"""The search engine: the execution layer between controller and evaluator.

:class:`SearchEngine` drives a :class:`~repro.core.fahana.FaHaNaSearch`
(or its MONAS subclass) through the same protocol as the original
sequential loop -- sample, produce, evaluate, observe -- but adds the three
scaling features the seed loop lacked:

1. **Batched parallel evaluation.**  Episodes are sampled up front in waves
   of ``batch_episodes`` children and evaluated concurrently on a pluggable
   worker pool.  Controller sampling draws from the sample-RNG stream and
   child weight initialisation from the child-RNG stream in strict episode
   order, and rewards are fed back to the policy trainer in episode order,
   so a run is bit-for-bit reproducible regardless of backend -- provided
   the wave size does not exceed ``PolicyGradientConfig.batch_episodes``
   (within one policy batch the controller's parameters are constant, which
   is exactly what makes the evaluations independent).

2. **Content-addressed memoization.**  With a cache configured, each sampled
   child is fingerprinted (descriptor ``cache_key()`` + evaluation context)
   before any model is built; repeats return the memoized result without
   training.  A cache-hit episode still consumes one child-RNG draw so the
   stream stays aligned with an uncached run.

3. **Checkpoint/resume.**  With a ``run_dir`` configured, the engine
   snapshots controller weights, optimiser/baseline state, both RNG streams,
   the cache and the search history at batch boundaries, and can restore a
   search mid-flight via :meth:`SearchEngine.resume`.

Every observable step is announced on an event bus (JSONL telemetry when a
run directory is configured).
"""

from __future__ import annotations

import os
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.controller import ControllerSample
from repro.core.evaluator import ChildEvaluator, EvaluationResult
from repro.core.fahana import FaHaNaResult, FaHaNaSearch
from repro.core.producer import ChildArchitecture
from repro.core.results import EpisodeRecord, SearchHistory
from repro.engine import checkpoint as checkpoint_io
from repro.engine.cache import EvaluationCache
from repro.engine.events import (
    BATCH_FINISHED,
    CACHE_HIT,
    CHECKPOINT_WRITTEN,
    EPISODE_FINISHED,
    RUN_FINISHED,
    RUN_STARTED,
    EngineEvent,
    EventBus,
    JsonlTelemetry,
)
from repro.engine import workers as workers_module
from repro.engine.workers import BACKENDS, WorkerPool, create_pool
from repro.utils.fingerprint import (
    array_fingerprint,
    combine_fingerprints,
    content_fingerprint,
)
from repro.zoo.descriptors import ArchitectureDescriptor


@dataclass
class EngineConfig:
    """Execution knobs of the engine (orthogonal to the search's own config)."""

    backend: str = "serial"
    num_workers: int = 2
    # Episodes sampled and evaluated per wave; None uses the policy trainer's
    # batch size, which preserves exact sequential-loop semantics.
    batch_episodes: Optional[int] = None
    use_cache: bool = False
    cache: Optional[EvaluationCache] = None
    cache_capacity: int = 1024
    cache_dir: Optional[str] = None
    run_dir: Optional[str] = None
    # Write a checkpoint whenever at least this many episodes completed since
    # the last one (0 = only the final checkpoint, when run_dir is set).
    checkpoint_every: int = 0
    telemetry: bool = True
    # Process backend only: ship the evaluator to each worker process once at
    # pool startup (executor initializer) instead of re-pickling it per task.
    share_evaluator: bool = True

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; expected one of {BACKENDS}"
            )
        if self.num_workers <= 0:
            raise ValueError("num_workers must be positive")
        if self.batch_episodes is not None and self.batch_episodes <= 0:
            raise ValueError("batch_episodes must be positive when given")
        if self.cache_capacity <= 0:
            raise ValueError("cache_capacity must be positive")
        if self.checkpoint_every < 0:
            raise ValueError("checkpoint_every must be non-negative")


# -- module-level default (installed by harnesses, e.g. the benchmark suite) -------
_default_engine_config: Optional[EngineConfig] = None


def set_default_engine_config(
    config: Optional[EngineConfig],
) -> Optional[EngineConfig]:
    """Install a process-wide default engine config; returns the previous one."""
    global _default_engine_config
    previous = _default_engine_config
    _default_engine_config = config
    return previous


def get_default_engine_config() -> Optional[EngineConfig]:
    """The currently installed process-wide default (None when unset)."""
    return _default_engine_config


def resolve_engine_config(explicit: Optional[EngineConfig] = None) -> EngineConfig:
    """Pick the engine config: explicit > process default > plain serial."""
    if explicit is not None:
        return explicit
    if _default_engine_config is not None:
        return _default_engine_config
    return EngineConfig()


@dataclass
class _EpisodeJob:
    """One episode of a wave, from sample to evaluation."""

    episode: int
    sample: ControllerSample
    descriptor: ArchitectureDescriptor
    cache_key: Optional[str] = None
    child: Optional[ChildArchitecture] = None
    evaluation: Optional[EvaluationResult] = None
    cache_hit: bool = False
    worker: str = ""
    elapsed_seconds: float = 0.0


def _evaluate_payload(
    payload: Tuple[Optional[ChildEvaluator], ChildArchitecture],
) -> Tuple[EvaluationResult, float]:
    """Worker task: evaluate one child (module-level so it pickles).

    ``evaluator`` is None when the pool shipped it to the worker process once
    at startup (``EngineConfig.share_evaluator``); it is then read back from
    the worker's shared slot instead of travelling with every task.
    """
    evaluator, child = payload
    if evaluator is None:
        evaluator = workers_module.process_shared()
    start = time.perf_counter()
    result = evaluator.evaluate(child)
    return result, time.perf_counter() - start


class SearchEngine:
    """Executes a FaHaNa/MONAS search with batching, caching and checkpoints."""

    def __init__(self, search: FaHaNaSearch, config: Optional[EngineConfig] = None):
        self.search = search
        self.config = config or EngineConfig()
        self.events = EventBus()
        self.cache = self._build_cache()
        # Computed on first use: hashing the datasets and backbone weights is
        # O(bytes) work the default no-cache/no-checkpoint path never needs.
        self._context_key: Optional[str] = None
        self.evaluations_run = 0
        self.checkpoints_written = 0
        self._restored_history: Optional[SearchHistory] = None
        self._restored_seconds = 0.0
        self._next_episode = 0
        if self.config.run_dir is not None:
            os.makedirs(self.config.run_dir, exist_ok=True)
            if self.config.telemetry:
                self.events.subscribe(
                    JsonlTelemetry(os.path.join(self.config.run_dir, "telemetry.jsonl"))
                )

    # -- construction helpers -----------------------------------------------------
    def _build_cache(self) -> Optional[EvaluationCache]:
        config = self.config
        if config.cache is not None:
            return config.cache
        if config.use_cache or config.cache_dir is not None:
            return EvaluationCache(
                capacity=config.cache_capacity, directory=config.cache_dir
            )
        return None

    @property
    def context_key(self) -> str:
        """The evaluation-context fingerprint (computed lazily, then cached)."""
        if self._context_key is None:
            self._context_key = self._compute_context_key()
        return self._context_key

    def _compute_context_key(self) -> str:
        """Fingerprint of everything besides the descriptor that shapes a result.

        Fairness metrics depend on the demographic group arrays, and a
        trained child's accuracy depends on the frozen-prefix weights copied
        from the pre-trained backbone, so both are part of the context: runs
        that differ only in group assignment or backbone pre-training must
        not share cache entries.
        """
        search = self.search
        evaluator = search.evaluator
        backbone_model = search.producer.backbone_model
        backbone_weights = (
            None
            if backbone_model is None
            else {
                name: array_fingerprint(value)
                for name, value in sorted(backbone_model.state_dict().items())
            }
        )
        return content_fingerprint(
            {
                "training": asdict(evaluator.config.training),
                "reward": asdict(evaluator.config.reward),
                "bypass_invalid": evaluator.config.bypass_invalid,
                "device": evaluator.latency_estimator.device.name,
                "resolution": evaluator.latency_estimator.resolution,
                "width_multiplier": search.config.producer.width_multiplier,
                "split_block": search.producer.split_block,
                "backbone_weights": backbone_weights,
                "num_classes": search.train_dataset.num_classes,
                "train_data": array_fingerprint(search.train_dataset.images),
                "train_labels": array_fingerprint(search.train_dataset.labels),
                "train_groups": array_fingerprint(search.train_dataset.groups),
                "validation_data": array_fingerprint(search.validation_dataset.images),
                "validation_labels": array_fingerprint(
                    search.validation_dataset.labels
                ),
                "validation_groups": array_fingerprint(
                    search.validation_dataset.groups
                ),
                "group_names": list(search.validation_dataset.group_names),
            }
        )

    def child_cache_key(self, descriptor: ArchitectureDescriptor) -> str:
        """Full cache key of one child under this engine's evaluation context."""
        return combine_fingerprints(descriptor.cache_key(), self.context_key)

    @property
    def cache_hits(self) -> int:
        return self.cache.hits if self.cache is not None else 0

    # -- checkpoint / resume ------------------------------------------------------
    def restore(self, run_dir: Optional[str] = None) -> int:
        """Load a checkpoint and position the engine to continue from it.

        Returns the next episode index.  Must be called before :meth:`run` on
        a freshly constructed search configured identically to the one that
        wrote the checkpoint.
        """
        directory = run_dir or self.config.run_dir
        if directory is None:
            raise ValueError("restore needs a run directory (config.run_dir or arg)")
        checkpoint = checkpoint_io.load_checkpoint(directory)
        next_episode, history = checkpoint_io.restore_checkpoint(
            checkpoint,
            context_key=self.context_key,
            controller=self.search.controller,
            policy_trainer=self.search.policy_trainer,
            sample_rng=self.search._sample_rng,
            child_rng=self.search._child_rng,
            cache=self.cache,
        )
        self._restored_history = history
        self._restored_seconds = history.total_seconds
        self._next_episode = next_episode
        return next_episode

    @classmethod
    def resume(
        cls, search: FaHaNaSearch, config: Optional[EngineConfig] = None
    ) -> "SearchEngine":
        """Construct an engine and restore the checkpoint in its run directory."""
        engine = cls(search, config)
        engine.restore()
        return engine

    def _write_checkpoint(self, history: SearchHistory, elapsed: float) -> None:
        assert self.config.run_dir is not None
        history.total_seconds = self._restored_seconds + elapsed
        path = checkpoint_io.save_checkpoint(
            self.config.run_dir,
            next_episode=self._next_episode,
            context_key=self.context_key,
            controller=self.search.controller,
            policy_trainer=self.search.policy_trainer,
            sample_rng=self.search._sample_rng,
            child_rng=self.search._child_rng,
            history=history,
            cache=self.cache,
        )
        self.checkpoints_written += 1
        self._emit(
            CHECKPOINT_WRITTEN,
            payload={"path": path, "next_episode": self._next_episode},
        )

    # -- the search loop ----------------------------------------------------------
    def run(self, episodes: Optional[int] = None) -> FaHaNaResult:
        """Run (or continue) the search up to ``episodes`` total episodes."""
        search = self.search
        num_episodes = episodes or search.config.episodes
        policy_batch = search.config.policy.batch_episodes
        wave_size = self.config.batch_episodes or policy_batch
        if wave_size > policy_batch:
            # A wave samples all its children before any reward is observed;
            # beyond the policy batch the sequential loop would already have
            # updated the controller, so the runs would silently diverge.
            raise ValueError(
                f"engine batch_episodes ({wave_size}) must not exceed the "
                f"policy-gradient batch_episodes ({policy_batch}); raise "
                "PolicyGradientConfig.batch_episodes to evaluate larger waves"
            )

        if self._restored_history is not None:
            history = self._restored_history
        else:
            history = SearchHistory(
                space_size=search.producer.space_size(),
                full_space_size=search.producer.full_space_size(),
                frozen_blocks=search.producer.split_block,
                searchable_blocks=len(search.producer.positions),
            )
        self._emit(
            RUN_STARTED,
            payload={
                "backend": self.config.backend,
                "episodes": num_episodes,
                "start_episode": self._next_episode,
                "wave_size": wave_size,
                "cache": self.cache is not None,
            },
        )

        start = time.perf_counter()
        episodes_since_checkpoint = 0
        shared = (
            search.evaluator
            if self.config.backend == "process" and self.config.share_evaluator
            else None
        )
        pool = create_pool(self.config.backend, self.config.num_workers, shared=shared)
        try:
            while self._next_episode < num_episodes:
                wave = min(wave_size, num_episodes - self._next_episode)
                jobs = self._sample_wave(wave)
                self._evaluate_wave(jobs, pool)
                for job in jobs:
                    self._observe(job, history)
                self._next_episode += wave
                episodes_since_checkpoint += wave
                self._emit(
                    BATCH_FINISHED,
                    payload={
                        "episodes_done": self._next_episode,
                        "wave": wave,
                        "backend": pool.name,
                    },
                )
                if (
                    self.config.run_dir is not None
                    and self.config.checkpoint_every > 0
                    and episodes_since_checkpoint >= self.config.checkpoint_every
                    and search.policy_trainer.pending_episodes == 0
                ):
                    self._write_checkpoint(history, time.perf_counter() - start)
                    episodes_since_checkpoint = 0
        finally:
            pool.close()

        search.policy_trainer.apply_update()
        history.total_seconds = self._restored_seconds + time.perf_counter() - start
        if self.config.run_dir is not None:
            self._write_checkpoint(history, time.perf_counter() - start)
        self._emit(
            RUN_FINISHED,
            payload={
                "episodes": len(history),
                "evaluations_run": self.evaluations_run,
                "cache_hits": self.cache_hits,
                "total_seconds": history.total_seconds,
            },
        )
        return FaHaNaResult(
            history=history,
            best=history.best_record(),
            fairest=history.fairest_record(),
            smallest=history.smallest_record(),
            freezing_analysis=search.producer.analysis,
        )

    # -- wave phases --------------------------------------------------------------
    def _sample_wave(self, wave: int) -> List[_EpisodeJob]:
        """Sample/produce ``wave`` children in strict episode order."""
        search = self.search
        jobs: List[_EpisodeJob] = []
        for offset in range(wave):
            episode = self._next_episode + offset
            sample = search.controller.sample(rng=search._sample_rng)
            descriptor = search.producer.describe_child(sample.decisions)
            job = _EpisodeJob(episode=episode, sample=sample, descriptor=descriptor)
            if self.cache is not None:
                job.cache_key = self.child_cache_key(descriptor)
                cached = self.cache.get(job.cache_key)
                if cached is not None:
                    # Burn the draw produce() would have made so the child-RNG
                    # stream stays aligned with a cache-off run.
                    search._child_rng.integers(0, 2**31 - 1)
                    job.evaluation = cached
                    job.cache_hit = True
                    job.worker = "cache"
                    self._emit(
                        CACHE_HIT,
                        episode=episode,
                        payload={"key": job.cache_key, "reward": cached.reward},
                    )
                    jobs.append(job)
                    continue
            job.child = search.producer.produce(sample.decisions, rng=search._child_rng)
            jobs.append(job)
        return jobs

    def _evaluate_wave(self, jobs: List[_EpisodeJob], pool: WorkerPool) -> None:
        """Evaluate the wave's cache misses concurrently, in episode order.

        When caching is on, duplicate children *within* one wave train only
        once: the first occurrence is evaluated and the repeats share its
        result, exactly as they would have hit the cache with wave size 1.
        (With caching off every child trains, matching the sequential loop.)
        """
        pending = [job for job in jobs if job.evaluation is None]
        first_by_key: Dict[str, _EpisodeJob] = {}
        unique: List[_EpisodeJob] = []
        for job in pending:
            if job.cache_key is not None and job.cache_key in first_by_key:
                continue
            if job.cache_key is not None:
                first_by_key[job.cache_key] = job
            unique.append(job)
        if unique:
            # Pools that shipped the evaluator at startup get child-only
            # payloads; the worker reads the evaluator from its shared slot.
            evaluator = None if pool.uses_shared else self.search.evaluator
            payloads = [(evaluator, job.child) for job in unique]
            results = pool.map_ordered(_evaluate_payload, payloads)
            for job, ((evaluation, elapsed), worker) in zip(unique, results):
                job.evaluation = evaluation
                job.worker = worker
                job.elapsed_seconds = elapsed
                self.evaluations_run += 1
                if self.cache is not None and job.cache_key is not None:
                    self.cache.put(job.cache_key, evaluation)
        for job in pending:
            if job.evaluation is None:  # an intra-wave repeat
                primary = first_by_key[job.cache_key]
                job.evaluation = primary.evaluation
                job.cache_hit = True
                job.worker = "cache"
                self._emit(
                    CACHE_HIT,
                    episode=job.episode,
                    payload={"key": job.cache_key, "reward": job.evaluation.reward},
                )

    def _observe(self, job: _EpisodeJob, history: SearchHistory) -> None:
        """Feed one episode's reward back and record it (episode order)."""
        assert job.evaluation is not None
        evaluation = job.evaluation
        self.search.policy_trainer.observe(job.sample, evaluation.reward)
        history.append(
            EpisodeRecord(
                episode=job.episode,
                descriptor=job.descriptor,
                decisions=[spec.describe() for spec in job.descriptor.blocks],
                reward=evaluation.reward,
                accuracy=evaluation.accuracy,
                unfairness=evaluation.unfairness,
                latency_ms=evaluation.latency_ms,
                storage_mb=evaluation.storage_mb,
                num_parameters=evaluation.num_parameters,
                trained=evaluation.trained,
                group_accuracy=evaluation.group_accuracy,
                elapsed_seconds=job.elapsed_seconds,
                cache_hit=job.cache_hit,
                worker=job.worker,
            )
        )
        self._emit(
            EPISODE_FINISHED,
            episode=job.episode,
            payload={
                "reward": evaluation.reward,
                "accuracy": evaluation.accuracy,
                "unfairness": evaluation.unfairness,
                "trained": evaluation.trained,
                "cache_hit": job.cache_hit,
                "worker": job.worker,
            },
        )

    # -- events -------------------------------------------------------------------
    def _emit(
        self,
        kind: str,
        episode: Optional[int] = None,
        payload: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.events.emit(EngineEvent(kind=kind, episode=episode, payload=payload or {}))
